//! Redundancy elimination (Section 3.1, Theorem 3.1.4).
//!
//! A view whose defining queries overlap wastes definition (and reveals
//! nothing extra). This example builds a redundant reporting view, detects
//! the redundancy with an explicit witnessing construction, and produces a
//! minimal (nonredundant) equivalent.
//!
//! Run with: `cargo run --example redundancy_elimination`

use viewcap::prelude::*;
use viewcap_core::redundancy::{is_nonredundant_view, is_redundant, make_nonredundant};
use viewcap_expr::display::display_expr;
use viewcap_expr::parse_expr;

fn main() {
    // Sales database: Orders(Cust, Item), Stock(Item, Depot).
    let mut cat = Catalog::new();
    cat.relation("Orders", &["Cust", "Item"]).unwrap();
    cat.relation("Stock", &["Item", "Depot"]).unwrap();

    // The reporting view ships three relations — but the third is just the
    // join of the first two.
    let ci = cat.scheme(&["Cust", "Item"]).unwrap();
    let id = cat.scheme(&["Item", "Depot"]).unwrap();
    let cid = cat.scheme(&["Cust", "Item", "Depot"]).unwrap();
    let v1 = cat.fresh_relation("ByCustomer", ci);
    let v2 = cat.fresh_relation("ByDepot", id);
    let v3 = cat.fresh_relation("FullReport", cid);
    let view = View::from_exprs(
        vec![
            (parse_expr("Orders", &cat).unwrap(), v1),
            (parse_expr("Stock", &cat).unwrap(), v2),
            (parse_expr("Orders * Stock", &cat).unwrap(), v3),
        ],
        &cat,
    )
    .unwrap();

    println!("Original view ({} relations):", view.len());
    for (q, name) in view.pairs() {
        println!(
            "  {:<12} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }

    // Which defining queries are redundant?
    let qs = view.query_set();
    println!("\nRedundancy analysis:");
    for (i, (_, name)) in view.pairs().iter().enumerate() {
        match is_redundant(qs.queries(), i, &cat).unwrap() {
            Some(proof) => {
                // The proof's λ indices refer to the *other* queries; map
                // them back onto the surviving view-relation names.
                let others: Vec<RelId> = view
                    .schema()
                    .into_iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, n)| n)
                    .collect();
                println!(
                    "  {:<12} REDUNDANT — derivable as {}",
                    cat.rel_name(*name),
                    display_expr(&proof.skeleton_with_names(&others), &cat)
                );
            }
            None => println!("  {:<12} essential to the capacity", cat.rel_name(*name)),
        }
    }

    // Remove it (Theorem 3.1.4): the result is equivalent and nonredundant.
    let slim = make_nonredundant(&view, &cat, &SearchBudget::default()).unwrap();
    println!("\nNonredundant equivalent ({} relations):", slim.len());
    for (q, name) in slim.pairs() {
        println!(
            "  {:<12} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }
    assert!(is_nonredundant_view(&slim, &cat, &SearchBudget::default()).unwrap());
    assert!(equivalent(&view, &slim, &cat).unwrap().is_some());
    println!("\nVerified: same query capacity, no redundancy.");

    // Theorem 3.1.7's bound on ANY nonredundant equivalent.
    let bound = viewcap_core::redundancy::nonredundant_size_bound(&view);
    println!("Size bound for nonredundant equivalents: ≤ {bound} relations.");
}
