//! Capacity exploration: list everything a view's users can ask.
//!
//! `Cap(𝒱)` is infinite, but its frontier — the pairwise-inequivalent
//! members with bounded construction size — is finite and enumerable. This
//! example audits a published view by printing its whole two-step frontier,
//! each entry with the construction that realizes it.
//!
//! Run with: `cargo run --release --example capacity_audit`

use viewcap::prelude::*;
use viewcap_core::closure::capacity_members;
use viewcap_expr::display::{display_expr, display_scheme};
use viewcap_expr::parse_expr;

fn main() {
    // Schema: Patients(Patient, Ward), Wards(Ward, Doctor).
    let mut cat = Catalog::new();
    cat.relation("Patients", &["Patient", "Ward"]).unwrap();
    cat.relation("Wards", &["Ward", "Doctor"]).unwrap();

    // The published view: ward occupancy (patient names hidden) and the
    // staffing table.
    let w = cat.scheme(&["Ward"]).unwrap();
    let wd = cat.scheme(&["Ward", "Doctor"]).unwrap();
    let v1 = cat.fresh_relation("Occupancy", w);
    let v2 = cat.fresh_relation("Staffing", wd);
    let view = View::from_exprs(
        vec![
            (parse_expr("pi{Ward}(Patients)", &cat).unwrap(), v1),
            (parse_expr("Wards", &cat).unwrap(), v2),
        ],
        &cat,
    )
    .unwrap();

    println!("Published view:");
    for (q, name) in view.pairs() {
        println!(
            "  {:<10} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }

    let members = capacity_members(&view, 2, &cat, &SearchBudget::default())
        .expect("frontier fits the default budget");

    println!(
        "\nCapacity frontier (constructions with ≤ 2 atoms): {} distinct queries",
        members.len()
    );
    let names = view.schema();
    for m in &members {
        // Render the construction in the view's own vocabulary.
        let skeleton = m.skeleton.clone();
        // λ names live in the scratch catalog; display against it, then map
        // names through the proof-style renaming by hand: here we simply
        // show TRS + size, plus the skeleton over view names when trivial.
        println!(
            "  TRS {:<18} via {} atom(s): {}",
            display_scheme(&m.query.trs(), &cat),
            m.construction_size,
            display_expr(&skeleton, &member_catalog(&view, &cat)),
        );
        let _ = names.len();
    }

    // Spot checks: patient identities never leak.
    let leak = Query::from_expr(parse_expr("pi{Patient}(Patients)", &cat).unwrap(), &cat);
    assert!(
        !members.iter().any(|m| m.query.equiv(&leak)),
        "patient names must not be derivable"
    );
    println!("\nVerified: no frontier member reveals patient identities.");
}

/// The frontier skeletons mention scratch λ names; rebuild the catalog the
/// enumeration used (same deterministic minting order as `closure_members`).
fn member_catalog(view: &View, catalog: &Catalog) -> Catalog {
    let mut scratch = catalog.clone();
    for (q, _) in view.pairs() {
        scratch.fresh_relation("lam", q.trs());
    }
    scratch
}
