//! Figure 1 of the paper, regenerated: template substitution `T → β`.
//!
//! Prints the templates T, S₁, S₂ and the substituted template exactly in
//! the paper's grid layout, then verifies the in-text equivalences.
//!
//! Run with: `cargo run --example figure1_substitution`

use viewcap::prelude::*;
use viewcap_base::AttrId;
use viewcap_expr::parse_expr;
use viewcap_template::display::display_template;
use viewcap_template::{reduce, substitute, template_of_expr};

fn sym(a: AttrId, o: u32) -> Symbol {
    Symbol::new(a, o)
}

fn zero(a: AttrId) -> Symbol {
    Symbol::distinguished(a)
}

fn main() {
    let mut cat = Catalog::new();
    let eta1 = cat.relation("eta1", &["A", "B"]).unwrap();
    let eta2 = cat.relation("eta2", &["A", "B", "C"]).unwrap();
    let eta3 = cat.relation("eta3", &["A", "B", "C"]).unwrap();
    let eta4 = cat.relation("eta4", &["A", "B", "C"]).unwrap();
    let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
    let universe = cat.universe();

    // T = {(0_A, b₁)@η₁, (a₁, 0_B, c₂)@η₂, (a₁, b₂, 0_C)@η₂}.
    let t = Template::new(vec![
        TaggedTuple::new(eta1, vec![zero(a), sym(b, 1)], &cat).unwrap(),
        TaggedTuple::new(eta2, vec![sym(a, 1), zero(b), sym(c, 2)], &cat).unwrap(),
        TaggedTuple::new(eta2, vec![sym(a, 1), sym(b, 2), zero(c)], &cat).unwrap(),
    ])
    .unwrap();

    // S₁ (TRS {A,B}) and S₂ (TRS {A,B,C}).
    let s1 = Template::new(vec![
        TaggedTuple::new(eta3, vec![sym(a, 3), zero(b), sym(c, 3)], &cat).unwrap(),
        TaggedTuple::new(eta3, vec![zero(a), sym(b, 3), sym(c, 3)], &cat).unwrap(),
    ])
    .unwrap();
    let s2 = Template::new(vec![
        TaggedTuple::new(eta4, vec![zero(a), zero(b), sym(c, 4)], &cat).unwrap(),
        TaggedTuple::new(eta4, vec![sym(a, 4), sym(b, 4), zero(c)], &cat).unwrap(),
    ])
    .unwrap();

    println!("T =\n{}", display_template(&t, &universe, &cat));
    println!("S1 =\n{}", display_template(&s1, &universe, &cat));
    println!("S2 =\n{}", display_template(&s2, &universe, &cat));

    // β(η₁) = S₁, β(η₂) = S₂.
    let mut beta = Assignment::new();
    beta.set(eta1, s1, &cat).unwrap();
    beta.set(eta2, s2, &cat).unwrap();

    let sub = substitute(&t, &beta, &cat).unwrap();
    println!(
        "T -> beta =\n{}",
        display_template(&sub.result, &universe, &cat)
    );

    println!("Blocks (one per tagged tuple of T):");
    for (i, _) in t.tuples().iter().enumerate() {
        println!(
            "  tuple {i} contributed rows {:?}",
            sub.block_result_indices(i)
        );
    }

    // In-text claims of the paper, verified:
    let t_expr = parse_expr("pi{A}(eta1) * pi{B,C}(pi{A,B}(eta2) * pi{A,C}(eta2))", &cat).unwrap();
    assert!(equivalent_templates(&t, &template_of_expr(&t_expr, &cat)));
    println!("\nverified: T == pi_A(eta1) |x| pi_BC(pi_AB(eta2) |x| pi_AC(eta2))");

    let result_expr = parse_expr("pi{A}(eta3) * pi{B}(eta4) * pi{C}(eta4)", &cat).unwrap();
    assert!(equivalent_templates(
        &sub.result,
        &template_of_expr(&result_expr, &cat)
    ));
    println!("verified: T->beta == pi_A(eta3) |x| pi_B(eta4) |x| pi_C(eta4)");
    println!(
        "reduced T->beta =\n{}",
        display_template(&reduce(&sub.result), &universe, &cat)
    );
}
