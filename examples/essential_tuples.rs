//! Essential tagged tuples (Sections 3.2–3.3): the fine structure of why a
//! view relation is irreplaceable.
//!
//! Reproduces Figure 2 / Examples 3.2.1–3.2.2: the query set ℬ = {S, T}
//! over η₁(A,B), η₂(A,B,C), the exhibited construction of T from ℬ, its
//! lineage structure, and the verdict that exactly τ₃ is essential.
//!
//! Run with: `cargo run --release --example essential_tuples`

use std::ops::ControlFlow;
use viewcap::prelude::*;
use viewcap_base::AttrId;
use viewcap_core::essential::{
    essential_connected_components, essential_tuples, for_each_exhibited_construction,
};
use viewcap_template::connected_components;
use viewcap_template::display::display_template;

fn sym(a: AttrId, o: u32) -> Symbol {
    Symbol::new(a, o)
}

fn zero(a: AttrId) -> Symbol {
    Symbol::distinguished(a)
}

fn main() {
    let mut cat = Catalog::new();
    let eta1 = cat.relation("eta1", &["A", "B"]).unwrap();
    let eta2 = cat.relation("eta2", &["A", "B", "C"]).unwrap();
    let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
    let universe = cat.universe();

    // ℬ = {S, T} of Figure 2.
    let s = Template::atom(eta1, &cat);
    let t = Template::new(vec![
        TaggedTuple::new(eta1, vec![zero(a), sym(b, 1)], &cat).unwrap(),
        TaggedTuple::new(eta2, vec![sym(a, 1), sym(b, 1), zero(c)], &cat).unwrap(),
        TaggedTuple::new(eta2, vec![sym(a, 2), zero(b), zero(c)], &cat).unwrap(),
    ])
    .unwrap();

    println!("S =\n{}", display_template(&s, &universe, &cat));
    println!("T =\n{}", display_template(&t, &universe, &cat));

    let queries = [Query::from_template(&s), Query::from_template(&t)];

    // Connected components of T (linked = shared nondistinguished symbol).
    let comps = connected_components(queries[1].template());
    println!("connected components of T: {comps:?}");

    // Essentiality: which tuples of T appear in EVERY construction of T
    // from ℬ (Prop 3.2.5)?
    let budget = SearchBudget::default();
    let ess = essential_tuples(&queries, 1, &cat, &budget).unwrap();
    println!("\nessential tuples of T (by index): {ess:?}");
    let ecomps = essential_connected_components(&queries, 1, &cat, &budget).unwrap();
    println!("essential connected components:   {ecomps:?}");

    // Walk a few exhibited constructions and show their lineage structure.
    println!("\nlineages across the first exhibited constructions of T from ℬ:");
    let mut shown = 0;
    for_each_exhibited_construction(&queries, 1, &cat, &budget, &mut |ec| {
        shown += 1;
        let m = queries[1].template().len();
        let lineages: Vec<String> = (0..m)
            .map(|rho| {
                let lin = ec.lineage(rho, 1);
                format!(
                    "τ{}→{:?}{}",
                    rho,
                    lin.seq,
                    if lin.cyclic { "(cycle)" } else { "" }
                )
            })
            .collect();
        println!(
            "  construction #{shown} ({} atoms): {}",
            ec.skeleton.atom_count(),
            lineages.join("  ")
        );
        if shown >= 5 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
    .unwrap();

    println!(
        "\nInterpretation: tuple τ with ess=true is *essential* — some query\n\
         in Cap(ℬ) cannot be constructed without it (Prop 3.2.5). Here only\n\
         the isolated component {{τ₃}} is essential, which is why T as a whole\n\
         is nonredundant (Cor 3.2.6) even though its other component is\n\
         replaceable."
    );
}
