//! The simplified normal form (Section 4): decomposing a view's relations
//! *in the presence of each other*.
//!
//! This runs the paper's Section 4 example — schema over {A,B,C,D} with
//! relations AD, ABC, AB, BC, AC and defining queries
//!
//! ```text
//! S = π_BCD(AD ⋈ ABC) ⋈ AC        T = π_AB(AB ⋈ BC) ⋈ (AC ⋈ BC)
//! ```
//!
//! and prints the unique simplified equivalent (Theorems 4.1.3 / 4.2.2).
//!
//! Run with: `cargo run --example normal_form` (takes a few seconds: each
//! step is a closure-membership decision).

use viewcap::prelude::*;
use viewcap_core::simplify::{is_simple, projection_provenance, simplify_view};
use viewcap_expr::display::{display_expr, display_scheme};
use viewcap_expr::parse_expr;

fn main() {
    let mut cat = Catalog::new();
    cat.relation("AD", &["A", "D"]).unwrap();
    cat.relation("ABC", &["A", "B", "C"]).unwrap();
    cat.relation("AB", &["A", "B"]).unwrap();
    cat.relation("BC", &["B", "C"]).unwrap();
    cat.relation("AC", &["A", "C"]).unwrap();

    let s_expr = parse_expr("pi{B,C,D}(AD * ABC) * AC", &cat).unwrap();
    let t_expr = parse_expr("pi{A,B}(AB * BC) * (AC * BC)", &cat).unwrap();

    let bcda = cat.scheme(&["A", "B", "C", "D"]).unwrap();
    let abc = cat.scheme(&["A", "B", "C"]).unwrap();
    let vs = cat.fresh_relation("S", bcda);
    let vt = cat.fresh_relation("T", abc);
    let view = View::from_exprs(vec![(s_expr, vs), (t_expr, vt)], &cat).unwrap();

    println!("Original view:");
    for (q, name) in view.pairs() {
        println!(
            "  {} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }

    // Neither query is simple: both decompose.
    let qs = view.query_set();
    for (i, (_, name)) in view.pairs().iter().enumerate() {
        let simple = is_simple(qs.queries(), i, &cat).unwrap();
        println!(
            "  {} is {} in the view",
            cat.rel_name(*name),
            if simple {
                "SIMPLE (atomic)"
            } else {
                "NOT simple (decomposable)"
            }
        );
    }

    println!("\nComputing the simplified normal form (Lemma 4.1.2)…");
    let simplified = simplify_view(&view, &mut cat, &SearchBudget::default()).unwrap();

    println!(
        "Simplified equivalent ({} relations — unique up to renaming, Thm 4.2.2):",
        simplified.len()
    );
    for (q, name) in simplified.pairs() {
        // Theorem 4.2.1: every simplified query is a projection of an
        // original defining query.
        let (k, x) = projection_provenance(qs.queries(), q, &cat)
            .expect("Theorem 4.2.1 guarantees provenance");
        let orig = cat.rel_name(view.pairs()[k].1).to_owned();
        println!(
            "  {:<8} := pi{}({})",
            cat.rel_name(*name),
            display_scheme(&x, &cat),
            orig,
        );
    }

    let check = equivalent(&view, &simplified, &cat).unwrap();
    assert!(check.is_some());
    println!("\nVerified: the normal form has exactly the same query capacity.");
    println!(
        "(Theorem 4.2.3: no nonredundant equivalent has more than {} relations.)",
        simplified.len()
    );
}
