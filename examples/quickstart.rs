//! Quickstart: define two views of the same database and decide whether
//! they give their users the same query power.
//!
//! This is Example 3.1.5 of the paper: a single joined view versus two
//! projection views. They look different — they even have different sizes —
//! but their *query capacities* coincide.
//!
//! Run with: `cargo run --example quickstart`

use viewcap::prelude::*;
use viewcap_expr::display::display_expr;
use viewcap_expr::parse_expr;

fn main() {
    // Underlying database schema: one relation R(A, B, C).
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();

    // View 𝒱 exposes one relation: S = π_AB(R) ⋈ π_BC(R).
    let abc = cat.scheme(&["A", "B", "C"]).unwrap();
    let lam = cat.fresh_relation("Joined", abc);
    let v = View::from_exprs(
        vec![(parse_expr("pi{A,B}(R) * pi{B,C}(R)", &cat).unwrap(), lam)],
        &cat,
    )
    .unwrap();

    // View 𝒲 exposes two relations: S₁ = π_AB(R) and S₂ = π_BC(R).
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let bc = cat.scheme(&["B", "C"]).unwrap();
    let l1 = cat.fresh_relation("Left", ab);
    let l2 = cat.fresh_relation("Right", bc);
    let w = View::from_exprs(
        vec![
            (parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
            (parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
        ],
        &cat,
    )
    .unwrap();

    println!("View V: one defining query");
    for (q, name) in v.pairs() {
        println!(
            "  {} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }
    println!("View W: two defining queries");
    for (q, name) in w.pairs() {
        println!(
            "  {} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }

    // Decide equivalence (Theorem 2.4.12). The witness contains explicit
    // constructions re-deriving each view's queries from the other view.
    let witness = equivalent(&v, &w, &cat)
        .expect("search within budget")
        .expect("the views are equivalent");
    println!("\nV and W are EQUIVALENT (same query capacity).");
    println!("Constructions of W's queries from V:");
    let v_names = v.schema();
    let w_names = w.schema();
    for (proof, (_, name)) in witness.v_dominates_w.proofs.iter().zip(w.pairs()) {
        println!(
            "  {} = {}",
            cat.rel_name(*name),
            display_expr(&proof.skeleton_with_names(&v_names), &cat)
        );
    }
    println!("Constructions of V's queries from W:");
    for (proof, (_, name)) in witness.w_dominates_v.proofs.iter().zip(v.pairs()) {
        println!(
            "  {} = {}",
            cat.rel_name(*name),
            display_expr(&proof.skeleton_with_names(&w_names), &cat)
        );
    }

    // But neither view lets its users see all of R:
    let full = Query::from_expr(parse_expr("R", &cat).unwrap(), &cat);
    let answerable = cap_contains(&v, &full, &cat, &SearchBudget::default())
        .unwrap()
        .is_some();
    println!("\nCan view users reconstruct R itself? {answerable}");
    assert!(!answerable, "the decomposition is lossy");
}
