//! Views as access control: the "DBA decree" discussion of Section 3.1.
//!
//! > *Casual users shall be capable of requesting every query save those
//! > which return values for sensitive attributes such as salary…*
//!
//! The paper's point: such decrees describe query sets that are usually NOT
//! the capacity of any view — the best a view can do is the smallest closed
//! query set containing the permitted one, and capacity membership
//! (Theorem 2.4.11) is the audit tool. This example builds a
//! salary-scrubbed view and audits a batch of queries against it.
//!
//! Run with: `cargo run --example security_views`

use viewcap::prelude::*;
use viewcap_expr::display::display_expr;
use viewcap_expr::parse_expr;

fn main() {
    // HR schema: Staff(Name, Dept, Salary), Dept(Dept, Floor).
    let mut cat = Catalog::new();
    cat.relation("Staff", &["Name", "Dept", "Salary"]).unwrap();
    cat.relation("Dept", &["Dept", "Floor"]).unwrap();

    // The published view scrubs Salary and passes Dept through.
    let nd = cat.scheme(&["Name", "Dept"]).unwrap();
    let df = cat.scheme(&["Dept", "Floor"]).unwrap();
    let v1 = cat.fresh_relation("PublicStaff", nd);
    let v2 = cat.fresh_relation("PublicDept", df);
    let view = View::from_exprs(
        vec![
            (parse_expr("pi{Name,Dept}(Staff)", &cat).unwrap(), v1),
            (parse_expr("Dept", &cat).unwrap(), v2),
        ],
        &cat,
    )
    .unwrap();

    println!("Published view:");
    for (q, name) in view.pairs() {
        println!(
            "  {:<12} := {}",
            cat.rel_name(*name),
            display_expr(q.expr().unwrap(), &cat)
        );
    }

    // Audit: which database queries can view users answer?
    let audits = [
        ("who works where", "pi{Name,Dept}(Staff)", true),
        (
            "who works on which floor",
            "pi{Name,Floor}(Staff * Dept)",
            true,
        ),
        ("directory x floors", "pi{Name,Dept}(Staff) * Dept", true),
        ("anyone's salary", "pi{Name,Salary}(Staff)", false),
        ("salary values alone", "pi{Salary}(Staff)", false),
        ("full staff table", "Staff", false),
    ];

    println!("\nCapacity audit (Theorem 2.4.11):");
    let budget = SearchBudget::default();
    for (label, src, expected) in audits {
        let goal = Query::from_expr(parse_expr(src, &cat).unwrap(), &cat);
        let verdict = cap_contains(&view, &goal, &cat, &budget).unwrap();
        let ok = verdict.is_some();
        println!(
            "  [{}] {:<28} {}",
            if ok { "ALLOW" } else { "DENY " },
            label,
            src
        );
        assert_eq!(ok, expected, "audit surprise for {src}");
        if let Some(proof) = verdict {
            println!(
                "          via {}",
                display_expr(&proof.skeleton_with_names(&view.schema()), &cat)
            );
        }
    }

    println!(
        "\nEvery salary-revealing query is outside Cap(view); the decree's\n\
         permitted set itself is not closed under ⋈/π, so no view captures\n\
         it exactly — the published view realizes the closest closed subset\n\
         (Section 3.1 discussion)."
    );
}
