//! Surrogate queries (Theorem 1.4.2) on an employee database.
//!
//! View users pose queries against the *view schema*; every such query has
//! a unique surrogate against the *underlying schema* that always returns
//! the same answer. This example builds an HR view, asks a view query, and
//! shows the surrogate answering it on real rows.
//!
//! Run with: `cargo run --example surrogate_queries`

use viewcap::prelude::*;
use viewcap_expr::display::display_expr;
use viewcap_expr::parse_expr;

fn main() {
    // Underlying schema: Emp(Name, Dept), Dept(Dept, Mgr).
    let mut cat = Catalog::new();
    let emp = cat.relation("Emp", &["Name", "Dept"]).unwrap();
    let dept = cat.relation("Dept", &["Dept", "Mgr"]).unwrap();

    // The HR view: staff directory and a manager roster (department hidden).
    let nd = cat.scheme(&["Name", "Dept"]).unwrap();
    let nm = cat.scheme(&["Name", "Mgr"]).unwrap();
    let v_dir = cat.fresh_relation("Directory", nd);
    let v_ros = cat.fresh_relation("Roster", nm);
    let view = View::from_exprs(
        vec![
            (parse_expr("Emp", &cat).unwrap(), v_dir),
            (parse_expr("pi{Name,Mgr}(Emp * Dept)", &cat).unwrap(), v_ros),
        ],
        &cat,
    )
    .unwrap();

    // Some data. Symbols are attribute-typed values; think of the ordinals
    // as interned strings (1="ada", 2="bob", … / 1="eng", 2="ops" / 9="mia").
    let [n, d, m] = ["Name", "Dept", "Mgr"].map(|x| cat.lookup_attr(x).unwrap());
    let val = |a, o| Symbol::new(a, o);
    let mut alpha = Instantiation::new();
    alpha
        .insert_rows(
            emp,
            [
                vec![val(n, 1), val(d, 1)], // ada, eng
                vec![val(n, 2), val(d, 1)], // bob, eng
                vec![val(n, 3), val(d, 2)], // cyd, ops
            ],
            &cat,
        )
        .unwrap();
    alpha
        .insert_rows(
            dept,
            [
                vec![val(d, 1), val(m, 9)], // eng → mia
                vec![val(d, 2), val(m, 8)], // ops → lou
            ],
            &cat,
        )
        .unwrap();

    // A view query: which (Dept, Mgr) pairs are visible by joining the
    // directory with the roster through names?
    let vq = parse_expr("pi{Dept,Mgr}(Directory$1 * Roster$2)", &cat).unwrap_or_else(|_| {
        // Fresh names carry a $ suffix; fetch them from the view.
        let dir = cat.rel_name(view.schema()[0]).to_owned();
        let ros = cat.rel_name(view.schema()[1]).to_owned();
        parse_expr(&format!("pi{{Dept,Mgr}}({dir} * {ros})"), &cat).unwrap()
    });

    println!("view query        E  = {}", display_expr(&vq, &cat));

    // The paper's convention: answer against the induced instantiation.
    let direct = view.answer(&vq, &alpha, &cat).unwrap();

    // Theorem 1.4.2: expand into the unique surrogate over {Emp, Dept}.
    let surrogate = view.surrogate_expr(&vq, &cat).unwrap();
    println!("surrogate query   Ē  = {}", display_expr(&surrogate, &cat));
    let via_surrogate = surrogate.eval(&alpha, &cat);

    println!("\nE(α_V) — answered through the view:");
    print!("{}", viewcap_base::display::display_relation(&direct, &cat));
    assert_eq!(direct, via_surrogate);
    println!("Ē(α) agrees with E(α_V) — the surrogate answers the view query.");

    // The template-level surrogate (always available, even without
    // expression provenance) agrees too.
    let tq = view.surrogate_query(&vq, &cat).unwrap();
    assert_eq!(tq.eval(&alpha, &cat), direct);
    println!(
        "Template surrogate has {} tagged tuple(s) after reduction.",
        tq.template().len()
    );
}
