//! `viewcap-cli` — run scenario files against the decision procedures.
//!
//! ```console
//! $ viewcap-cli scenarios/example_3_1_5.vcap
//! $ viewcap-cli --demo                       # built-in demonstration
//! $ viewcap-cli --jobs 8 scenarios/batch_workload.vcap
//! $ viewcap-cli --stats scenarios/batch_workload.vcap
//! $ viewcap-cli --cache-file /tmp/verdicts.vcapcache --cache-max 10000 \
//!       scenarios/incremental_edit.vcap
//! ```
//!
//! Scenario syntax is documented in [`viewcap::scenario`]; `scenarios/` in
//! the repository holds ready-made files. `--jobs N` sets the worker-thread
//! count for `batch` blocks (`0` = all cores; the report is identical for
//! every setting), and `--stats` appends the verdict-cache counters plus
//! the candidate-space reuse counters of the engine's context pool.
//!
//! `--cache-file PATH` persists the verdict cache across runs: an existing
//! file is loaded before the scenario (a corrupted or version-mismatched
//! file is rejected with an error, never silently discarded), and the
//! cache — witnesses included — is saved back on success. Fingerprints
//! embed catalog-relative ids, so share a cache file only between scenarios
//! that declare the same catalog in the same order. `--cache-max N` bounds
//! the cache to `N` verdicts with LRU-ish eviction (`0` = unbounded).

use std::process::ExitCode;
use viewcap::scenario::{run_scenario_with_engine, ScenarioOptions};
use viewcap_core::SearchBudget;
use viewcap_engine::{load_cache_from_path, save_cache_to_path, Engine, VerdictCache};

const DEMO: &str = r#"
# Built-in demo: Example 3.1.5 of Connors (JCSS 1986).
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check member V pi{A}(R)
check member V R
nonredundant V
frontier W 2

# The same questions again, plus dominance — all but one from the cache.
batch {
  check equivalent V W
  check equivalent W V
  check dominates V W
  check member V pi{A}(R)
  check member V R
}

# Replace V's defining query and re-decide the standing workload: only the
# checks touching V recompute.
edit V {
  Joined = R
}
recheck
"#;

fn usage() -> ExitCode {
    eprintln!(
        "usage: viewcap-cli [--jobs N] [--stats] [--cache-file PATH] [--cache-max N] \
         <scenario-file> | --demo"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = ScenarioOptions::default();
    let mut stats = false;
    let mut cache_file: Option<std::path::PathBuf> = None;
    let mut cache_max: Option<usize> = None;
    let mut source: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--demo" if source.is_none() => source = Some(DEMO.to_owned()),
            "--stats" => stats = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("viewcap-cli: --jobs needs a number (0 = all cores)");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
            }
            "--cache-file" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --cache-file needs a path");
                    return ExitCode::FAILURE;
                };
                cache_file = Some(path.into());
            }
            "--cache-max" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("viewcap-cli: --cache-max needs a number (0 = unbounded)");
                    return ExitCode::FAILURE;
                };
                cache_max = (n > 0).then_some(n);
            }
            path if !path.starts_with('-') && source.is_none() => {
                match std::fs::read_to_string(path) {
                    Ok(s) => source = Some(s),
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    let Some(source) = source else {
        return usage();
    };

    let cache = match &cache_file {
        Some(path) if path.exists() => match load_cache_from_path(path, cache_max) {
            Ok(cache) => cache,
            Err(e) => {
                eprintln!("viewcap-cli: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        _ => VerdictCache::bounded(cache_max),
    };
    let engine = Engine::with_cache(SearchBudget::default(), cache);

    match run_scenario_with_engine(&source, &options, &engine) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            println!(
                "-- {} check(s) answered YES, {} answered NO",
                outcome.yes, outcome.no
            );
            if stats {
                println!("-- cache: {}", outcome.stats);
                println!("-- enumeration: {}", outcome.enum_stats);
            }
            if let Some(path) = &cache_file {
                if let Err(e) = save_cache_to_path(engine.cache(), path) {
                    eprintln!("viewcap-cli: cannot save cache `{}`: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("viewcap-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
