//! `viewcap-cli` — run scenario files against the decision procedures.
//!
//! ```console
//! $ viewcap-cli scenarios/example_3_1_5.vcap
//! $ viewcap-cli --demo                       # built-in demonstration
//! $ viewcap-cli --jobs 8 scenarios/batch_workload.vcap
//! $ viewcap-cli --stats scenarios/batch_workload.vcap
//! ```
//!
//! Scenario syntax is documented in [`viewcap::scenario`]; `scenarios/` in
//! the repository holds ready-made files. `--jobs N` sets the worker-thread
//! count for `batch` blocks (`0` = all cores; the report is identical for
//! every setting), and `--stats` appends the verdict-cache counters.

use std::process::ExitCode;
use viewcap::scenario::{run_scenario_with, ScenarioOptions};

const DEMO: &str = r#"
# Built-in demo: Example 3.1.5 of Connors (JCSS 1986).
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check member V pi{A}(R)
check member V R
nonredundant V
frontier W 2

# The same questions again, plus dominance — all but one from the cache.
batch {
  check equivalent V W
  check equivalent W V
  check dominates V W
  check member V pi{A}(R)
  check member V R
}
"#;

fn usage() -> ExitCode {
    eprintln!("usage: viewcap-cli [--jobs N] [--stats] <scenario-file> | --demo");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = ScenarioOptions::default();
    let mut stats = false;
    let mut source: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--demo" if source.is_none() => source = Some(DEMO.to_owned()),
            "--stats" => stats = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("viewcap-cli: --jobs needs a number (0 = all cores)");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
            }
            path if !path.starts_with('-') && source.is_none() => {
                match std::fs::read_to_string(path) {
                    Ok(s) => source = Some(s),
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    let Some(source) = source else {
        return usage();
    };

    match run_scenario_with(&source, &options) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            println!(
                "-- {} check(s) answered YES, {} answered NO",
                outcome.yes, outcome.no
            );
            if stats {
                println!("-- cache: {}", outcome.stats);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("viewcap-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
