//! `viewcap-cli` — run scenario files against the decision procedures,
//! and manage verdict-cache files for fleets of workers.
//!
//! ```console
//! $ viewcap-cli scenarios/example_3_1_5.vcap
//! $ viewcap-cli --demo                       # built-in demonstration
//! $ viewcap-cli --jobs 8 scenarios/batch_workload.vcap
//! $ viewcap-cli --stats scenarios/batch_workload.vcap
//! $ viewcap-cli --cache-file /tmp/verdicts.vcapcache --cache-max 10000 \
//!       scenarios/incremental_edit.vcap
//! $ viewcap-cli cache merge w1.vcapcache w2.vcapcache --out warm.vcapcache
//! $ viewcap-cli cache compact warm.vcapcache --max 50000
//! ```
//!
//! Scenario syntax is documented in [`viewcap::scenario`]; `scenarios/` in
//! the repository holds ready-made files. `--jobs N` sets the worker-thread
//! count for `batch` blocks (`0` = all cores; the report is identical for
//! every setting), and `--stats` prints the verdict-cache counters plus
//! the candidate-space reuse counters of the engine's context pool to
//! *stderr* — stdout carries exactly the scenario report under every flag
//! combination.
//!
//! `--trace-out PATH` and `--metrics-out PATH` enable the telemetry layer
//! (`viewcap-obs`): the first writes a Chrome `trace_event` JSON file
//! (open it in Perfetto or `chrome://tracing`) with spans for checks,
//! enumeration levels, normalization, and cache activity; the second
//! writes a JSON metrics snapshot — counters plus p50/p90/p99 latency
//! histograms. Both write files only; stdout stays byte-identical.
//!
//! `--cache-file PATH` persists the verdict cache across runs: an existing
//! file is loaded before the scenario (a corrupted or version-mismatched
//! file is rejected with an error, never silently discarded), and the
//! cache — witnesses included — is saved back on success. Fingerprints
//! are catalog-content-addressed: a cache file is valid for every scenario
//! declaring the same relations (same names and schemes), in *any*
//! declaration order. `--cache-max N` bounds the cache to `N` verdicts
//! with LRU-ish eviction (`0` = unbounded).
//!
//! The `cache` subcommands fold fleets of workers' caches together:
//! `cache merge <in...> --out FILE` unions N files (last input wins on a
//! shared fingerprint; the verdicts are semantically identical either
//! way), and `cache compact FILE [--out FILE] [--max N]` rewrites one
//! file in canonical form, garbage-collecting unreferenced name-table
//! entries and optionally truncating to the newest `N` entries. Both
//! validate every input fully before writing, and write atomically, so a
//! corrupt input can never poison the output file.
//!
//! `--pile PATH` replaces `--cache-file` with the crash-safe spelling: the
//! scenario's cache loads from the pile's merged verdict set, and the
//! run's verdicts append as one atomic record afterwards — many processes
//! can share one pile concurrently with no merge step and no lost-update
//! window. The `pile` subcommands bridge formats (`pile import` folds
//! `.vcapcache` files in, `pile export` merges a pile back out to one
//! canonical cache file, byte-identical to `cache merge` of the same
//! snapshots) and repair crash damage (`pile recover` truncates a torn
//! suffix back to the last valid record).
//!
//! `--space-file PATH` persists the engine's *candidate spaces* across
//! runs: the enumeration levels each context pool rebuilds from scratch on
//! a cold start. An existing space library hydrates every matching context
//! lazily on its first probe (a corrupted file is rejected with an error;
//! a corrupted entry inside a valid library is skipped and rebuilt), and
//! any levels the run grew beyond the snapshot are harvested and saved
//! back atomically. Keys are catalog-content-addressed like cache
//! fingerprints, so one space file serves every scenario declaring the
//! same relations in any declaration order. The `space` subcommands bridge
//! to piles: `space import` appends library files as space records,
//! `space export` merges a pile's space records back out to one library
//! file (per key, the snapshot with the most levels wins), and
//! `space stats` describes a library file.
//!
//! `serve --socket PATH [--pile PATH]` starts a resident daemon (unix
//! socket, line-delimited protocol; see [`viewcap::serve`]) answering
//! scenario requests without per-run process start-up or cache reload;
//! `client --socket PATH <scenario>` drives a scenario through it and
//! prints a transcript byte-identical to running the scenario directly.

use std::process::ExitCode;
use viewcap::scenario::{run_scenario_with_engine, ScenarioOptions};
use viewcap_engine::{
    compact_cache_bytes, merge_cache_bytes, write_bytes_atomic, EngineConfig, PileStore, Session,
    SpaceLibrary,
};

const DEMO: &str = r#"
# Built-in demo: Example 3.1.5 of Connors (JCSS 1986).
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check member V pi{A}(R)
check member V R
nonredundant V
frontier W 2

# The same questions again, plus dominance — all but one from the cache.
batch {
  check equivalent V W
  check equivalent W V
  check dominates V W
  check member V pi{A}(R)
  check member V R
}

# Replace V's defining query and re-decide the standing workload: only the
# checks touching V recompute.
edit V {
  Joined = R
}
recheck
"#;

fn usage() -> ExitCode {
    eprintln!(
        "usage: viewcap-cli [--jobs N] [--stats] [--cache-file PATH | --pile PATH] \
         [--cache-max N] [--space-file PATH] [--trace-out PATH] [--metrics-out PATH] \
         <scenario-file> | --demo\n       \
         viewcap-cli cache merge <in.vcapcache...> --out <out.vcapcache>\n       \
         viewcap-cli cache compact <file.vcapcache> [--out <out.vcapcache>] [--max N]\n       \
         viewcap-cli pile import <in.vcapcache...> --pile <file.vcappile>\n       \
         viewcap-cli pile export <file.vcappile> --out <out.vcapcache>\n       \
         viewcap-cli pile recover <file.vcappile>\n       \
         viewcap-cli pile stats <file.vcappile>\n       \
         viewcap-cli space import <in.vcapspaces...> --pile <file.vcappile>\n       \
         viewcap-cli space export <file.vcappile> --out <out.vcapspaces>\n       \
         viewcap-cli space stats <file.vcapspaces>\n       \
         viewcap-cli serve --socket PATH [--pile PATH] [--cache-max N]\n       \
         viewcap-cli client --socket PATH [--jobs N] [--warm KEY] \
         (<scenario-file> | --demo | --ping | --stats | --shutdown)"
    );
    ExitCode::FAILURE
}

/// `viewcap-cli pile import|export|recover|stats ...`.
fn pile_command(args: &[String]) -> ExitCode {
    let Some((sub, rest)) = args.split_first() else {
        return usage();
    };
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut out: Option<std::path::PathBuf> = None;
    let mut pile: Option<std::path::PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.into()),
                None => return usage(),
            },
            "--pile" => match it.next() {
                Some(p) => pile = Some(p.into()),
                None => return usage(),
            },
            path if !path.starts_with('-') => inputs.push(path.into()),
            _ => return usage(),
        }
    }
    match sub.as_str() {
        "import" => {
            let Some(pile) = pile else {
                eprintln!("viewcap-cli: pile import needs --pile");
                return ExitCode::FAILURE;
            };
            if inputs.is_empty() {
                eprintln!("viewcap-cli: pile import needs at least one input file");
                return ExitCode::FAILURE;
            }
            let mut store = match PileStore::open(&pile) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("viewcap-cli: {}: {e}", pile.display());
                    return ExitCode::FAILURE;
                }
            };
            for path in &inputs {
                let bytes = match std::fs::read(path) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{}`: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                };
                match store.append_cache_bytes(&bytes) {
                    Ok(entries) => println!(
                        "imported {entries} entries from {} -> {}",
                        path.display(),
                        pile.display()
                    ),
                    Err(e) => {
                        eprintln!("viewcap-cli: pile import `{}`: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let ([input], Some(out)) = (inputs.as_slice(), out) else {
                eprintln!("viewcap-cli: pile export takes one pile file and --out");
                return ExitCode::FAILURE;
            };
            let mut store = match PileStore::open(input) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("viewcap-cli: {}: {e}", input.display());
                    return ExitCode::FAILURE;
                }
            };
            match store.merged_bytes() {
                Ok((bytes, report)) => {
                    if let Err(e) = write_bytes_atomic(&out, &bytes) {
                        eprintln!("viewcap-cli: cannot write `{}`: {e}", out.display());
                        return ExitCode::FAILURE;
                    }
                    println!("exported {report} -> {}", out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: pile export: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "recover" => {
            let [input] = inputs.as_slice() else {
                eprintln!("viewcap-cli: pile recover takes exactly one pile file");
                return ExitCode::FAILURE;
            };
            match PileStore::recover(input) {
                Ok((_, report)) => {
                    println!("recovered {report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: pile recover `{}`: {e}", input.display());
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let [input] = inputs.as_slice() else {
                eprintln!("viewcap-cli: pile stats takes exactly one pile file");
                return ExitCode::FAILURE;
            };
            let mut store = match PileStore::open(input) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("viewcap-cli: {}: {e}", input.display());
                    return ExitCode::FAILURE;
                }
            };
            match (store.record_count(), store.merged_bytes()) {
                (Ok(records), Ok((_, report))) => {
                    println!("{records} record(s), merged {report}");
                    ExitCode::SUCCESS
                }
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("viewcap-cli: pile stats: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// `viewcap-cli space import|export|stats ...`.
fn space_command(args: &[String]) -> ExitCode {
    let Some((sub, rest)) = args.split_first() else {
        return usage();
    };
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut out: Option<std::path::PathBuf> = None;
    let mut pile: Option<std::path::PathBuf> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.into()),
                None => return usage(),
            },
            "--pile" => match it.next() {
                Some(p) => pile = Some(p.into()),
                None => return usage(),
            },
            path if !path.starts_with('-') => inputs.push(path.into()),
            _ => return usage(),
        }
    }
    match sub.as_str() {
        "import" => {
            let Some(pile) = pile else {
                eprintln!("viewcap-cli: space import needs --pile");
                return ExitCode::FAILURE;
            };
            if inputs.is_empty() {
                eprintln!("viewcap-cli: space import needs at least one input file");
                return ExitCode::FAILURE;
            }
            let mut store = match PileStore::open(&pile) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("viewcap-cli: {}: {e}", pile.display());
                    return ExitCode::FAILURE;
                }
            };
            for path in &inputs {
                let bytes = match std::fs::read(path) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{}`: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                };
                match store.append_space_bytes(&bytes) {
                    Ok(entries) => println!(
                        "imported {entries} space(s) from {} -> {}",
                        path.display(),
                        pile.display()
                    ),
                    Err(e) => {
                        eprintln!("viewcap-cli: space import `{}`: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let ([input], Some(out)) = (inputs.as_slice(), out) else {
                eprintln!("viewcap-cli: space export takes one pile file and --out");
                return ExitCode::FAILURE;
            };
            let mut store = match PileStore::open(input) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("viewcap-cli: {}: {e}", input.display());
                    return ExitCode::FAILURE;
                }
            };
            match store.load_spaces() {
                Ok(library) => {
                    if let Err(e) = library.save(&out) {
                        eprintln!("viewcap-cli: cannot write `{}`: {e}", out.display());
                        return ExitCode::FAILURE;
                    }
                    println!("exported {} space(s) -> {}", library.len(), out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: space export: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "stats" => {
            let [input] = inputs.as_slice() else {
                eprintln!("viewcap-cli: space stats takes exactly one library file");
                return ExitCode::FAILURE;
            };
            let bytes = match std::fs::read(input) {
                Ok(bytes) => bytes,
                Err(e) => {
                    eprintln!("viewcap-cli: cannot read `{}`: {e}", input.display());
                    return ExitCode::FAILURE;
                }
            };
            match SpaceLibrary::from_bytes(&bytes) {
                Ok(library) => {
                    println!("{} space(s), {} byte(s)", library.len(), bytes.len());
                    for (digest, payload) in library.iter() {
                        println!("  {digest:032x}  {} byte(s)", payload.len());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: space stats `{}`: {e}", input.display());
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// `viewcap-cli serve --socket PATH [--pile PATH] [--cache-max N]`.
#[cfg(unix)]
fn serve_command(args: &[String]) -> ExitCode {
    let mut config = viewcap::serve::ServeConfig {
        socket: std::path::PathBuf::new(),
        pile: None,
        cache_max: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(p) => config.socket = p.into(),
                None => return usage(),
            },
            "--pile" => match it.next() {
                Some(p) => config.pile = Some(p.into()),
                None => return usage(),
            },
            "--cache-max" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => config.cache_max = (n > 0).then_some(n),
                None => {
                    eprintln!("viewcap-cli: --cache-max needs a number (0 = unbounded)");
                    return ExitCode::FAILURE;
                }
            },
            _ => return usage(),
        }
    }
    if config.socket.as_os_str().is_empty() {
        eprintln!("viewcap-cli: serve needs --socket");
        return ExitCode::FAILURE;
    }
    match viewcap::serve::serve(&config) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("viewcap-cli: serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `viewcap-cli client --socket PATH ...`.
#[cfg(unix)]
fn client_command(args: &[String]) -> ExitCode {
    use viewcap::serve::{client_request, ClientRequest};
    let mut socket: Option<std::path::PathBuf> = None;
    let mut jobs = 1usize;
    let mut warm_key: Option<String> = None;
    let mut source: Option<String> = None;
    let mut op: Option<ClientRequest> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => match it.next() {
                Some(p) => socket = Some(p.into()),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("viewcap-cli: --jobs needs a number (0 = all cores)");
                    return ExitCode::FAILURE;
                }
            },
            "--warm" => match it.next() {
                Some(key) => warm_key = Some(key.clone()),
                None => return usage(),
            },
            "--demo" if source.is_none() => source = Some(DEMO.to_owned()),
            "--ping" => op = Some(ClientRequest::Ping),
            "--stats" => op = Some(ClientRequest::Stats),
            "--shutdown" => op = Some(ClientRequest::Shutdown),
            path if !path.starts_with('-') && source.is_none() => {
                match std::fs::read_to_string(path) {
                    Ok(s) => source = Some(s),
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    let Some(socket) = socket else {
        eprintln!("viewcap-cli: client needs --socket");
        return ExitCode::FAILURE;
    };
    let request = match (op, source) {
        (Some(op), None) => op,
        (None, Some(source)) => ClientRequest::Run {
            source,
            jobs,
            warm_key,
        },
        _ => return usage(),
    };
    match client_request(&socket, &request) {
        Ok(response) if response.ok => {
            print!("{}", response.body);
            ExitCode::SUCCESS
        }
        Ok(response) => {
            eprint!("viewcap-cli: daemon: {}", response.body);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("viewcap-cli: client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `viewcap-cli cache merge|compact ...`.
fn cache_command(args: &[String]) -> ExitCode {
    let Some((sub, rest)) = args.split_first() else {
        return usage();
    };
    let mut inputs: Vec<std::path::PathBuf> = Vec::new();
    let mut out: Option<std::path::PathBuf> = None;
    let mut max: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.into()),
                None => return usage(),
            },
            "--max" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => max = (n > 0).then_some(n),
                None => {
                    eprintln!("viewcap-cli: --max needs a number (0 = unbounded)");
                    return ExitCode::FAILURE;
                }
            },
            path if !path.starts_with('-') => inputs.push(path.into()),
            _ => return usage(),
        }
    }
    let read = |path: &std::path::Path| match std::fs::read(path) {
        Ok(bytes) => Some(bytes),
        Err(e) => {
            eprintln!("viewcap-cli: cannot read `{}`: {e}", path.display());
            None
        }
    };
    match sub.as_str() {
        "merge" => {
            let Some(out) = out else {
                eprintln!("viewcap-cli: cache merge needs --out");
                return ExitCode::FAILURE;
            };
            if inputs.is_empty() {
                eprintln!("viewcap-cli: cache merge needs at least one input file");
                return ExitCode::FAILURE;
            }
            let mut files = Vec::with_capacity(inputs.len());
            for path in &inputs {
                match read(path) {
                    Some(bytes) => files.push(bytes),
                    None => return ExitCode::FAILURE,
                }
            }
            match merge_cache_bytes(&files) {
                Ok((bytes, report)) => {
                    if let Err(e) = write_bytes_atomic(&out, &bytes) {
                        eprintln!("viewcap-cli: cannot write `{}`: {e}", out.display());
                        return ExitCode::FAILURE;
                    }
                    println!("merged {report} -> {}", out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: cache merge: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compact" => {
            let [input] = inputs.as_slice() else {
                eprintln!("viewcap-cli: cache compact takes exactly one input file");
                return ExitCode::FAILURE;
            };
            let Some(bytes) = read(input) else {
                return ExitCode::FAILURE;
            };
            let out = out.unwrap_or_else(|| input.clone());
            match compact_cache_bytes(&bytes, max) {
                Ok((bytes, report)) => {
                    if let Err(e) = write_bytes_atomic(&out, &bytes) {
                        eprintln!("viewcap-cli: cannot write `{}`: {e}", out.display());
                        return ExitCode::FAILURE;
                    }
                    println!("compacted {report} -> {}", out.display());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("viewcap-cli: cache compact: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("cache") => return cache_command(&args[1..]),
        Some("pile") => return pile_command(&args[1..]),
        Some("space") => return space_command(&args[1..]),
        #[cfg(unix)]
        Some("serve") => return serve_command(&args[1..]),
        #[cfg(unix)]
        Some("client") => return client_command(&args[1..]),
        #[cfg(not(unix))]
        Some("serve") | Some("client") => {
            eprintln!("viewcap-cli: serve/client need unix sockets");
            return ExitCode::FAILURE;
        }
        _ => {}
    }
    let mut options = ScenarioOptions::default();
    let mut stats = false;
    let mut cache_file: Option<std::path::PathBuf> = None;
    let mut pile_file: Option<std::path::PathBuf> = None;
    let mut cache_max: Option<usize> = None;
    let mut space_file: Option<std::path::PathBuf> = None;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut source: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--demo" if source.is_none() => source = Some(DEMO.to_owned()),
            "--stats" => stats = true,
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("viewcap-cli: --jobs needs a number (0 = all cores)");
                    return ExitCode::FAILURE;
                };
                options.jobs = n;
            }
            "--cache-file" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --cache-file needs a path");
                    return ExitCode::FAILURE;
                };
                cache_file = Some(path.into());
            }
            "--pile" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --pile needs a path");
                    return ExitCode::FAILURE;
                };
                pile_file = Some(path.into());
            }
            "--cache-max" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("viewcap-cli: --cache-max needs a number (0 = unbounded)");
                    return ExitCode::FAILURE;
                };
                cache_max = (n > 0).then_some(n);
            }
            "--space-file" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --space-file needs a path");
                    return ExitCode::FAILURE;
                };
                space_file = Some(path.into());
            }
            "--trace-out" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --trace-out needs a path");
                    return ExitCode::FAILURE;
                };
                trace_out = Some(path.into());
            }
            "--metrics-out" => {
                let Some(path) = it.next() else {
                    eprintln!("viewcap-cli: --metrics-out needs a path");
                    return ExitCode::FAILURE;
                };
                metrics_out = Some(path.into());
            }
            path if !path.starts_with('-') && source.is_none() => {
                match std::fs::read_to_string(path) {
                    Ok(s) => source = Some(s),
                    Err(e) => {
                        eprintln!("viewcap-cli: cannot read `{path}`: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            _ => return usage(),
        }
    }
    let Some(source) = source else {
        return usage();
    };
    if trace_out.is_some() || metrics_out.is_some() {
        viewcap_obs::set_enabled(true);
    }

    // One `EngineConfig` names everything the run needs — cache source
    // (file, pile, or a fresh bounded cache), space library, worker count —
    // and `Session::open` loads it all eagerly: a corrupt file errors here,
    // never a silent cold start.
    let mut config = EngineConfig::new().cache_max(cache_max).jobs(options.jobs);
    if let Some(path) = &cache_file {
        config = config.cache_file(path);
    }
    if let Some(path) = &pile_file {
        config = config.pile(path);
    }
    if let Some(path) = &space_file {
        config = config.space_file(path);
    }
    let mut session = match Session::open(config) {
        Ok(session) => session,
        Err(e) if pile_file.is_some() => {
            eprintln!("viewcap-cli: {e} (try `viewcap-cli pile recover`)");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("viewcap-cli: {e}");
            return ExitCode::FAILURE;
        }
    };

    match run_scenario_with_engine(&source, &options, session.engine()) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            println!(
                "-- {} check(s) answered YES, {} answered NO",
                outcome.yes, outcome.no
            );
            if stats {
                // Diagnostics go to stderr: stdout is the pinned scenario
                // transcript, byte-identical under every flag combination.
                eprint!("{}", outcome.run_stats());
            }
            // Write back everything the configuration promised: the cache
            // file, the pile append, the harvested candidate spaces.
            if let Err(e) = session.persist(&outcome.catalog) {
                eprintln!("viewcap-cli: cannot persist: {e}");
                return ExitCode::FAILURE;
            }
            // The cache save above belongs in the telemetry too, so the
            // snapshot and trace are written last.
            if let Some(path) = &metrics_out {
                let snapshot = viewcap_obs::snapshot();
                if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                    eprintln!(
                        "viewcap-cli: cannot write metrics `{}`: {e}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
            if let Some(path) = &trace_out {
                if let Err(e) = std::fs::write(path, viewcap_obs::trace_json()) {
                    eprintln!("viewcap-cli: cannot write trace `{}`: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("viewcap-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
