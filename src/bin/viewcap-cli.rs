//! `viewcap-cli` — run scenario files against the decision procedures.
//!
//! ```console
//! $ viewcap-cli scenarios/example_3_1_5.vcap
//! $ viewcap-cli --demo          # run the built-in demonstration
//! ```
//!
//! Scenario syntax is documented in [`viewcap::scenario`]; `scenarios/` in
//! the repository holds ready-made files.

use std::process::ExitCode;
use viewcap::scenario::run_scenario;

const DEMO: &str = r#"
# Built-in demo: Example 3.1.5 of Connors (JCSS 1986).
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check member V pi{A}(R)
check member V R
nonredundant V
frontier W 2
"#;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let source = match args.as_slice() {
        [flag] if flag == "--demo" => DEMO.to_owned(),
        [path] => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("viewcap-cli: cannot read `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!("usage: viewcap-cli <scenario-file> | --demo");
            return ExitCode::FAILURE;
        }
    };

    match run_scenario(&source) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            println!(
                "-- {} check(s) answered YES, {} answered NO",
                outcome.yes, outcome.no
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("viewcap-cli: {e}");
            ExitCode::FAILURE
        }
    }
}
