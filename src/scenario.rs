//! Scenario files: a small line-oriented language for driving the decision
//! procedures from text, used by the `viewcap-cli` binary and handy in
//! tests and demos.
//!
//! ```text
//! # schema
//! rel R(A, B, C)
//!
//! # views: name { view_relation = expression; ... }
//! view V {
//!   Joined = pi{A,B}(R) * pi{B,C}(R)
//! }
//! view W {
//!   Left  = pi{A,B}(R)
//!   Right = pi{B,C}(R)
//! }
//!
//! # questions
//! check equivalent V W
//! check dominates V W
//! check member V pi{A}(R)
//! nonredundant V
//! simplify V
//! frontier V 2
//! ```
//!
//! Execution is deterministic; every command appends lines to the report.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use viewcap_base::{Catalog, RelId};
use viewcap_core::closure::capacity_members;
use viewcap_core::equivalence::{dominates, equivalent};
use viewcap_core::redundancy::make_nonredundant;
use viewcap_core::simplify::simplify_view;
use viewcap_core::{cap_contains, Query, SearchBudget, View};
use viewcap_expr::display::{display_expr, display_scheme};
use viewcap_expr::parse_expr;

/// A parsed-and-executed scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Human-readable report, one block per command.
    pub report: String,
    /// Number of `check` commands that answered "yes".
    pub yes: usize,
    /// Number of `check` commands that answered "no".
    pub no: usize,
}

/// Errors from scenario parsing or execution.
#[derive(Debug)]
pub struct ScenarioError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScenarioError {}

struct Runner {
    catalog: Catalog,
    views: BTreeMap<String, View>,
    budget: SearchBudget,
    report: String,
    yes: usize,
    no: usize,
}

/// Run a scenario from source text.
pub fn run_scenario(src: &str) -> Result<ScenarioOutcome, ScenarioError> {
    let mut runner = Runner {
        catalog: Catalog::new(),
        views: BTreeMap::new(),
        budget: SearchBudget::default(),
        report: String::new(),
        yes: 0,
        no: 0,
    };
    let err = |line: usize, msg: String| ScenarioError { line, msg };

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_owned();
        i += 1;
        if line.is_empty() {
            continue;
        }
        let (head, rest) = split_word(&line);
        match head {
            "rel" => runner
                .cmd_rel(rest)
                .map_err(|m| err(lineno, m))?,
            "view" => {
                // Collect the block up to the closing brace.
                let name = rest.trim_end_matches('{').trim().to_owned();
                if name.is_empty() {
                    return Err(err(lineno, "view needs a name".into()));
                }
                if !line.ends_with('{') {
                    return Err(err(lineno, "expected `{` to open the view block".into()));
                }
                let mut body = Vec::new();
                loop {
                    if i >= lines.len() {
                        return Err(err(lineno, format!("view `{name}` is never closed")));
                    }
                    let bl = strip_comment(lines[i]).trim().to_owned();
                    let blno = i + 1;
                    i += 1;
                    if bl == "}" {
                        break;
                    }
                    if !bl.is_empty() {
                        body.push((blno, bl));
                    }
                }
                runner.cmd_view(&name, &body).map_err(|(l, m)| err(l, m))?;
            }
            "check" => runner.cmd_check(rest).map_err(|m| err(lineno, m))?,
            "nonredundant" => runner.cmd_nonredundant(rest).map_err(|m| err(lineno, m))?,
            "simplify" => runner.cmd_simplify(rest).map_err(|m| err(lineno, m))?,
            "frontier" => runner.cmd_frontier(rest).map_err(|m| err(lineno, m))?,
            other => return Err(err(lineno, format!("unknown command `{other}`"))),
        }
    }
    Ok(ScenarioOutcome {
        report: runner.report,
        yes: runner.yes,
        no: runner.no,
    })
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    }
}

fn split_word(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((a, b)) => (a, b.trim()),
        None => (line, ""),
    }
}

impl Runner {
    fn view(&self, name: &str) -> Result<&View, String> {
        self.views
            .get(name)
            .ok_or_else(|| format!("unknown view `{name}`"))
    }

    fn cmd_rel(&mut self, rest: &str) -> Result<(), String> {
        // `R(A, B, C)`
        let (name, args) = rest
            .split_once('(')
            .ok_or_else(|| "expected `rel NAME(ATTRS…)`".to_owned())?;
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| "missing `)`".to_owned())?;
        let attrs: Vec<&str> = args
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if attrs.is_empty() {
            return Err("relations need at least one attribute".into());
        }
        self.catalog
            .relation(name.trim(), &attrs)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(self.report, "rel {} declared", name.trim());
        Ok(())
    }

    fn cmd_view(&mut self, name: &str, body: &[(usize, String)]) -> Result<(), (usize, String)> {
        let mut pairs: Vec<(viewcap_expr::Expr, RelId)> = Vec::new();
        for (lineno, entry) in body {
            let (vname, src) = entry
                .split_once('=')
                .ok_or((*lineno, "expected `Name = expression`".to_owned()))?;
            let expr = parse_expr(src.trim(), &self.catalog)
                .map_err(|e| (*lineno, e.to_string()))?;
            let q = Query::from_expr(expr.clone(), &self.catalog);
            let rel = self
                .catalog
                .add_relation(vname.trim(), q.trs())
                .map_err(|e| (*lineno, e.to_string()))?;
            pairs.push((expr, rel));
        }
        let view = View::from_exprs(pairs, &self.catalog)
            .map_err(|e| (body.first().map_or(0, |(l, _)| *l), e.to_string()))?;
        let _ = writeln!(
            self.report,
            "view {name} defined with {} relation(s)",
            view.len()
        );
        self.views.insert(name.to_owned(), view);
        Ok(())
    }

    fn cmd_check(&mut self, rest: &str) -> Result<(), String> {
        let (kind, args) = split_word(rest);
        match kind {
            "equivalent" => {
                let (a, b) = split_word(args);
                let (va, vb) = (self.view(a)?.clone(), self.view(b)?.clone());
                let res = equivalent(&va, &vb, &self.catalog).map_err(|e| e.to_string())?;
                self.record_bool(
                    &format!("check equivalent {a} {b}"),
                    res.is_some(),
                );
            }
            "dominates" => {
                let (a, b) = split_word(args);
                let (va, vb) = (self.view(a)?.clone(), self.view(b)?.clone());
                let res = dominates(&va, &vb, &self.catalog).map_err(|e| e.to_string())?;
                self.record_bool(&format!("check dominates {a} {b}"), res.is_some());
            }
            "member" => {
                let (vname, expr_src) = split_word(args);
                let view = self.view(vname)?.clone();
                let expr =
                    parse_expr(expr_src, &self.catalog).map_err(|e| e.to_string())?;
                let goal = Query::from_expr(expr, &self.catalog);
                let res = cap_contains(&view, &goal, &self.catalog, &self.budget)
                    .map_err(|e| e.to_string())?;
                match &res {
                    Some(proof) => {
                        let names: Vec<RelId> = view.schema();
                        let skel = proof.skeleton_with_names(&names);
                        let _ = writeln!(
                            self.report,
                            "check member {vname} {expr_src}: YES via {}",
                            display_expr(&skel, &self.catalog)
                        );
                        self.yes += 1;
                    }
                    None => {
                        let _ = writeln!(
                            self.report,
                            "check member {vname} {expr_src}: NO"
                        );
                        self.no += 1;
                    }
                }
            }
            other => return Err(format!("unknown check `{other}`")),
        }
        Ok(())
    }

    fn record_bool(&mut self, what: &str, outcome: bool) {
        let _ = writeln!(self.report, "{what}: {}", if outcome { "YES" } else { "NO" });
        if outcome {
            self.yes += 1;
        } else {
            self.no += 1;
        }
    }

    fn cmd_nonredundant(&mut self, rest: &str) -> Result<(), String> {
        let view = self.view(rest.trim())?.clone();
        let slim =
            make_nonredundant(&view, &self.catalog, &self.budget).map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.report,
            "nonredundant {}: {} -> {} relation(s)",
            rest.trim(),
            view.len(),
            slim.len()
        );
        for (_, name) in slim.pairs() {
            let _ = writeln!(self.report, "  kept {}", self.catalog.rel_name(*name));
        }
        Ok(())
    }

    fn cmd_simplify(&mut self, rest: &str) -> Result<(), String> {
        let view = self.view(rest.trim())?.clone();
        let mut catalog = self.catalog.clone();
        let simplified =
            simplify_view(&view, &mut catalog, &self.budget).map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.report,
            "simplify {}: {} -> {} relation(s)",
            rest.trim(),
            view.len(),
            simplified.len()
        );
        for (q, _) in simplified.pairs() {
            let _ = writeln!(
                self.report,
                "  simple query with TRS {}",
                display_scheme(&q.trs(), &catalog)
            );
        }
        self.catalog = catalog;
        Ok(())
    }

    fn cmd_frontier(&mut self, rest: &str) -> Result<(), String> {
        let (vname, k_src) = split_word(rest);
        let view = self.view(vname)?.clone();
        let k: usize = k_src
            .trim()
            .parse()
            .map_err(|_| format!("bad atom bound `{k_src}`"))?;
        let members = capacity_members(&view, k, &self.catalog, &self.budget)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.report,
            "frontier {vname} {k}: {} distinct member(s)",
            members.len()
        );
        for m in &members {
            let _ = writeln!(
                self.report,
                "  TRS {} (construction size {})",
                display_scheme(&m.query.trs(), &self.catalog),
                m.construction_size
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
# Example 3.1.5 as a scenario
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check dominates V W
check member V pi{A}(R)
check member V R
"#;

    #[test]
    fn demo_scenario_runs() {
        let out = run_scenario(DEMO).unwrap();
        assert_eq!(out.yes, 3); // equivalent, dominates, member π_A(R)
        assert_eq!(out.no, 1); // member R
        assert!(out.report.contains("check equivalent V W: YES"));
        assert!(out.report.contains("check member V R: NO"));
        assert!(out.report.contains("YES via"));
    }

    #[test]
    fn unknown_commands_error_with_line_numbers() {
        let err = run_scenario("rel R(A)\nfrobnicate R\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn parse_errors_point_at_the_view_body() {
        let err = run_scenario("rel R(A,B)\nview V {\n  X = pi{C}(R)\n}\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unclosed_view_blocks_error() {
        let err = run_scenario("rel R(A)\nview V {\n  X = R\n").unwrap_err();
        assert!(err.to_string().contains("never closed"));
    }

    #[test]
    fn nonredundant_and_simplify_commands() {
        let src = r#"
rel R(A, B, C)
view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
  Extra  = pi{B}(R)
}
nonredundant V
simplify V
"#;
        let out = run_scenario(src).unwrap();
        assert!(out.report.contains("nonredundant V: 2 -> 1 relation(s)"));
        assert!(out.report.contains("simplify V: 2 -> 2 relation(s)"));
    }

    #[test]
    fn frontier_command_lists_members() {
        let src = "rel R(A, B)\nview V {\n  P = pi{A}(R)\n}\nfrontier V 2\n";
        let out = run_scenario(src).unwrap();
        assert!(out.report.contains("frontier V 2: 1 distinct member(s)"));
    }
}
