//! Scenario files: a small line-oriented language for driving the decision
//! procedures from text, used by the `viewcap-cli` binary and handy in
//! tests and demos.
//!
//! ```text
//! # optionally prove catalog-order independence: buffer the following
//! # `rel` lines and declare them in a seed-shuffled order (attribute
//! # interning order shuffled too). Verdicts — and persisted-cache hits —
//! # must not change, because fingerprints are content-addressed.
//! catalog permute 7
//!
//! # schema
//! rel R(A, B, C)
//!
//! # views: name { view_relation = expression; ... }
//! view V {
//!   Joined = pi{A,B}(R) * pi{B,C}(R)
//! }
//! view W {
//!   Left  = pi{A,B}(R)
//!   Right = pi{B,C}(R)
//! }
//!
//! # questions
//! check equivalent V W
//! check dominates V W
//! check member V pi{A}(R)
//! nonredundant V
//! simplify V
//! frontier V 2
//!
//! # many questions at once: deduplicated, cached, run in parallel
//! batch {
//!   check equivalent V W
//!   check member V pi{A}(R)
//!   check member W pi{A}(R)
//! }
//!
//! # catalog edits: add / replace / drop one view's defining queries
//! edit V {
//!   Joined = R            # replace (or add) the pair named Joined
//!   drop Extra            # remove the pair named Extra
//! }
//!
//! # several edits as one transaction: each standing check invalidates
//! # once however many edits touch it
//! txn {
//!   edit V {
//!     Joined = pi{A,B}(R)
//!   }
//!   edit W {
//!     drop Right
//!   }
//! }
//!
//! # re-decide the standing workload incrementally: only checks touching
//! # edited views recompute, everything else is reused
//! recheck
//!
//! # capacity-frontier diff of two view versions at atom bound 2:
//! # what V can answer that W cannot, and vice versa
//! diff V W 2
//! ```
//!
//! Execution is deterministic; every command appends lines to the report.
//! All `check`s (single or batched) — and the `simplify` /
//! `nonredundant` normalization commands — route through the
//! [`viewcap_engine::Engine`], so repeated questions — within a batch or
//! across the whole scenario — are answered from the verdict cache. Every
//! decided check also joins the scenario's *standing workload*
//! ([`viewcap_engine::DeltaWorkload`]): `edit` blocks invalidate exactly
//! the standing checks that touch the edited view, and `recheck` re-poses
//! only those, reporting how much was reused. The report is byte-identical
//! for every `--jobs` setting.
//!
//! Replacing a defining query with one of a different target scheme mints
//! a fresh catalog relation (the display name gains a `$n` suffix), since
//! a relation name's type is fixed at declaration.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use viewcap_base::{Catalog, RelId};
use viewcap_core::closure::capacity_members;
use viewcap_core::{frontier_diff, ClosureContext, Query, SearchBudget, View};
use viewcap_engine::{
    view_fingerprint, CacheStats, Check, Decision, DeltaWorkload, Engine, EnumStats, Fingerprint,
    Request, Verdict, Workload,
};
use viewcap_expr::display::{display_expr, display_scheme};
use viewcap_expr::parse_expr;
use viewcap_obs::MetricsSnapshot;

/// Execution options for [`run_scenario_with`].
#[derive(Clone, Debug)]
pub struct ScenarioOptions {
    /// Worker threads for `batch` blocks (`0` = available parallelism).
    pub jobs: usize,
}

impl Default for ScenarioOptions {
    fn default() -> Self {
        ScenarioOptions { jobs: 1 }
    }
}

/// A parsed-and-executed scenario.
#[derive(Debug)]
pub struct ScenarioOutcome {
    /// Human-readable report, one block per command.
    pub report: String,
    /// Number of `check` commands that answered "yes".
    pub yes: usize,
    /// Number of `check` commands that answered "no".
    pub no: usize,
    /// Verdict-cache counters accumulated over the run.
    pub stats: CacheStats,
    /// Candidate-space reuse counters from the engine's context pool.
    pub enum_stats: EnumStats,
    /// Telemetry registry snapshot taken as the run finished. Empty
    /// unless [`viewcap_obs::set_enabled`] was on; counter values (as
    /// opposed to the timing histograms) are deterministic for a
    /// scenario whatever the `--jobs` setting. The registry is
    /// process-global and is *not* reset here — callers comparing runs
    /// call [`viewcap_obs::reset`] between them.
    pub metrics: MetricsSnapshot,
    /// The catalog as the scenario left it — what cache persistence needs
    /// to resolve natively computed witnesses to names
    /// ([`viewcap_engine::save_cache`]).
    pub catalog: Catalog,
}

impl ScenarioOutcome {
    /// Every diagnostic counter of the run behind one accessor: the
    /// verdict-cache counters, the candidate-space enumeration counters,
    /// and the telemetry snapshot. `Display` renders exactly the stderr
    /// block the CLI prints under `--stats` (`-- cache: …` /
    /// `-- enumeration: …`), so drivers fold diagnostics in without
    /// re-assembling format strings by hand.
    pub fn run_stats(&self) -> RunStats<'_> {
        RunStats {
            cache: &self.stats,
            enumeration: &self.enum_stats,
            metrics: &self.metrics,
        }
    }
}

/// Borrowed bundle of a run's diagnostic counters
/// ([`ScenarioOutcome::run_stats`]).
#[derive(Clone, Copy, Debug)]
pub struct RunStats<'a> {
    /// Verdict-cache counters accumulated over the run.
    pub cache: &'a CacheStats,
    /// Candidate-space reuse counters from the engine's context pools.
    pub enumeration: &'a EnumStats,
    /// The telemetry registry snapshot taken as the run finished (empty
    /// unless [`viewcap_obs::set_enabled`] was on).
    pub metrics: &'a MetricsSnapshot,
}

impl std::fmt::Display for RunStats<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "-- cache: {}", self.cache)?;
        writeln!(f, "-- enumeration: {}", self.enumeration)
    }
}

/// Errors from scenario parsing or execution.
#[derive(Debug)]
pub struct ScenarioError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ScenarioError {}

/// A scenario view plus the *logical* (as-declared) name of each defining
/// pair. Catalog relation names can drift when an edit changes a pair's
/// target scheme (a fresh `name$n` relation is minted); edits keep
/// addressing pairs by their logical names regardless.
struct NamedView {
    view: View,
    logical: Vec<String>,
}

struct Runner<'a> {
    catalog: Catalog,
    views: BTreeMap<String, NamedView>,
    budget: SearchBudget,
    engine: &'a Engine,
    delta: DeltaWorkload,
    jobs: usize,
    report: String,
    yes: usize,
    no: usize,
    /// Armed by `catalog permute SEED`: the initial run of `rel`
    /// declarations is buffered and declared in a seed-determined order.
    permute_seed: Option<u64>,
    /// Buffered `(name, attrs)` declarations awaiting the permuted flush.
    rel_buffer: Vec<(String, Vec<String>)>,
    /// One shared [`ClosureContext`] pair per diffed version pair, keyed by
    /// the two versions' content fingerprints: re-diffing a pair — or
    /// growing its atom bound — reuses the lazily extended candidate
    /// spaces instead of re-enumerating from scratch.
    diff_contexts: HashMap<(Fingerprint, Fingerprint), (ClosureContext, ClosureContext)>,
}

/// Run a scenario from source text with default options (sequential).
pub fn run_scenario(src: &str) -> Result<ScenarioOutcome, ScenarioError> {
    run_scenario_with(src, &ScenarioOptions::default())
}

/// Run a scenario from source text with a fresh, unbounded engine.
pub fn run_scenario_with(
    src: &str,
    options: &ScenarioOptions,
) -> Result<ScenarioOutcome, ScenarioError> {
    let engine = Engine::new();
    run_scenario_with_engine(src, options, &engine)
}

/// Run a scenario against a caller-provided engine — one with a bounded
/// and/or disk-loaded verdict cache, or one shared across scenario runs.
/// The cache is catalog-content-addressed: reuse is sound whenever the
/// scenarios declare the same relations (same names, same schemes), in
/// *any* declaration order.
pub fn run_scenario_with_engine(
    src: &str,
    options: &ScenarioOptions,
    engine: &Engine,
) -> Result<ScenarioOutcome, ScenarioError> {
    let mut runner = Runner {
        catalog: Catalog::new(),
        views: BTreeMap::new(),
        engine,
        delta: DeltaWorkload::new(),
        jobs: options.jobs,
        budget: engine.budget().clone(),
        report: String::new(),
        yes: 0,
        no: 0,
        permute_seed: None,
        rel_buffer: Vec::new(),
        diff_contexts: HashMap::new(),
    };
    let err = |line: usize, msg: String| ScenarioError { line, msg };

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]).trim().to_owned();
        i += 1;
        if line.is_empty() {
            continue;
        }
        let (head, rest) = split_word(&line);
        // Any command other than `rel` flushes buffered (to-be-permuted)
        // declarations first, so views and checks see a complete catalog.
        if head != "rel" {
            runner.flush_rels().map_err(|m| err(lineno, m))?;
        }
        match head {
            "rel" => runner.cmd_rel(rest).map_err(|m| err(lineno, m))?,
            "catalog" => runner.cmd_catalog(rest).map_err(|m| err(lineno, m))?,
            "view" => {
                let name = rest.trim_end_matches('{').trim().to_owned();
                if name.is_empty() {
                    return Err(err(lineno, "view needs a name".into()));
                }
                if !line.ends_with('{') {
                    return Err(err(lineno, "expected `{` to open the view block".into()));
                }
                let body = collect_block(&lines, &mut i)
                    .ok_or_else(|| err(lineno, format!("view `{name}` is never closed")))?;
                runner.cmd_view(&name, &body).map_err(|(l, m)| err(l, m))?;
            }
            "check" => runner.cmd_check(rest).map_err(|m| err(lineno, m))?,
            "edit" => {
                let name = rest.trim_end_matches('{').trim().to_owned();
                if name.is_empty() {
                    return Err(err(lineno, "edit needs a view name".into()));
                }
                if !line.ends_with('{') {
                    return Err(err(lineno, "expected `{` to open the edit block".into()));
                }
                let body = collect_block(&lines, &mut i)
                    .ok_or_else(|| err(lineno, format!("edit `{name}` is never closed")))?;
                runner
                    .cmd_edit(lineno, &name, &body)
                    .map_err(|(l, m)| err(l, m))?;
            }
            "recheck" => {
                if !rest.trim().is_empty() {
                    return Err(err(lineno, "recheck takes no arguments".into()));
                }
                runner.cmd_recheck().map_err(|m| err(lineno, m))?;
            }
            "batch" => {
                if rest.trim() != "{" {
                    return Err(err(lineno, "expected `batch {`".into()));
                }
                let body = collect_block(&lines, &mut i)
                    .ok_or_else(|| err(lineno, "batch block is never closed".into()))?;
                runner.cmd_batch(&body).map_err(|(l, m)| err(l, m))?;
            }
            "txn" => {
                if rest.trim() != "{" {
                    return Err(err(lineno, "expected `txn {`".into()));
                }
                let body = collect_nested_block(&lines, &mut i)
                    .ok_or_else(|| err(lineno, "txn block is never closed".into()))?;
                runner.cmd_txn(lineno, &body).map_err(|(l, m)| err(l, m))?;
            }
            "nonredundant" => runner.cmd_nonredundant(rest).map_err(|m| err(lineno, m))?,
            "simplify" => runner.cmd_simplify(rest).map_err(|m| err(lineno, m))?,
            "frontier" => runner.cmd_frontier(rest).map_err(|m| err(lineno, m))?,
            "diff" => runner.cmd_diff(rest).map_err(|m| err(lineno, m))?,
            other => return Err(err(lineno, format!("unknown command `{other}`"))),
        }
    }
    runner.flush_rels().map_err(|m| err(lines.len(), m))?;
    Ok(ScenarioOutcome {
        report: runner.report,
        yes: runner.yes,
        no: runner.no,
        stats: runner.engine.cache_stats(),
        enum_stats: runner.engine.enum_stats(),
        metrics: viewcap_obs::snapshot(),
        catalog: runner.catalog,
    })
}

/// Collect nonempty lines (with 1-based line numbers) up to the closing
/// `}` of a block, advancing `i` past it. `None` if the block never closes.
fn collect_block(lines: &[&str], i: &mut usize) -> Option<Vec<(usize, String)>> {
    let mut body = Vec::new();
    loop {
        let line = lines.get(*i)?;
        let stripped = strip_comment(line).trim().to_owned();
        let lineno = *i + 1;
        *i += 1;
        if stripped == "}" {
            return Some(body);
        }
        if !stripped.is_empty() {
            body.push((lineno, stripped));
        }
    }
}

/// Like [`collect_block`], but brace-depth aware: lines opening nested
/// blocks (ending in `{`) and their closing `}` lines are kept in the body;
/// only the `}` matching the outer opener terminates it. `txn` blocks need
/// this — their bodies hold whole `edit NAME { ... }` blocks.
fn collect_nested_block(lines: &[&str], i: &mut usize) -> Option<Vec<(usize, String)>> {
    let mut body = Vec::new();
    let mut depth = 0usize;
    loop {
        let line = lines.get(*i)?;
        let stripped = strip_comment(line).trim().to_owned();
        let lineno = *i + 1;
        *i += 1;
        if stripped == "}" {
            if depth == 0 {
                return Some(body);
            }
            depth -= 1;
        } else if stripped.ends_with('{') {
            depth += 1;
        }
        if !stripped.is_empty() {
            body.push((lineno, stripped));
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(p) => &line[..p],
        None => line,
    }
}

fn split_word(line: &str) -> (&str, &str) {
    match line.split_once(char::is_whitespace) {
        Some((a, b)) => (a, b.trim()),
        None => (line, ""),
    }
}

impl Runner<'_> {
    fn view(&self, name: &str) -> Result<&View, String> {
        self.views
            .get(name)
            .map(|nv| &nv.view)
            .ok_or_else(|| format!("unknown view `{name}`"))
    }

    fn cmd_rel(&mut self, rest: &str) -> Result<(), String> {
        // `R(A, B, C)`
        let (name, args) = rest
            .split_once('(')
            .ok_or_else(|| "expected `rel NAME(ATTRS…)`".to_owned())?;
        let args = args
            .strip_suffix(')')
            .ok_or_else(|| "missing `)`".to_owned())?;
        let attrs: Vec<String> = args
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if attrs.is_empty() {
            return Err("relations need at least one attribute".into());
        }
        let name = name.trim().to_owned();
        if self.permute_seed.is_some() {
            // Declaration deferred to the permuted flush; duplicate names
            // would only error there, so reject them eagerly here.
            if self.rel_buffer.iter().any(|(n, _)| *n == name) {
                return Err(format!("relation name `{name}` is already in use"));
            }
            self.rel_buffer.push((name, attrs));
            return Ok(());
        }
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        self.catalog
            .relation(&name, &attr_refs)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(self.report, "rel {name} declared");
        Ok(())
    }

    /// `catalog permute SEED` — arm permuted declaration: the following
    /// run of `rel` lines is buffered and, at the first non-`rel` command,
    /// declared in a seed-determined order with each relation's attribute
    /// list shuffled too. Catalog *content* is unchanged (the same
    /// relations with the same schemes exist under any declaration order);
    /// what changes is the minting order of `RelId`s and `AttrId`s — which
    /// content-addressed fingerprints must not observe. The directive
    /// exists to prove exactly that: a scenario prefixed with it must
    /// report identical verdicts and hit the same persisted cache.
    fn cmd_catalog(&mut self, rest: &str) -> Result<(), String> {
        let (sub, arg) = split_word(rest);
        if sub != "permute" {
            return Err(format!("unknown catalog directive `{sub}`"));
        }
        if self.catalog.rel_count() > 0 || self.permute_seed.is_some() {
            return Err("catalog permute must precede every rel declaration".into());
        }
        let seed: u64 = match arg.trim() {
            "" => 1,
            n => n
                .parse()
                .map_err(|_| format!("bad permutation seed `{n}`"))?,
        };
        self.permute_seed = Some(seed);
        Ok(())
    }

    /// Declare the buffered `rel`s in the seed-determined permuted order.
    /// Report lines keep the original textual order, so permuted and
    /// unpermuted runs of the same declarations stay line-comparable.
    fn flush_rels(&mut self) -> Result<(), String> {
        let Some(seed) = self.permute_seed.take() else {
            return Ok(());
        };
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        let buffered = std::mem::take(&mut self.rel_buffer);
        let mut order: Vec<usize> = (0..buffered.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (lcg() % (i as u64 + 1)) as usize);
        }
        for &i in &order {
            let (name, attrs) = &buffered[i];
            let mut attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            for j in (1..attrs.len()).rev() {
                attrs.swap(j, (lcg() % (j as u64 + 1)) as usize);
            }
            self.catalog
                .relation(name, &attrs)
                .map_err(|e| e.to_string())?;
        }
        for (name, _) in &buffered {
            let _ = writeln!(self.report, "rel {name} declared");
        }
        let _ = writeln!(
            self.report,
            "catalog: declaration order permuted over {} relation(s) (seed {seed})",
            buffered.len()
        );
        Ok(())
    }

    fn cmd_view(&mut self, name: &str, body: &[(usize, String)]) -> Result<(), (usize, String)> {
        let mut pairs: Vec<(viewcap_expr::Expr, RelId)> = Vec::new();
        let mut logical: Vec<String> = Vec::new();
        for (lineno, entry) in body {
            let (vname, src) = entry
                .split_once('=')
                .ok_or((*lineno, "expected `Name = expression`".to_owned()))?;
            let expr =
                parse_expr(src.trim(), &self.catalog).map_err(|e| (*lineno, e.to_string()))?;
            let q = Query::from_expr(expr.clone(), &self.catalog);
            let rel = self
                .catalog
                .add_relation(vname.trim(), q.trs())
                .map_err(|e| (*lineno, e.to_string()))?;
            pairs.push((expr, rel));
            logical.push(vname.trim().to_owned());
        }
        let view = View::from_exprs(pairs, &self.catalog)
            .map_err(|e| (body.first().map_or(0, |(l, _)| *l), e.to_string()))?;
        // Warm the canonical-key memos now: every later check clones this
        // view, and clones inherit the filled caches, so fingerprinting a
        // whole workload against it costs one canonicalization per query.
        let _ = viewcap_engine::view_fingerprint(&view, &self.catalog);
        let _ = writeln!(
            self.report,
            "view {name} defined with {} relation(s)",
            view.len()
        );
        self.views
            .insert(name.to_owned(), NamedView { view, logical });
        Ok(())
    }

    /// Parse the tail of a `check` command into an engine [`Check`] plus
    /// its display label.
    fn parse_check(&self, rest: &str) -> Result<(String, Check), String> {
        let (kind, args) = split_word(rest);
        match kind {
            "equivalent" => {
                let (a, b) = split_word(args);
                Ok((
                    format!("check equivalent {a} {b}"),
                    Check::Equivalent {
                        left: self.view(a)?.clone(),
                        right: self.view(b)?.clone(),
                    },
                ))
            }
            "dominates" => {
                let (a, b) = split_word(args);
                Ok((
                    format!("check dominates {a} {b}"),
                    Check::Dominates {
                        dominator: self.view(a)?.clone(),
                        dominated: self.view(b)?.clone(),
                    },
                ))
            }
            "member" => {
                let (vname, expr_src) = split_word(args);
                let view = self.view(vname)?.clone();
                let expr = parse_expr(expr_src, &self.catalog).map_err(|e| e.to_string())?;
                Ok((
                    format!("check member {vname} {expr_src}"),
                    Check::Member {
                        view,
                        goal: Query::from_expr(expr, &self.catalog),
                    },
                ))
            }
            other => Err(format!("unknown check `{other}`")),
        }
    }

    /// Append the report line for one decided check.
    fn record_decision(&mut self, label: &str, check: &Check, decision: &Decision) {
        match (&*decision.verdict, check) {
            (Verdict::Member(Some(proof)), Check::Member { view, .. }) => {
                let names: Vec<RelId> = decision
                    .member_witness_names(view, &self.catalog)
                    .unwrap_or_else(|| view.schema());
                let skel = proof.skeleton_with_names(&names);
                let _ = writeln!(
                    self.report,
                    "{label}: YES via {}",
                    display_expr(&skel, &self.catalog)
                );
                self.yes += 1;
            }
            (verdict, _) => self.record_bool(label, verdict.is_yes()),
        }
    }

    fn cmd_check(&mut self, rest: &str) -> Result<(), String> {
        let (label, check) = self.parse_check(rest)?;
        let decision = self
            .engine
            .decide(&check, &self.catalog)
            .map_err(|e| e.to_string())?;
        self.record_decision(&label, &check, &decision);
        self.delta
            .push_decided(label, check, decision, &self.catalog);
        Ok(())
    }

    /// Run a `batch { ... }` block through the engine: every line is a
    /// `check` command; the block is deduplicated, answered from the
    /// verdict cache where possible, and the rest computed in parallel.
    fn cmd_batch(&mut self, body: &[(usize, String)]) -> Result<(), (usize, String)> {
        let mut workload = Workload::new();
        for (lineno, entry) in body {
            let (head, rest) = split_word(entry);
            if head != "check" {
                return Err((
                    *lineno,
                    format!("batch blocks only hold `check` commands, got `{head}`"),
                ));
            }
            let (label, check) = self.parse_check(rest).map_err(|m| (*lineno, m))?;
            workload.push(label, check);
        }
        let outcome = self.engine.run_batch(&workload, &self.catalog, self.jobs);
        // `body` and `workload.requests` are zipped 1:1, so errors point at
        // the failing check's own line.
        for ((lineno, _), (request, result)) in body
            .iter()
            .zip(workload.requests.iter().zip(&outcome.results))
        {
            let decision = result.as_ref().map_err(|e| (*lineno, e.to_string()))?;
            self.record_decision(&request.label, &request.check, decision);
            self.delta.push_decided(
                request.label.clone(),
                request.check.clone(),
                decision.clone(),
                &self.catalog,
            );
        }
        let _ = writeln!(
            self.report,
            "batch: {} check(s), {} distinct, {} answered from cache, {} executed",
            outcome.total, outcome.distinct, outcome.cache_hits, outcome.executed
        );
        Ok(())
    }

    /// Apply an `edit NAME { ... }` block: add, replace, or drop defining
    /// pairs of one view, then invalidate exactly the standing checks that
    /// touch it.
    fn cmd_edit(
        &mut self,
        lineno: usize,
        name: &str,
        body: &[(usize, String)],
    ) -> Result<(), (usize, String)> {
        let (old, new_view) = self.apply_edit(lineno, name, body)?;
        let invalidated = self.delta.replace_view(&old, &new_view, &self.catalog);
        let _ = writeln!(
            self.report,
            "edit {name}: {} defining relation(s), {invalidated} standing check(s) invalidated",
            new_view.len()
        );
        Ok(())
    }

    /// Parse and apply one edit body to the named view, updating the view
    /// table and returning the `(old, new)` version pair — standing-check
    /// invalidation is the caller's job (`cmd_edit` invalidates per edit,
    /// `cmd_txn` batches one sweep over the whole transaction).
    fn apply_edit(
        &mut self,
        lineno: usize,
        name: &str,
        body: &[(usize, String)],
    ) -> Result<(View, View), (usize, String)> {
        let named = self
            .views
            .get(name)
            .ok_or_else(|| (lineno, format!("unknown view `{name}`")))?;
        let old = named.view.clone();
        let mut pairs: Vec<(Query, RelId)> = old.pairs().to_vec();
        let mut logical = named.logical.clone();
        for (ln, entry) in body {
            if let Some(dropped) = entry.strip_prefix("drop ") {
                let dname = dropped.trim();
                let pos = logical.iter().position(|l| l == dname).ok_or_else(|| {
                    (
                        *ln,
                        format!("view `{name}` has no defining relation `{dname}`"),
                    )
                })?;
                pairs.remove(pos);
                logical.remove(pos);
            } else {
                let (vname, src) = entry.split_once('=').ok_or((
                    *ln,
                    "expected `Name = expression` or `drop Name`".to_owned(),
                ))?;
                let vname = vname.trim();
                let expr =
                    parse_expr(src.trim(), &self.catalog).map_err(|e| (*ln, e.to_string()))?;
                let q = Query::from_expr(expr, &self.catalog);
                match logical.iter().position(|l| l == vname) {
                    Some(pos) => {
                        // Replace, addressed by the pair's logical name.
                        let rel = self
                            .pair_relation(name, vname, &q, Some(pairs[pos].1))
                            .map_err(|m| (*ln, m))?;
                        pairs[pos] = (q, rel);
                    }
                    None => {
                        // Add a new defining pair.
                        let rel = self
                            .pair_relation(name, vname, &q, None)
                            .map_err(|m| (*ln, m))?;
                        pairs.push((q, rel));
                        logical.push(vname.to_owned());
                    }
                }
            }
        }
        if pairs.is_empty() {
            return Err((
                lineno,
                format!("edit would leave view `{name}` with no defining queries"),
            ));
        }
        let new_view = View::new(pairs, &self.catalog).map_err(|e| (lineno, e.to_string()))?;
        // Warm the canonical-key memos, as `cmd_view` does.
        let _ = viewcap_engine::view_fingerprint(&new_view, &self.catalog);
        self.views.insert(
            name.to_owned(),
            NamedView {
                view: new_view.clone(),
                logical,
            },
        );
        Ok((old, new_view))
    }

    /// Apply a `txn { edit NAME { ... } ... }` block: every edit is applied
    /// to the view table in order, then the standing workload is
    /// invalidated in *one* sweep ([`DeltaWorkload::replace_views`]) — each
    /// touched check is invalidated once however many edits hit it.
    /// Verdicts and witnesses after the next `recheck` are byte-identical
    /// to the same edits applied as individual `edit` blocks; only the
    /// invalidation accounting differs.
    fn cmd_txn(&mut self, lineno: usize, body: &[(usize, String)]) -> Result<(), (usize, String)> {
        let mut edits: Vec<(View, View)> = Vec::new();
        let mut j = 0usize;
        while j < body.len() {
            let (ln, entry) = &body[j];
            j += 1;
            let (head, rest) = split_word(entry);
            if head != "edit" {
                return Err((
                    *ln,
                    format!("txn blocks only hold `edit` blocks, got `{head}`"),
                ));
            }
            let name = rest.trim_end_matches('{').trim().to_owned();
            if name.is_empty() {
                return Err((*ln, "edit needs a view name".into()));
            }
            if !entry.ends_with('{') {
                return Err((*ln, "expected `{` to open the edit block".into()));
            }
            let mut inner: Vec<(usize, String)> = Vec::new();
            loop {
                let Some((iln, ientry)) = body.get(j) else {
                    return Err((*ln, format!("edit `{name}` is never closed")));
                };
                j += 1;
                if ientry == "}" {
                    break;
                }
                inner.push((*iln, ientry.clone()));
            }
            let (old, new) = self.apply_edit(*ln, &name, &inner)?;
            let _ = writeln!(
                self.report,
                "txn edit {name}: {} defining relation(s)",
                new.len()
            );
            edits.push((old, new));
        }
        if edits.is_empty() {
            return Err((lineno, "txn block holds no edits".into()));
        }
        let invalidated = self.delta.replace_views(&edits, &self.catalog);
        let _ = writeln!(
            self.report,
            "txn: {} edit(s), {invalidated} standing check(s) invalidated",
            edits.len()
        );
        Ok(())
    }

    /// The catalog relation to bind a pair named `logical` with query `q`
    /// in the view `view_name`: keep `current` when its type already
    /// matches; else reuse the catalog relation called `logical` when its
    /// type matches *and no other view uses it* (so a reverted edit — or a
    /// re-added dropped pair — gets its original name back); else mint a
    /// fresh `logical$n` of the right type (a relation name's type is
    /// fixed at declaration). A name serving as another view's defining
    /// relation is rejected, mirroring the duplicate error a `view` block
    /// would raise.
    fn pair_relation(
        &mut self,
        view_name: &str,
        logical: &str,
        q: &Query,
        current: Option<RelId>,
    ) -> Result<RelId, String> {
        let trs = q.trs();
        if let Some(rel) = current {
            if *self.catalog.scheme_of(rel) == trs {
                return Ok(rel);
            }
        }
        match self.catalog.lookup_rel(logical) {
            Ok(rel) if self.rel_in_other_view(rel, view_name) => Err(format!(
                "relation `{logical}` is a defining relation of another view"
            )),
            Ok(rel) if *self.catalog.scheme_of(rel) == trs => Ok(rel),
            Ok(_) => Ok(self.catalog.fresh_relation(logical, trs)),
            Err(_) => Ok(self
                .catalog
                .add_relation(logical, trs)
                .expect("lookup said the name is free")),
        }
    }

    /// Is `rel` currently a defining relation of any view other than
    /// `this`?
    fn rel_in_other_view(&self, rel: RelId, this: &str) -> bool {
        self.views
            .iter()
            .any(|(n, nv)| n != this && nv.view.schema().contains(&rel))
    }

    /// Re-decide the standing workload: reuse retained decisions, re-pose
    /// only the checks invalidated by `edit` blocks.
    fn cmd_recheck(&mut self) -> Result<(), String> {
        let outcome = self.delta.run(self.engine, &self.catalog, self.jobs);
        let requests: Vec<Request> = self.delta.requests().cloned().collect();
        for (request, result) in requests.iter().zip(&outcome.results) {
            let decision = result.as_ref().map_err(|e| e.to_string())?;
            self.record_decision(&request.label, &request.check, decision);
        }
        let _ = writeln!(
            self.report,
            "recheck: {} check(s), {} reused, {} recomputed ({} from verdict cache, {} executed)",
            outcome.total, outcome.reused, outcome.recomputed, outcome.cache_hits, outcome.executed
        );
        Ok(())
    }

    fn record_bool(&mut self, what: &str, outcome: bool) {
        let _ = writeln!(
            self.report,
            "{what}: {}",
            if outcome { "YES" } else { "NO" }
        );
        if outcome {
            self.yes += 1;
        } else {
            self.no += 1;
        }
    }

    fn cmd_nonredundant(&mut self, rest: &str) -> Result<(), String> {
        let name = rest.trim();
        let view = self.view(name)?.clone();
        let decision = self
            .engine
            .nonredundant(&view, &self.catalog)
            .map_err(|e| e.to_string())?;
        let Verdict::Nonredundant(kept) = &*decision.verdict else {
            return Err("nonredundant returned a non-normalization verdict".into());
        };
        let _ = writeln!(
            self.report,
            "nonredundant {name}: {} -> {} relation(s)",
            view.len(),
            kept.len()
        );
        for &i in kept {
            let rel = view
                .pairs()
                .get(i as usize)
                .map(|(_, r)| *r)
                .ok_or_else(|| format!("kept index {i} out of range"))?;
            let _ = writeln!(self.report, "  kept {}", self.catalog.rel_name(rel));
        }
        Ok(())
    }

    fn cmd_simplify(&mut self, rest: &str) -> Result<(), String> {
        let name = rest.trim();
        let view = self.view(name)?.clone();
        let decision = self
            .engine
            .simplify(&view, &self.catalog)
            .map_err(|e| e.to_string())?;
        let Verdict::Simplified(schemes) = &*decision.verdict else {
            return Err("simplify returned a non-normalization verdict".into());
        };
        let _ = writeln!(
            self.report,
            "simplify {name}: {} -> {} relation(s)",
            view.len(),
            schemes.len()
        );
        // Mint the simplified view-schema relations exactly as the cold
        // `simplify_view` path did, so cached (warm) replays evolve the
        // catalog — and render the report — byte-identically.
        for trs in schemes {
            self.catalog.fresh_relation("simp", trs.clone());
            let _ = writeln!(
                self.report,
                "  simple query with TRS {}",
                display_scheme(trs, &self.catalog)
            );
        }
        Ok(())
    }

    fn cmd_frontier(&mut self, rest: &str) -> Result<(), String> {
        let (vname, k_src) = split_word(rest);
        let view = self.view(vname)?.clone();
        let k: usize = k_src
            .trim()
            .parse()
            .map_err(|_| format!("bad atom bound `{k_src}`"))?;
        let members =
            capacity_members(&view, k, &self.catalog, &self.budget).map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.report,
            "frontier {vname} {k}: {} distinct member(s)",
            members.len()
        );
        for m in &members {
            let _ = writeln!(
                self.report,
                "  TRS {} (construction size {})",
                display_scheme(&m.query.trs(), &self.catalog),
                m.construction_size
            );
        }
        Ok(())
    }

    /// `diff A B K` — the capacity-frontier diff of two view versions at
    /// atom bound `K`: which bounded frontier members `A` exposes and `B`
    /// does not (`-` lines, capabilities lost going A→B) and vice versa
    /// (`+` lines, gained). Equals the set difference of two independent
    /// `frontier` sweeps; each version pair shares one [`ClosureContext`]
    /// pair across diffs, so repeated or growing-`K` diffs pay only the
    /// incremental enumeration.
    fn cmd_diff(&mut self, rest: &str) -> Result<(), String> {
        let (a, rest) = split_word(rest);
        let (b, k_src) = split_word(rest);
        let left_view = self.view(a)?.clone();
        let right_view = self.view(b)?.clone();
        let k: usize = k_src
            .trim()
            .parse()
            .map_err(|_| format!("bad atom bound `{k_src}`"))?;
        let key = (
            view_fingerprint(&left_view, &self.catalog),
            view_fingerprint(&right_view, &self.catalog),
        );
        let Runner {
            diff_contexts,
            catalog,
            budget,
            ..
        } = self;
        let (left, right) = diff_contexts.entry(key).or_insert_with(|| {
            (
                ClosureContext::new(left_view.query_set().queries(), catalog, budget),
                ClosureContext::new(right_view.query_set().queries(), catalog, budget),
            )
        });
        let diff = frontier_diff(left, right, k).map_err(|e| e.to_string())?;
        let _ = writeln!(
            self.report,
            "diff {a} {b} {k}: {} member(s) only in {a}, {} only in {b}, {} shared",
            diff.only_left.len(),
            diff.only_right.len(),
            diff.common
        );
        for m in &diff.only_left {
            let _ = writeln!(
                self.report,
                "  - TRS {} (construction size {})",
                display_scheme(&m.query.trs(), &self.catalog),
                m.construction_size
            );
        }
        for m in &diff.only_right {
            let _ = writeln!(
                self.report,
                "  + TRS {} (construction size {})",
                display_scheme(&m.query.trs(), &self.catalog),
                m.construction_size
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
# Example 3.1.5 as a scenario
rel R(A, B, C)

view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
}
view W {
  Left  = pi{A,B}(R)
  Right = pi{B,C}(R)
}

check equivalent V W
check dominates V W
check member V pi{A}(R)
check member V R
"#;

    #[test]
    fn demo_scenario_runs() {
        let out = run_scenario(DEMO).unwrap();
        assert_eq!(out.yes, 3); // equivalent, dominates, member π_A(R)
        assert_eq!(out.no, 1); // member R
        assert!(out.report.contains("check equivalent V W: YES"));
        assert!(out.report.contains("check member V R: NO"));
        assert!(out.report.contains("YES via"));
    }

    #[test]
    fn cached_witnesses_survive_later_catalog_growth() {
        // The second `check member` hits the verdict cache (equal view
        // fingerprints), and its witness must render with W's name even
        // though W (and S) were minted after the verdict was computed —
        // the proof's catalog snapshot predates them.
        let src = "rel R(A, B, C)\n\
                   view V {\n  X = pi{A}(R)\n}\n\
                   check member V pi{A}(R)\n\
                   rel S(A, B)\n\
                   view W {\n  Y = pi{A}(R)\n}\n\
                   check member W pi{A}(R)\n";
        let out = run_scenario(src).unwrap();
        assert_eq!(out.yes, 2, "report:\n{}", out.report);
        assert!(out.report.contains("check member V pi{A}(R): YES via X"));
        assert!(out.report.contains("check member W pi{A}(R): YES via Y"));
        assert_eq!(out.stats.hits, 1);
    }

    #[test]
    fn fingerprint_equal_views_keep_separate_standing_checks() {
        // V and V2 define the same query under different names, so their
        // canonical fingerprints coincide — but they are different views.
        // Editing V2 must leave the V check reused and re-decide only V2's,
        // and both lines must appear in every recheck.
        let src = "rel R(A, B, C)\n\
                   view V {\n  X = pi{A,B}(R)\n}\n\
                   view V2 {\n  Y = pi{A,B}(R)\n}\n\
                   check member V pi{A}(R)\n\
                   check member V2 pi{A}(R)\n\
                   edit V2 {\n  Y = R\n}\n\
                   recheck\n";
        let out = run_scenario(src).unwrap();
        assert!(
            out.report
                .contains("edit V2: 1 defining relation(s), 1 standing check(s) invalidated"),
            "report:\n{}",
            out.report
        );
        assert!(out.report.contains(
            "recheck: 2 check(s), 1 reused, 1 recomputed (0 from verdict cache, 1 executed)"
        ));
        // Both standing checks report twice (cold + recheck), each under
        // its own witness names.
        let count = |needle: &str| out.report.matches(needle).count();
        assert_eq!(count("check member V pi{A}(R): YES via pi{A}(X)"), 2);
        assert_eq!(count("check member V2 pi{A}(R): YES via pi{A}(Y)"), 1);
        // After the edit, V2's pair was re-minted as Y$1 (R's scheme differs
        // from Y's), and the witness follows.
        assert_eq!(count("check member V2 pi{A}(R): YES via pi{A}(Y$1)"), 1);
    }

    #[test]
    fn scheme_changing_edits_stay_addressable_by_logical_name() {
        // Replacing X with a narrower query mints a fresh relation (X$n),
        // but the pair keeps its logical name: a second edit — here a full
        // revert — still addresses `X`, and the revert gets the original
        // catalog name (and the original cached verdict) back.
        let src = "rel R(A, B)\n\
                   view V {\n  X = R\n}\n\
                   check member V pi{A}(R)\n\
                   edit V {\n  X = pi{A}(R)\n}\n\
                   recheck\n\
                   edit V {\n  X = R\n}\n\
                   recheck\n";
        let out = run_scenario(src).unwrap();
        let rechecks: Vec<&str> = out
            .report
            .lines()
            .filter(|l| l.starts_with("recheck:"))
            .collect();
        assert_eq!(rechecks.len(), 2, "report:\n{}", out.report);
        // The revert is answered from the verdict cache, not recomputed.
        assert!(
            rechecks[1].contains("1 recomputed (1 from verdict cache, 0 executed)"),
            "report:\n{}",
            out.report
        );
        // And the reverted pair renders under its original name again.
        assert!(out.report.ends_with(
            "check member V pi{A}(R): YES via pi{A}(X)\n\
             recheck: 1 check(s), 0 reused, 1 recomputed (1 from verdict cache, 0 executed)\n"
        ));
        // Dropping and re-adding by logical name also works.
        let src2 = "rel R(A, B)\n\
                    view W {\n  P = pi{A}(R)\n  Q = pi{B}(R)\n}\n\
                    edit W {\n  drop P\n}\n\
                    edit W {\n  P = pi{A}(R)\n}\n\
                    check member W pi{A}(R)\n";
        let out2 = run_scenario(src2).unwrap();
        assert!(
            out2.report.contains("check member W pi{A}(R): YES via P"),
            "report:\n{}",
            out2.report
        );
    }

    #[test]
    fn edits_cannot_claim_another_views_defining_relation() {
        // `view` blocks reject duplicate pair names; `edit` must too, not
        // silently alias another view's catalog relation.
        let src = "rel R(A, B)\n\
                   view V {\n  X = pi{A}(R)\n}\n\
                   view W {\n  Y = pi{B}(R)\n}\n\
                   edit W {\n  X = pi{A}(R)\n}\n";
        let err = run_scenario(src).unwrap_err();
        assert_eq!(err.line, 9);
        assert!(
            err.to_string()
                .contains("defining relation of another view"),
            "{err}"
        );
    }

    #[test]
    fn catalog_permute_shuffles_declarations_without_changing_verdicts() {
        let body = "rel R(A, B, C)\n\
                    rel S(C, D)\n\
                    view V {\n  X = pi{A,B}(R)\n}\n\
                    check member V pi{A}(R)\n\
                    check member V pi{B,C}(R)\n";
        let plain = run_scenario(body).unwrap();
        for seed in [1u64, 2, 9] {
            let permuted = run_scenario(&format!("catalog permute {seed}\n{body}")).unwrap();
            assert!(permuted
                .report
                .contains(&format!("permuted over 2 relation(s) (seed {seed})")));
            let checks = |r: &str| {
                r.lines()
                    .filter(|l| l.starts_with("check "))
                    .map(str::to_owned)
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                checks(&plain.report),
                checks(&permuted.report),
                "seed {seed}"
            );
            // The catalogs really differ in declaration order for at
            // least one seed; content is what must agree.
            assert_eq!(permuted.catalog.rel_count(), plain.catalog.rel_count());
        }
    }

    #[test]
    fn catalog_permute_must_precede_declarations() {
        let err = run_scenario("rel R(A)\ncatalog permute 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("precede"), "{err}");
        let err = run_scenario("catalog shuffle 3\n").unwrap_err();
        assert!(err.to_string().contains("unknown catalog directive"));
        let err = run_scenario("catalog permute x\n").unwrap_err();
        assert!(err.to_string().contains("bad permutation seed"));
        // Duplicate buffered names are rejected eagerly.
        let err = run_scenario("catalog permute 1\nrel R(A)\nrel R(B)\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unknown_commands_error_with_line_numbers() {
        let err = run_scenario("rel R(A)\nfrobnicate R\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn parse_errors_point_at_the_view_body() {
        let err = run_scenario("rel R(A,B)\nview V {\n  X = pi{C}(R)\n}\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unclosed_view_blocks_error() {
        let err = run_scenario("rel R(A)\nview V {\n  X = R\n").unwrap_err();
        assert!(err.to_string().contains("never closed"));
    }

    #[test]
    fn nonredundant_and_simplify_commands() {
        let src = r#"
rel R(A, B, C)
view V {
  Joined = pi{A,B}(R) * pi{B,C}(R)
  Extra  = pi{B}(R)
}
nonredundant V
simplify V
"#;
        let out = run_scenario(src).unwrap();
        assert!(out.report.contains("nonredundant V: 2 -> 1 relation(s)"));
        assert!(out.report.contains("simplify V: 2 -> 2 relation(s)"));
    }

    #[test]
    fn frontier_command_lists_members() {
        let src = "rel R(A, B)\nview V {\n  P = pi{A}(R)\n}\nfrontier V 2\n";
        let out = run_scenario(src).unwrap();
        assert!(out.report.contains("frontier V 2: 1 distinct member(s)"));
    }

    #[test]
    fn diff_command_reports_the_frontier_set_difference() {
        let src = "rel R(A, B, C)\n\
                   view V {\n  L = pi{A,B}(R)\n  Rt = pi{B,C}(R)\n}\n\
                   view W {\n  L2 = pi{A,B}(R)\n}\n\
                   diff V W 2\n\
                   diff W V 2\n\
                   diff V V 2\n\
                   diff V W 2\n";
        let out = run_scenario(src).unwrap();
        // W's frontier is a subset of V's: nothing is gained V→W.
        assert!(
            out.report
                .contains("diff V W 2: 8 member(s) only in V, 0 only in W, 4 shared"),
            "report:\n{}",
            out.report
        );
        // The reverse orientation swaps the sides.
        assert!(out
            .report
            .contains("diff W V 2: 0 member(s) only in W, 8 only in V, 4 shared"));
        // A version diffed against itself is empty.
        assert!(out
            .report
            .contains("diff V V 2: 0 member(s) only in V, 0 only in V, 12 shared"));
        // The repeated diff reuses the cached context pair and renders
        // byte-identically.
        let first = out.report.find("diff V W 2:").unwrap();
        let last = out.report.rfind("diff V W 2:").unwrap();
        assert_ne!(first, last);
        let block = |start: usize| {
            let mut lines = out.report[start..].lines();
            let mut block = vec![lines.next().unwrap()];
            block.extend(lines.take_while(|l| l.starts_with("  ")));
            block.join("\n")
        };
        assert_eq!(block(first), block(last));
    }

    #[test]
    fn txn_block_invalidates_each_standing_check_once() {
        // Both edits touch views the two checks depend on; the equivalence
        // check depends on both views yet invalidates once, not twice.
        let src = "rel R(A, B, C)\n\
                   view V {\n  X = pi{A,B}(R)\n}\n\
                   view W {\n  Y = pi{A,B}(R)\n}\n\
                   check equivalent V W\n\
                   check member V pi{A}(R)\n\
                   txn {\n\
                   \x20 edit V {\n\
                   \x20   X = pi{A,B}(R) * pi{B,C}(R)\n\
                   \x20 }\n\
                   \x20 edit W {\n\
                   \x20   Y = R\n\
                   \x20 }\n\
                   }\n\
                   recheck\n";
        let out = run_scenario(src).unwrap();
        assert!(
            out.report
                .contains("txn: 2 edit(s), 2 standing check(s) invalidated"),
            "report:\n{}",
            out.report
        );
        assert!(out.report.contains(
            "recheck: 2 check(s), 0 reused, 2 recomputed (0 from verdict cache, 2 executed)"
        ));
    }

    #[test]
    fn txn_verdicts_match_sequential_edits() {
        // The differential core: the same edits as one txn and as
        // sequential edit blocks must yield byte-identical check lines
        // (verdicts and witnesses) after recheck.
        let checks = "check member V pi{A}(R)\n\
                      check equivalent V W\n\
                      check dominates V W\n";
        let prologue = format!(
            "rel R(A, B, C)\n\
             view V {{\n  X = pi{{A,B}}(R)\n  X2 = pi{{B,C}}(R)\n}}\n\
             view W {{\n  Y = pi{{A,B}}(R)\n}}\n\
             {checks}"
        );
        let txn = format!(
            "{prologue}\
             txn {{\n\
             \x20 edit V {{\n    drop X2\n  }}\n\
             \x20 edit V {{\n    X = pi{{A}}(R)\n  }}\n\
             \x20 edit W {{\n    Y = pi{{A}}(R)\n  }}\n\
             }}\n\
             recheck\n"
        );
        let seq = format!(
            "{prologue}\
             edit V {{\n  drop X2\n}}\n\
             edit V {{\n  X = pi{{A}}(R)\n}}\n\
             edit W {{\n  Y = pi{{A}}(R)\n}}\n\
             recheck\n"
        );
        let txn_out = run_scenario(&txn).unwrap();
        let seq_out = run_scenario(&seq).unwrap();
        let check_lines = |r: &str| {
            r.lines()
                .filter(|l| l.starts_with("check "))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(
            check_lines(&txn_out.report),
            check_lines(&seq_out.report),
            "txn:\n{}\nseq:\n{}",
            txn_out.report,
            seq_out.report
        );
        assert_eq!((txn_out.yes, txn_out.no), (seq_out.yes, seq_out.no));
    }

    #[test]
    fn txn_blocks_reject_non_edit_commands() {
        let err = run_scenario("rel R(A)\ntxn {\n  check member V R\n}\n").unwrap_err();
        assert!(err.to_string().contains("only hold `edit` blocks"), "{err}");
        let err = run_scenario("rel R(A)\ntxn {\n}\n").unwrap_err();
        assert!(err.to_string().contains("holds no edits"), "{err}");
        let err = run_scenario("rel R(A)\ntxn {\n  edit V {\n").unwrap_err();
        assert!(err.to_string().contains("never closed"), "{err}");
    }
}
