//! `viewcap serve` — a resident decision daemon over a unix socket, and
//! the client side that drives scenarios through it.
//!
//! The daemon answers scenario requests with a line-delimited protocol.
//! One process hosts many catalogs: scenarios declare their own catalogs,
//! and warm verdict caches are keyed by a *client-supplied* catalog key,
//! so independent fleets share one resident service. The only state the
//! daemon shares across requests is the per-key [`VerdictCache`] (safe:
//! fingerprints are catalog-content-addressed); engines — whose context
//! pools hold catalog-bound ids — are built per request.
//!
//! ## Protocol
//!
//! Requests are a header line, then (for `RUN`) a length-prefixed body:
//!
//! ```text
//! RUN <jobs> <mode> <len>\n<len scenario bytes>   mode: cold | warm:<key>
//! PING\n
//! STATS\n
//! SHUTDOWN\n
//! ```
//!
//! Every response is `OK <len>\n<len bytes>` or `ERR <len>\n<len bytes>`.
//! A `RUN` response body is *exactly* the batch CLI's stdout for the same
//! scenario — the report plus the final `-- N check(s) answered YES…`
//! line — so transcripts can be diffed byte-for-byte against `viewcap-cli
//! <scenario>`. `cold` mode guarantees that identity (a fresh, empty
//! cache per request); `warm:<key>` shares the key's cache across
//! requests, which serves repeat checks from memory at the cost of
//! transcript lines that say so.
//!
//! ## Crash safety
//!
//! With `--pile`, the daemon recovers the pile on startup (truncating any
//! suffix a crash mid-append left, and reporting it on stderr), seeds
//! warm caches from the pile's merged verdict set, and appends every
//! request's verdicts after answering. Killing the daemon at any moment
//! costs at most the in-flight append.
//!
//! Warm keys also get a per-key candidate-space library: seeded from the
//! pile's space records on first use, attached to every warm request's
//! engine (contexts hydrate their enumeration levels instead of
//! rebuilding them), and — whenever a request grew a space — appended
//! back to the pile, so even a daemon restart skips the cold-start
//! enumeration. `cold` requests get no shared state of any kind.

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::scenario::{run_scenario_with_engine, ScenarioOptions};
use viewcap_engine::{Engine, EngineConfig, PileStore, SpaceLibrary, VerdictCache};

/// Configuration of one [`serve`] daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The unix socket to listen on (created; removed on clean shutdown).
    pub socket: PathBuf,
    /// Crash-safe verdict pile to recover, seed warm caches from, and
    /// append every request's verdicts to.
    pub pile: Option<PathBuf>,
    /// Bound for warm per-key caches (`None` = unbounded).
    pub cache_max: Option<usize>,
}

/// Why a serve/client operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or pile I/O failure.
    Io(std::io::Error),
    /// The peer spoke something that is not the protocol.
    Protocol(String),
    /// The daemon's pile rejected an operation.
    Pile(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::Protocol(what) => write!(f, "protocol error: {what}"),
            ServeError::Pile(what) => write!(f, "pile error: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Shared daemon state: warm caches and the (optional) pile handle.
struct Daemon {
    /// Warm verdict caches, one per client-supplied catalog key.
    warm: Mutex<HashMap<String, Arc<VerdictCache>>>,
    /// Warm candidate-space libraries, one per client-supplied catalog
    /// key. Like the caches they are seeded from the pile (its space
    /// records) on first use, and every warm request's grown spaces are
    /// harvested back — so a restarted daemon skips the enumeration
    /// rebuild, not just the verdict recompute.
    spaces: Mutex<HashMap<String, Arc<Mutex<SpaceLibrary>>>>,
    pile: Option<Mutex<PileStore>>,
    cache_max: Option<usize>,
    served: Mutex<u64>,
}

impl Daemon {
    /// The warm cache for `key`, created on first use — seeded from the
    /// pile's merged verdict set when a pile is configured.
    fn warm_cache(&self, key: &str) -> Result<Arc<VerdictCache>, ServeError> {
        let mut warm = self.warm.lock().expect("warm cache lock");
        if let Some(cache) = warm.get(key) {
            return Ok(Arc::clone(cache));
        }
        let cache = match &self.pile {
            Some(pile) => pile
                .lock()
                .expect("pile lock")
                .load(self.cache_max)
                .map_err(|e| ServeError::Pile(e.to_string()))?,
            None => VerdictCache::bounded(self.cache_max),
        };
        let cache = Arc::new(cache);
        warm.insert(key.to_owned(), Arc::clone(&cache));
        Ok(cache)
    }

    /// The warm space library for `key`, created on first use — seeded
    /// from the pile's space records when a pile is configured. A pile
    /// whose space records fail to load seeds an empty library instead of
    /// failing the request: hydration is an optimization, never
    /// correctness.
    fn warm_spaces(&self, key: &str) -> Arc<Mutex<SpaceLibrary>> {
        let mut spaces = self.spaces.lock().expect("warm spaces lock");
        if let Some(library) = spaces.get(key) {
            return Arc::clone(library);
        }
        let library = match &self.pile {
            Some(pile) => pile
                .lock()
                .expect("pile lock")
                .load_spaces()
                .unwrap_or_default(),
            None => SpaceLibrary::new(),
        };
        let library = Arc::new(Mutex::new(library));
        spaces.insert(key.to_owned(), Arc::clone(&library));
        library
    }

    /// Answer one `RUN`: build the request's engine, run the scenario,
    /// append the verdicts to the pile. Returns the exact batch-CLI
    /// stdout, or the scenario error text.
    fn run(&self, source: &str, jobs: usize, warm_key: Option<&str>) -> Result<String, String> {
        let engine = match warm_key {
            Some(key) => {
                let cache = self.warm_cache(key).map_err(|e| e.to_string())?;
                Engine::from_config(
                    EngineConfig::new()
                        .shared_cache(cache)
                        .shared_spaces(self.warm_spaces(key)),
                )
                .map_err(|e| e.to_string())?
            }
            None => Engine::new(),
        };
        let options = ScenarioOptions { jobs };
        let outcome =
            run_scenario_with_engine(source, &options, &engine).map_err(|e| e.to_string())?;
        // Fold the request's grown candidate spaces back into the warm
        // library before persisting anything, so the pile append below
        // carries them too.
        let harvested = engine.harvest_spaces();
        if let Some(pile) = &self.pile {
            let mut pile = pile.lock().expect("pile lock");
            pile.append_cache(engine.cache(), &outcome.catalog)
                .map_err(|e| format!("pile append failed: {e}"))?;
            if harvested > 0 {
                if let Some(spaces) = engine.shared_spaces() {
                    let library = spaces.lock().expect("space library lock");
                    pile.append_spaces(&library)
                        .map_err(|e| format!("pile space append failed: {e}"))?;
                }
            }
        }
        *self.served.lock().expect("served lock") += 1;
        Ok(format!(
            "{}-- {} check(s) answered YES, {} answered NO\n",
            outcome.report, outcome.yes, outcome.no
        ))
    }

    fn stats(&self) -> String {
        let warm = self.warm.lock().expect("warm cache lock");
        let mut body = format!(
            "served: {}\nwarm catalogs: {}\n",
            self.served.lock().expect("served lock"),
            warm.len()
        );
        let mut keys: Vec<_> = warm.iter().collect();
        keys.sort_by_key(|(key, _)| key.as_str());
        for (key, cache) in keys {
            body.push_str(&format!("warm[{key}]: {}\n", cache.stats()));
        }
        let spaces = self.spaces.lock().expect("warm spaces lock");
        let mut space_keys: Vec<_> = spaces.iter().collect();
        space_keys.sort_by_key(|(key, _)| key.as_str());
        for (key, library) in space_keys {
            let library = library.lock().expect("space library lock");
            body.push_str(&format!("spaces[{key}]: {} space(s)\n", library.len()));
        }
        if let Some(pile) = &self.pile {
            let mut pile = pile.lock().expect("pile lock");
            match pile.record_count() {
                Ok(n) => body.push_str(&format!("pile records: {n}\n")),
                Err(e) => body.push_str(&format!("pile: {e}\n")),
            }
            match pile.space_record_count() {
                Ok(n) => body.push_str(&format!("pile space records: {n}\n")),
                Err(e) => body.push_str(&format!("pile spaces: {e}\n")),
            }
        }
        body
    }
}

/// Write one `OK`/`ERR` response frame.
fn respond(stream: &mut UnixStream, ok: bool, body: &str) -> std::io::Result<()> {
    let tag = if ok { "OK" } else { "ERR" };
    stream.write_all(format!("{tag} {}\n", body.len()).as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Serve requests on `config.socket` until a `SHUTDOWN` request (or a
/// fatal socket error). Prints a recovery report for the pile, and a
/// ready line once listening, to stderr.
pub fn serve(config: &ServeConfig) -> Result<(), ServeError> {
    let pile = match &config.pile {
        Some(path) => {
            let (store, report) =
                PileStore::recover(path).map_err(|e| ServeError::Pile(e.to_string()))?;
            eprintln!("viewcap-serve: pile {}: recovered {report}", path.display());
            Some(Mutex::new(store))
        }
        None => None,
    };
    let daemon = Daemon {
        warm: Mutex::new(HashMap::new()),
        spaces: Mutex::new(HashMap::new()),
        pile,
        cache_max: config.cache_max,
        served: Mutex::new(0),
    };

    // A stale socket file from a killed daemon would fail the bind.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)?;
    eprintln!("viewcap-serve: listening on {}", config.socket.display());

    let mut shutdown = false;
    while !shutdown {
        let (stream, _) = listener.accept()?;
        // One request per connection; a broken client never wedges the
        // daemon, it just drops its own connection.
        if let Err(e) = handle_connection(&daemon, stream, &mut shutdown) {
            eprintln!("viewcap-serve: connection error: {e}");
        }
    }
    let _ = std::fs::remove_file(&config.socket);
    eprintln!("viewcap-serve: shut down");
    Ok(())
}

fn handle_connection(
    daemon: &Daemon,
    stream: UnixStream,
    shutdown: &mut bool,
) -> Result<(), ServeError> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let mut stream = stream;
    let header = header.trim_end_matches('\n');
    let mut words = header.split(' ');
    match words.next() {
        Some("PING") => respond(&mut stream, true, "pong\n")?,
        Some("STATS") => respond(&mut stream, true, &daemon.stats())?,
        Some("SHUTDOWN") => {
            *shutdown = true;
            respond(&mut stream, true, "bye\n")?;
        }
        Some("RUN") => {
            let (jobs, mode, len) = match (
                words.next().and_then(|w| w.parse::<usize>().ok()),
                words.next(),
                words.next().and_then(|w| w.parse::<usize>().ok()),
            ) {
                (Some(jobs), Some(mode), Some(len)) if words.next().is_none() => (jobs, mode, len),
                _ => {
                    respond(&mut stream, false, "malformed RUN header\n")?;
                    return Ok(());
                }
            };
            let warm_key = match mode {
                "cold" => None,
                _ => match mode.strip_prefix("warm:") {
                    Some(key) if !key.is_empty() => Some(key),
                    _ => {
                        respond(&mut stream, false, "mode must be cold or warm:<key>\n")?;
                        return Ok(());
                    }
                },
            };
            let mut source = vec![0u8; len];
            reader.read_exact(&mut source)?;
            let Ok(source) = String::from_utf8(source) else {
                respond(&mut stream, false, "scenario source is not UTF-8\n")?;
                return Ok(());
            };
            match daemon.run(&source, jobs, warm_key) {
                Ok(body) => respond(&mut stream, true, &body)?,
                Err(msg) => respond(&mut stream, false, &format!("{msg}\n"))?,
            }
        }
        _ => respond(&mut stream, false, "unknown request\n")?,
    }
    Ok(())
}

// ------------------------------------------------------------- client side

/// One request a client can pose to a running daemon.
#[derive(Clone, Debug)]
pub enum ClientRequest {
    /// Run a scenario; the response body is the exact batch-CLI stdout.
    Run {
        /// Scenario source text.
        source: String,
        /// Worker threads for `batch` blocks (`0` = all cores).
        jobs: usize,
        /// `None` = cold (fresh cache, byte-identical transcript);
        /// `Some(key)` = share the daemon's warm cache for `key`.
        warm_key: Option<String>,
    },
    /// Liveness probe.
    Ping,
    /// Daemon counters, warm-cache stats, pile record count.
    Stats,
    /// Ask the daemon to exit after responding.
    Shutdown,
}

/// A daemon's answer: `ok` distinguishes `OK` from `ERR` frames.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// Whether the daemon answered `OK`.
    pub ok: bool,
    /// The response body (a transcript, stats text, or error message).
    pub body: String,
}

/// Pose one request to the daemon at `socket` and read its response.
pub fn client_request(
    socket: &Path,
    request: &ClientRequest,
) -> Result<ClientResponse, ServeError> {
    let mut stream = UnixStream::connect(socket)?;
    match request {
        ClientRequest::Run {
            source,
            jobs,
            warm_key,
        } => {
            let mode = match warm_key {
                Some(key) => {
                    if key.is_empty() || key.contains([' ', '\n']) {
                        return Err(ServeError::Protocol(
                            "warm key must be nonempty, without spaces or newlines".to_owned(),
                        ));
                    }
                    format!("warm:{key}")
                }
                None => "cold".to_owned(),
            };
            stream.write_all(format!("RUN {jobs} {mode} {}\n", source.len()).as_bytes())?;
            stream.write_all(source.as_bytes())?;
        }
        ClientRequest::Ping => stream.write_all(b"PING\n")?,
        ClientRequest::Stats => stream.write_all(b"STATS\n")?,
        ClientRequest::Shutdown => stream.write_all(b"SHUTDOWN\n")?,
    }
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let header = header.trim_end_matches('\n');
    let (ok, len) = match header.split_once(' ') {
        Some(("OK", len)) => (true, len),
        Some(("ERR", len)) => (false, len),
        _ => {
            return Err(ServeError::Protocol(format!(
                "bad response header {header:?}"
            )))
        }
    };
    let len: usize = len
        .parse()
        .map_err(|_| ServeError::Protocol(format!("bad response length in {header:?}")))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ServeError::Protocol("response body is not UTF-8".to_owned()))?;
    Ok(ClientResponse { ok, body })
}
