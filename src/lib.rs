//! # viewcap — Equivalence of Views by Query Capacity
//!
//! A full Rust implementation of Tim Connors, *Equivalence of Views by Query
//! Capacity*, JCSS 33:234–274 (1986): multirelational project–join views,
//! tableau (template) machinery, and the complete decision-procedure suite —
//! query-capacity membership, view dominance/equivalence, redundancy
//! elimination, essential-tuple analysis, and the simplified normal form.
//!
//! This facade re-exports the workspace crates; most users want the
//! [`prelude`].
//!
//! ```
//! use viewcap::prelude::*;
//!
//! // Example 3.1.5 of the paper: two equivalent views of different sizes.
//! let mut cat = Catalog::new();
//! let eta = cat.relation("R", &["A", "B", "C"]).unwrap();
//! let ab = cat.scheme(&["A", "B"]).unwrap();
//! let bc = cat.scheme(&["B", "C"]).unwrap();
//!
//! let s1 = Expr::project(Expr::rel(eta), ab.clone(), &cat).unwrap();
//! let s2 = Expr::project(Expr::rel(eta), bc.clone(), &cat).unwrap();
//! let s = Expr::join(vec![s1.clone(), s2.clone()]).unwrap();
//!
//! let lam = cat.fresh_relation("lam", s.trs(&cat));
//! let l1 = cat.fresh_relation("l1", ab);
//! let l2 = cat.fresh_relation("l2", bc);
//!
//! let v = View::from_exprs(vec![(s, lam)], &cat).unwrap();
//! let w = View::from_exprs(vec![(s1, l1), (s2, l2)], &cat).unwrap();
//! assert!(equivalent(&v, &w, &cat).unwrap().is_some());
//! ```

pub use viewcap_base as base;
pub use viewcap_core as core;
pub use viewcap_expr as expr;
pub use viewcap_template as template;

pub mod scenario;
#[cfg(unix)]
pub mod serve;

/// Everything needed for typical use of the library.
pub mod prelude {
    pub use viewcap_base::{
        AttrId, BaseError, Catalog, Instantiation, RelId, Relation, Row, Scheme, Symbol, SymbolGen,
    };
    pub use viewcap_core::capacity::{cap_contains, closure_contains, ClosureProof, SearchBudget};
    pub use viewcap_core::closure::{capacity_members, closure_members, ClosureMember};
    pub use viewcap_core::equivalence::{dominates, equivalent, EquivalenceWitness};
    pub use viewcap_core::query::{Query, QuerySet};
    pub use viewcap_core::redundancy::{is_redundant, make_nonredundant, nonredundant_size_bound};
    pub use viewcap_core::simplify::{is_simple, proper_projections, simplify_view};
    pub use viewcap_core::view::View;
    pub use viewcap_expr::{Expr, ExprError};
    pub use viewcap_template::{
        equivalent_templates, template_contains, Assignment, TaggedTuple, Template, TemplateError,
        Valuation,
    };
}
