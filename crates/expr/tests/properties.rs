//! Property-based tests for expressions: a byte-program strategy drives
//! construction, and evaluation/normalization/printing invariants are
//! checked against the engine.

use proptest::prelude::*;
use viewcap_base::{Catalog, Instantiation, RelId, Scheme, Symbol};
use viewcap_expr::display::display_expr;
use viewcap_expr::{normalize, parse_expr, Expr};

/// Fixed world: R(A,B), S(B,C), T(C,D).
fn world() -> (Catalog, Vec<RelId>) {
    let mut cat = Catalog::new();
    let r = cat.relation("R", &["A", "B"]).unwrap();
    let s = cat.relation("S", &["B", "C"]).unwrap();
    let t = cat.relation("T", &["C", "D"]).unwrap();
    (cat, vec![r, s, t])
}

/// Interpret a byte program as an expression: a tiny deterministic stack
/// machine. Opcodes (mod 4): 0/1 push atom; 2 join top two; 3 project top
/// by a mask. Always leaves a valid expression.
fn interpret(cat: &Catalog, rels: &[RelId], program: &[u8]) -> Expr {
    let mut stack: Vec<Expr> = Vec::new();
    for &op in program {
        match op % 4 {
            0 | 1 => stack.push(Expr::rel(rels[(op as usize / 4) % rels.len()])),
            2 => {
                if stack.len() >= 2 {
                    let b = stack.pop().unwrap();
                    let a = stack.pop().unwrap();
                    stack.push(Expr::join(vec![a, b]).unwrap());
                }
            }
            _ => {
                if let Some(e) = stack.pop() {
                    let trs = e.trs(cat);
                    let mask = op as usize / 4;
                    let keep: Vec<_> = trs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, a)| a)
                        .collect();
                    if keep.is_empty() || keep.len() == trs.len() {
                        stack.push(e);
                    } else {
                        let x = Scheme::new(keep).unwrap();
                        stack.push(Expr::project(e, x, cat).unwrap());
                    }
                }
            }
        }
    }
    stack.pop().unwrap_or(Expr::rel(rels[0]))
}

fn instantiation(cat: &Catalog, rels: &[RelId], data: &[(usize, u32, u32)]) -> Instantiation {
    let mut alpha = Instantiation::new();
    for &(rel_idx, x, y) in data {
        let rel = rels[rel_idx % rels.len()];
        let scheme = cat.scheme_of(rel).clone();
        let mut vals = [x % 4 + 1, y % 4 + 1].into_iter();
        let row: Vec<Symbol> = scheme
            .iter()
            .map(|a| Symbol::new(a, vals.next().unwrap()))
            .collect();
        alpha.insert_rows(rel, [row], cat).unwrap();
    }
    alpha
}

proptest! {
    #[test]
    fn trs_matches_output_scheme(
        program in proptest::collection::vec(any::<u8>(), 1..24),
        data in proptest::collection::vec((0usize..3, 0u32..4, 0u32..4), 0..10),
    ) {
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let alpha = instantiation(&cat, &rels, &data);
        let out = e.eval(&alpha, &cat);
        prop_assert_eq!(out.scheme(), &e.trs(&cat));
    }

    #[test]
    fn normalize_preserves_mapping_and_atoms(
        program in proptest::collection::vec(any::<u8>(), 1..24),
        data in proptest::collection::vec((0usize..3, 0u32..4, 0u32..4), 0..10),
    ) {
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let n = normalize(&e, &cat);
        prop_assert_eq!(n.atom_count(), e.atom_count());
        prop_assert_eq!(n.trs(&cat), e.trs(&cat));
        let alpha = instantiation(&cat, &rels, &data);
        prop_assert_eq!(n.eval(&alpha, &cat), e.eval(&alpha, &cat));
        // Idempotence.
        prop_assert_eq!(normalize(&n, &cat), n);
    }

    #[test]
    fn display_parse_round_trip(program in proptest::collection::vec(any::<u8>(), 1..24)) {
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let printed = display_expr(&e, &cat);
        let back = parse_expr(&printed, &cat).expect("printer output parses");
        prop_assert_eq!(back, e);
    }

    #[test]
    fn expansion_identity(program in proptest::collection::vec(any::<u8>(), 1..16)) {
        // Expanding with the identity lookup changes nothing.
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let same = e.expand(&|_| None, &cat).unwrap();
        prop_assert_eq!(same, e);
    }

    #[test]
    fn evaluation_is_monotone(
        program in proptest::collection::vec(any::<u8>(), 1..20),
        data in proptest::collection::vec((0usize..3, 0u32..4, 0u32..4), 0..8),
        extra in proptest::collection::vec((0usize..3, 0u32..4, 0u32..4), 0..4),
    ) {
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let small = instantiation(&cat, &rels, &data);
        let mut all = data.clone();
        all.extend(extra);
        let big = instantiation(&cat, &rels, &all);
        prop_assert!(e.eval(&small, &cat).is_subset_of(&e.eval(&big, &cat)));
    }
}
