//! Expression normalization.
//!
//! Normal form (used by the bounded decision procedures; DESIGN.md §5.3):
//!
//! * joins are flattened — no join node has a join child;
//! * nested projections are collapsed — `π_X(π_Y(E)) ⇒ π_X(E)` (legal
//!   because `X ⊆ Y`);
//! * trivial projections are dropped — `π_TRS(E)(E) ⇒ E`;
//! * join operands are sorted by a canonical structural key, making the
//!   operand list a canonical multiset representative.
//!
//! Each rewrite preserves the expression mapping, the number of atom
//! occurrences, *and* the template produced by Algorithm 2.1.1 (up to
//! renaming of nondistinguished symbols) — the property the syntactic
//! subtemplate lemma relies on.

use crate::expr::Expr;
use viewcap_base::Catalog;

/// Normalize an expression (see module docs).
pub fn normalize(e: &Expr, catalog: &Catalog) -> Expr {
    match e {
        Expr::Rel(r) => Expr::Rel(*r),
        Expr::Project(child, x) => {
            let child = normalize(child, catalog);
            // Collapse π_X(π_Y(E)) to π_X(E).
            let child = match child {
                Expr::Project(inner, _) => *inner,
                other => other,
            };
            if child.trs(catalog) == *x {
                child // trivial projection
            } else {
                Expr::Project(Box::new(child), x.clone())
            }
        }
        Expr::Join(es) => {
            let mut flat = Vec::with_capacity(es.len());
            for child in es {
                match normalize(child, catalog) {
                    Expr::Join(grandchildren) => flat.extend(grandchildren),
                    other => flat.push(other),
                }
            }
            flat.sort_by_key(structural_key);
            Expr::join_all(flat)
        }
    }
}

/// Is the expression already in normal form?
pub fn is_normalized(e: &Expr, catalog: &Catalog) -> bool {
    normalize(e, catalog) == *e
}

/// A total order on expressions for canonical join-operand sorting.
///
/// Purely structural (ids and schemes), so two structurally equal
/// expressions always sort together.
fn structural_key(e: &Expr) -> Vec<u32> {
    let mut key = Vec::new();
    push_key(e, &mut key);
    key
}

fn push_key(e: &Expr, key: &mut Vec<u32>) {
    match e {
        Expr::Rel(r) => {
            key.push(0);
            key.push(r.0);
        }
        Expr::Project(child, x) => {
            key.push(1);
            key.push(x.len() as u32);
            key.extend(x.iter().map(|a| a.0));
            push_key(child, key);
        }
        Expr::Join(es) => {
            key.push(2);
            key.push(es.len() as u32);
            for child in es {
                push_key(child, key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::{Catalog, Scheme};

    fn setup() -> (Catalog, Expr, Expr) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, Expr::rel(r), Expr::rel(s))
    }

    #[test]
    fn flattens_nested_joins() {
        let (cat, r, s) = setup();
        let inner = Expr::join(vec![r.clone(), s.clone()]).unwrap();
        let outer = Expr::join(vec![inner, r.clone()]).unwrap();
        let n = normalize(&outer, &cat);
        match &n {
            Expr::Join(es) => assert_eq!(es.len(), 3),
            other => panic!("expected flat join, got {other:?}"),
        }
        assert_eq!(n.atom_count(), outer.atom_count());
    }

    #[test]
    fn collapses_projection_towers() {
        let (mut cat, r, _) = setup();
        let a = cat.attr("A");
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let pa = Scheme::new([a]).unwrap();
        let tower = Expr::project(
            Expr::project(r.clone(), ab, &cat).unwrap(),
            pa.clone(),
            &cat,
        )
        .unwrap();
        let n = normalize(&tower, &cat);
        assert_eq!(n, Expr::Project(Box::new(r), pa));
    }

    #[test]
    fn drops_trivial_projection() {
        let (mut cat, r, _) = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let p = Expr::project(r.clone(), ab, &cat).unwrap();
        assert_eq!(normalize(&p, &cat), r);
    }

    #[test]
    fn join_operands_are_canonically_sorted() {
        let (cat, r, s) = setup();
        let j1 = Expr::join(vec![r.clone(), s.clone()]).unwrap();
        let j2 = Expr::join(vec![s, r]).unwrap();
        assert_eq!(normalize(&j1, &cat), normalize(&j2, &cat));
    }

    #[test]
    fn normalization_preserves_semantics() {
        use viewcap_base::{Instantiation, Symbol};
        let (mut cat, r, s) = setup();
        let a = cat.attr("A");
        let b = cat.attr("B");
        let c = cat.attr("C");
        let rid = cat.lookup_rel("R").unwrap();
        let sid = cat.lookup_rel("S").unwrap();
        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(
                rid,
                [
                    vec![Symbol::new(a, 1), Symbol::new(b, 1)],
                    vec![Symbol::new(a, 2), Symbol::new(b, 2)],
                ],
                &cat,
            )
            .unwrap();
        alpha
            .insert_rows(sid, [vec![Symbol::new(b, 1), Symbol::new(c, 3)]], &cat)
            .unwrap();
        let e = Expr::project(
            Expr::join(vec![
                Expr::join(vec![r.clone(), s.clone()]).unwrap(),
                r.clone(),
            ])
            .unwrap(),
            Scheme::new([a, c]).unwrap(),
            &cat,
        )
        .unwrap();
        let n = normalize(&e, &cat);
        assert_eq!(e.eval(&alpha, &cat), n.eval(&alpha, &cat));
        assert!(is_normalized(&n, &cat));
    }
}
