//! Error types for expression construction, expansion, and parsing.

use std::fmt;
use viewcap_base::{RelId, Scheme};

/// Errors raised while building or manipulating m.r. expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Projection target must be a nonempty subset of the child's TRS.
    BadProjection {
        /// The requested target scheme.
        target: Scheme,
        /// The child's target relation scheme.
        child_trs: Scheme,
    },
    /// Joins need at least two operands (paper: `n > 1`).
    JoinTooSmall,
    /// Expansion would substitute an expression of the wrong type for a name.
    ExpansionTypeMismatch {
        /// The relation name being replaced.
        rel: RelId,
        /// The type the name requires.
        expected: Scheme,
        /// The TRS of the substituted expression.
        got: Scheme,
    },
    /// Expansion hit a relation name with no substitute.
    MissingSubstitute(RelId),
    /// Parse error with byte offset and message.
    Parse {
        /// Byte offset into the source string.
        at: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::BadProjection { target, child_trs } => write!(
                f,
                "projection target {target:?} is not a nonempty subset of TRS {child_trs:?}"
            ),
            ExprError::JoinTooSmall => write!(f, "join requires at least two operands"),
            ExprError::ExpansionTypeMismatch { rel, expected, got } => write!(
                f,
                "cannot substitute expression of TRS {got:?} for {rel:?} of type {expected:?}"
            ),
            ExprError::MissingSubstitute(rel) => {
                write!(f, "no substitute provided for relation name {rel:?}")
            }
            ExprError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offsets_and_schemes() {
        let e = ExprError::Parse {
            at: 7,
            msg: "expected `)`".into(),
        };
        assert!(e.to_string().contains("byte 7"));
        let e = ExprError::JoinTooSmall;
        assert!(e.to_string().contains("two operands"));
    }
}
