//! Pretty-printing of expressions against a catalog.
//!
//! The output grammar round-trips through [`crate::parser::parse_expr`]:
//!
//! ```text
//! R * S                  join
//! pi{A,B}(R * S)         projection
//! ```

use crate::expr::Expr;
use std::fmt::Write as _;
use viewcap_base::{Catalog, Scheme};

/// Render an expression using catalog names.
pub fn display_expr(e: &Expr, catalog: &Catalog) -> String {
    let mut out = String::new();
    write_expr(e, catalog, &mut out, false);
    out
}

/// Render a scheme as `{A,B,C}` using catalog names, in *name* order.
///
/// Schemes store attributes sorted by [`viewcap_base::AttrId`], which is
/// interning order — a catalog-declaration artifact. Rendering sorts by
/// name instead, so the same scheme content displays identically whatever
/// order its catalog interned attributes in (scenario reports must be
/// byte-identical across permuted catalog declarations).
pub fn display_scheme(s: &Scheme, catalog: &Catalog) -> String {
    let mut names: Vec<&str> = s.iter().map(|a| catalog.attr_name(a)).collect();
    names.sort_unstable();
    let mut out = String::from("{");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(name);
    }
    out.push('}');
    out
}

fn write_expr(e: &Expr, catalog: &Catalog, out: &mut String, parenthesize_join: bool) {
    match e {
        Expr::Rel(r) => out.push_str(catalog.rel_name(*r)),
        Expr::Project(child, x) => {
            let _ = write!(out, "pi{}", display_scheme(x, catalog));
            out.push('(');
            write_expr(child, catalog, out, false);
            out.push(')');
        }
        Expr::Join(es) => {
            if parenthesize_join {
                out.push('(');
            }
            for (i, child) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(" * ");
                }
                write_expr(child, catalog, out, true);
            }
            if parenthesize_join {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::Catalog;

    #[test]
    fn renders_the_paper_shapes() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        let b = cat.lookup_attr("B").unwrap();
        let j = Expr::join(vec![Expr::rel(r), Expr::rel(s)]).unwrap();
        assert_eq!(display_expr(&j, &cat), "R * S");
        let p = Expr::project(j, Scheme::new([b]).unwrap(), &cat).unwrap();
        assert_eq!(display_expr(&p, &cat), "pi{B}(R * S)");
    }

    #[test]
    fn nested_joins_parenthesized() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A"]).unwrap();
        let s = cat.relation("S", &["B"]).unwrap();
        let t = cat.relation("T", &["C"]).unwrap();
        let inner = Expr::join(vec![Expr::rel(s), Expr::rel(t)]).unwrap();
        let outer = Expr::join(vec![Expr::rel(r), inner]).unwrap();
        assert_eq!(display_expr(&outer, &cat), "R * (S * T)");
    }
}
