//! A small recursive-descent parser for the expression syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr   := term ( '*' term )*                 -- join (n-ary, left list)
//! term   := 'pi' '{' ident (',' ident)* '}' '(' expr ')'
//!         | '(' expr ')'
//!         | ident                              -- relation name
//! ident  := [A-Za-z_][A-Za-z0-9_$]*
//! ```
//!
//! Relation names and attributes must already exist in the catalog — parsing
//! never mutates the schema, so typos surface as errors rather than silently
//! minting new names.

use crate::error::ExprError;
use crate::expr::Expr;
use viewcap_base::{Catalog, Scheme};

/// Parse an expression against a catalog.
pub fn parse_expr(src: &str, catalog: &Catalog) -> Result<Expr, ExprError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        catalog,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    catalog: &'a Catalog,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ExprError {
        ExprError::Parse {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ExprError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ExprError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            let ok = if self.pos == start {
                c.is_ascii_alphabetic() || c == b'_'
            } else {
                c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
            };
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        std::str::from_utf8(&self.src[start..self.pos]).map_err(|_| self.err("invalid utf8"))
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        let mut terms = vec![self.term()?];
        while self.peek() == Some(b'*') {
            self.pos += 1;
            terms.push(self.term()?);
        }
        Ok(Expr::join_all(terms))
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                self.eat(b')')?;
                Ok(e)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                let name = self.ident()?;
                if name == "pi" && self.peek() == Some(b'{') {
                    self.projection()
                } else {
                    match self.catalog.lookup_rel(name) {
                        Ok(rel) => Ok(Expr::rel(rel)),
                        Err(_) => {
                            self.pos = start;
                            Err(self.err(&format!("unknown relation name `{name}`")))
                        }
                    }
                }
            }
            _ => Err(self.err("expected term")),
        }
    }

    fn projection(&mut self) -> Result<Expr, ExprError> {
        self.eat(b'{')?;
        let mut attrs = Vec::new();
        loop {
            let name = self.ident()?;
            let at = self.pos;
            let attr = self
                .catalog
                .lookup_attr(name)
                .map_err(|_| ExprError::Parse {
                    at,
                    msg: format!("unknown attribute `{name}`"),
                })?;
            attrs.push(attr);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
        self.eat(b'(')?;
        let child = self.expr()?;
        self.eat(b')')?;
        let scheme = Scheme::new(attrs).map_err(|_| self.err("empty projection set"))?;
        Expr::project(child, scheme, self.catalog).map_err(|e| ExprError::Parse {
            at: self.pos,
            msg: e.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::display_expr;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.relation("R", &["A", "B"]).unwrap();
        c.relation("S", &["B", "C"]).unwrap();
        c
    }

    #[test]
    fn parses_atoms_joins_projections() {
        let cat = cat();
        let e = parse_expr("pi{A,C}(R * S)", &cat).unwrap();
        assert_eq!(e.atom_count(), 2);
        assert_eq!(display_expr(&e, &cat), "pi{A,C}(R * S)");
    }

    #[test]
    fn round_trips_nested_structure() {
        let cat = cat();
        for src in [
            "R",
            "R * S",
            "pi{B}(R)",
            "pi{B}(R) * pi{B}(S)",
            "R * (S * R)",
        ] {
            let e = parse_expr(src, &cat).unwrap();
            let printed = display_expr(&e, &cat);
            let e2 = parse_expr(&printed, &cat).unwrap();
            assert_eq!(e, e2, "round-trip failed for {src}");
        }
    }

    #[test]
    fn rejects_unknown_names() {
        let cat = cat();
        assert!(parse_expr("T", &cat).is_err());
        assert!(parse_expr("pi{Z}(R)", &cat).is_err());
    }

    #[test]
    fn rejects_type_errors() {
        let cat = cat();
        // C ∉ TRS(R)
        assert!(parse_expr("pi{C}(R)", &cat).is_err());
        assert!(parse_expr("R *", &cat).is_err());
        assert!(parse_expr("R S", &cat).is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        let cat = cat();
        let a = parse_expr("pi{ A , B }( R\n* S )", &cat).unwrap();
        let b = parse_expr("pi{A,B}(R*S)", &cat).unwrap();
        assert_eq!(a, b);
    }
}
