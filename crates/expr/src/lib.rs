//! # viewcap-expr
//!
//! Multirelational (m.r.) expressions — Section 1.2 of Connors (JCSS 1986).
//!
//! An m.r. expression is built from relation names by *projection* and
//! *join*:
//!
//! ```text
//! E ::= η  |  π_X(E)  |  E₁ ⋈ ⋯ ⋈ Eₙ   (n ≥ 2, X nonempty ⊆ TRS(E))
//! ```
//!
//! Every expression has a *target relation scheme* `TRS(E)` and denotes an
//! *expression mapping* from instantiations to relations on `TRS(E)`
//! ([`Expr::eval`]). Queries of a database schema are expression mappings
//! whose relation names lie in the schema.
//!
//! This crate also provides:
//!
//! * **expression expansion** (Lemma 1.4.1): substituting expressions for
//!   relation names, the engine behind surrogate queries (Theorem 1.4.2);
//! * **normalization**: flattening joins and collapsing projections without
//!   changing the atom count or the induced template (used by the bounded
//!   decision procedures);
//! * a small **text syntax** (`pi{A,B}(R * S)`) for tests and examples.

pub mod display;
pub mod error;
pub mod expr;
pub mod normalize;
pub mod parser;

pub use error::ExprError;
pub use expr::Expr;
pub use normalize::normalize;
pub use parser::parse_expr;
