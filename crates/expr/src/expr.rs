//! The m.r. expression AST, its validation, evaluation, and expansion.

use crate::error::ExprError;
use std::collections::BTreeSet;
use viewcap_base::{Catalog, Instantiation, RelId, Relation, Scheme};

/// A multirelational expression (paper, Section 1.2).
///
/// Invariants (enforced by the constructors):
/// * `Project(e, x)`: `x` is a nonempty subset of `TRS(e)`;
/// * `Join(es)`: at least two operands.
///
/// The enum is deliberately small; expressions are trees of boxed nodes with
/// a `Vec` only at join nodes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A relation name `η`, with `TRS(η) = R(η)`.
    Rel(RelId),
    /// `π_X(E)`, with `TRS = X`.
    Project(Box<Expr>, Scheme),
    /// `E₁ ⋈ ⋯ ⋈ Eₙ` (n ≥ 2), with `TRS = ⋃ TRS(Eᵢ)`.
    Join(Vec<Expr>),
}

impl Expr {
    /// The atomic expression `η`.
    pub fn rel(rel: RelId) -> Expr {
        Expr::Rel(rel)
    }

    /// `π_target(child)`, validating `∅ ≠ target ⊆ TRS(child)`.
    pub fn project(child: Expr, target: Scheme, catalog: &Catalog) -> Result<Expr, ExprError> {
        let child_trs = child.trs(catalog);
        if target.is_empty() || !target.is_subset_of(&child_trs) {
            return Err(ExprError::BadProjection { target, child_trs });
        }
        Ok(Expr::Project(Box::new(child), target))
    }

    /// `children[0] ⋈ ⋯ ⋈ children[n-1]`, validating `n ≥ 2`.
    pub fn join(children: Vec<Expr>) -> Result<Expr, ExprError> {
        if children.len() < 2 {
            return Err(ExprError::JoinTooSmall);
        }
        Ok(Expr::Join(children))
    }

    /// Join a list that may have a single element (collapses to the element).
    ///
    /// Convenience for algorithmic call sites; panics on an empty list.
    pub fn join_all(mut children: Vec<Expr>) -> Expr {
        match children.len() {
            0 => panic!("join_all requires at least one operand"),
            1 => children.pop().expect("len checked"),
            _ => Expr::Join(children),
        }
    }

    /// `TRS(E)`: the target relation scheme (paper, Section 1.2).
    pub fn trs(&self, catalog: &Catalog) -> Scheme {
        match self {
            Expr::Rel(r) => catalog.scheme_of(*r).clone(),
            Expr::Project(_, x) => x.clone(),
            Expr::Join(es) => es
                .iter()
                .fold(Scheme::empty(), |acc, e| acc.union(&e.trs(catalog))),
        }
    }

    /// `RN(E)`: the set of relation names occurring in the expression.
    pub fn rel_names(&self) -> BTreeSet<RelId> {
        let mut out = BTreeSet::new();
        self.collect_rel_names(&mut out);
        out
    }

    fn collect_rel_names(&self, out: &mut BTreeSet<RelId>) {
        match self {
            Expr::Rel(r) => {
                out.insert(*r);
            }
            Expr::Project(e, _) => e.collect_rel_names(out),
            Expr::Join(es) => es.iter().for_each(|e| e.collect_rel_names(out)),
        }
    }

    /// Number of relation-name *occurrences* (leaves of the tree).
    pub fn atom_count(&self) -> usize {
        match self {
            Expr::Rel(_) => 1,
            Expr::Project(e, _) => e.atom_count(),
            Expr::Join(es) => es.iter().map(Expr::atom_count).sum(),
        }
    }

    /// Number of projections and joins (the induction measure of
    /// Lemma 1.4.1).
    pub fn operator_count(&self) -> usize {
        match self {
            Expr::Rel(_) => 0,
            Expr::Project(e, _) => 1 + e.operator_count(),
            Expr::Join(es) => 1 + es.iter().map(Expr::operator_count).sum::<usize>(),
        }
    }

    /// Evaluate the expression mapping on an instantiation: `E(α)`.
    pub fn eval(&self, alpha: &Instantiation, catalog: &Catalog) -> Relation {
        match self {
            Expr::Rel(r) => alpha.get(*r, catalog),
            Expr::Project(e, x) => e
                .eval(alpha, catalog)
                .project(x)
                .expect("constructor guarantees X ⊆ TRS"),
            Expr::Join(es) => {
                let mut it = es.iter();
                let first = it.next().expect("joins have ≥ 2 operands");
                it.fold(first.eval(alpha, catalog), |acc, e| {
                    acc.join(&e.eval(alpha, catalog))
                })
            }
        }
    }

    /// Expression expansion (Lemma 1.4.1): replace each relation name `η`
    /// with `lookup(η)`.
    ///
    /// Every name for which `lookup` returns `Some(Ē)` is replaced by `Ē`;
    /// the substitute's TRS must equal the name's type. Names mapped to
    /// `None` are left in place. The result `Ē` satisfies
    /// `Ē(α) = E(ᾱ)` whenever `ᾱ(η) = lookup(η)(α)` — the engine behind
    /// surrogate queries (Theorem 1.4.2).
    pub fn expand<F>(&self, lookup: &F, catalog: &Catalog) -> Result<Expr, ExprError>
    where
        F: Fn(RelId) -> Option<Expr>,
    {
        match self {
            Expr::Rel(r) => match lookup(*r) {
                None => Ok(Expr::Rel(*r)),
                Some(sub) => {
                    let expected = catalog.scheme_of(*r).clone();
                    let got = sub.trs(catalog);
                    if got != expected {
                        return Err(ExprError::ExpansionTypeMismatch {
                            rel: *r,
                            expected,
                            got,
                        });
                    }
                    Ok(sub)
                }
            },
            Expr::Project(e, x) => Ok(Expr::Project(
                Box::new(e.expand(lookup, catalog)?),
                x.clone(),
            )),
            Expr::Join(es) => Ok(Expr::Join(
                es.iter()
                    .map(|e| e.expand(lookup, catalog))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
        }
    }

    /// Rename relation atoms structurally; atoms mapped to `None` are kept.
    ///
    /// Unlike [`Expr::expand`] this never consults a catalog, so it is safe
    /// when the replacement names come from a *different* (e.g. newer)
    /// catalog than the expression's own — the caller guarantees the
    /// replacements are type-compatible.
    pub fn rename_rels<F>(&self, f: &F) -> Expr
    where
        F: Fn(RelId) -> Option<RelId>,
    {
        match self {
            Expr::Rel(r) => Expr::Rel(f(*r).unwrap_or(*r)),
            Expr::Project(e, x) => Expr::Project(Box::new(e.rename_rels(f)), x.clone()),
            Expr::Join(es) => Expr::Join(es.iter().map(|e| e.rename_rels(f)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::Symbol;

    fn setup() -> (Catalog, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, r, s)
    }

    #[test]
    fn constructors_validate() {
        let (cat, r, _) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        assert!(Expr::project(Expr::rel(r), Scheme::new([a]).unwrap(), &cat).is_ok());
        // C is not in TRS(R)
        assert!(Expr::project(Expr::rel(r), Scheme::new([c]).unwrap(), &cat).is_err());
        assert!(Expr::join(vec![Expr::rel(r)]).is_err());
    }

    #[test]
    fn trs_follows_the_paper() {
        let (cat, r, s) = setup();
        let j = Expr::join(vec![Expr::rel(r), Expr::rel(s)]).unwrap();
        assert_eq!(j.trs(&cat).len(), 3); // A, B, C
        let a = cat.lookup_attr("A").unwrap();
        let p = Expr::project(j.clone(), Scheme::new([a]).unwrap(), &cat).unwrap();
        assert_eq!(p.trs(&cat).len(), 1);
        assert_eq!(j.atom_count(), 2);
        assert_eq!(p.operator_count(), 2);
    }

    #[test]
    fn rel_names_is_a_set() {
        let (_, r, _) = setup();
        let j = Expr::join(vec![Expr::rel(r), Expr::rel(r)]).unwrap();
        assert_eq!(j.rel_names().len(), 1);
        assert_eq!(j.atom_count(), 2);
    }

    #[test]
    fn eval_projection_join_pipeline() {
        let (mut cat, r, s) = setup();
        let a = cat.attr("A");
        let b = cat.attr("B");
        let c = cat.attr("C");
        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(
                r,
                [
                    vec![Symbol::new(a, 1), Symbol::new(b, 10)],
                    vec![Symbol::new(a, 2), Symbol::new(b, 20)],
                ],
                &cat,
            )
            .unwrap();
        alpha
            .insert_rows(s, [vec![Symbol::new(b, 10), Symbol::new(c, 100)]], &cat)
            .unwrap();
        let j = Expr::join(vec![Expr::rel(r), Expr::rel(s)]).unwrap();
        let out = j.eval(&alpha, &cat);
        assert_eq!(out.len(), 1);
        let p = Expr::project(j, Scheme::new([a, c]).unwrap(), &cat).unwrap();
        let out = p.eval(&alpha, &cat);
        assert!(out.contains(&vec![Symbol::new(a, 1), Symbol::new(c, 100)]));
    }

    #[test]
    fn expand_replaces_names_and_checks_types() {
        let (mut cat, r, s) = setup();
        // A view name ν of type {B}: substitute π_B(R) for it.
        let b = cat.attr("B");
        let nu = cat.fresh_relation("nu", Scheme::new([b]).unwrap());
        let body = Expr::project(Expr::rel(r), Scheme::new([b]).unwrap(), &cat).unwrap();
        let view_query = Expr::join(vec![Expr::rel(nu), Expr::rel(s)]).unwrap();

        let expanded = view_query
            .expand(&|id| if id == nu { Some(body.clone()) } else { None }, &cat)
            .unwrap();
        // ν replaced, S untouched.
        assert!(expanded.rel_names().contains(&r));
        assert!(expanded.rel_names().contains(&s));
        assert!(!expanded.rel_names().contains(&nu));

        // Type mismatch is rejected.
        let wrong = Expr::rel(r); // TRS {A,B} ≠ {B}
        assert!(view_query
            .expand(
                &|id| if id == nu { Some(wrong.clone()) } else { None },
                &cat
            )
            .is_err());
    }

    #[test]
    fn expansion_semantics_lemma_1_4_1() {
        // Ē(α) = E(ᾱ) where ᾱ(ν) = body(α).
        let (mut cat, r, s) = setup();
        let a = cat.attr("A");
        let b = cat.attr("B");
        let c = cat.attr("C");
        let nu = cat.fresh_relation("nu", Scheme::new([a, b]).unwrap());
        let body = Expr::rel(r); // trivial body, same type

        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(r, [vec![Symbol::new(a, 1), Symbol::new(b, 10)]], &cat)
            .unwrap();
        alpha
            .insert_rows(s, [vec![Symbol::new(b, 10), Symbol::new(c, 7)]], &cat)
            .unwrap();

        let e = Expr::join(vec![Expr::rel(nu), Expr::rel(s)]).unwrap();
        let expanded = e
            .expand(&|id| (id == nu).then(|| body.clone()), &cat)
            .unwrap();

        // Build ᾱ with ᾱ(ν) = body(α).
        let mut alpha_bar = alpha.clone();
        alpha_bar.set(nu, body.eval(&alpha, &cat), &cat).unwrap();

        assert_eq!(expanded.eval(&alpha, &cat), e.eval(&alpha_bar, &cat));
    }
}
