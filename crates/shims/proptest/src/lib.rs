//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, integer-range and tuple strategies,
//! [`any`], [`collection::vec`], the `prop_assert*` family, `prop_assume!`,
//! and [`ProptestConfig::with_cases`].
//!
//! Cases are drawn from a deterministic RNG seeded by the test's module
//! path and name, so runs are reproducible. There is no shrinking: a
//! failing case panics immediately through the underlying `assert!`.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

/// Per-test configuration (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

impl ProptestConfig {
    /// Run each property for `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` rejections; the case is skipped.
#[derive(Clone, Copy, Debug)]
pub struct TestCaseReject;

/// Deterministic SplitMix64 generator driving strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator with an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Seed a [`TestRng`] from a test identifier (FNV-1a over the name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    TestRng::new(h)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a default full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
    (S0/0, S1/1, S2/2, S3/3, S4/4, S5/5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import used by property-test files.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Run each contained property for many generated inputs.
///
/// Supports the upstream surface this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; `$cfg` is hoisted to a plain
/// capture so it can expand inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // The closure gives `prop_assume!` a scope to early-return
                    // from, so the call-where-declared shape is load-bearing.
                    #[allow(clippy::redundant_closure_call)]
                    let _rejected: ::core::result::Result<(), $crate::TestCaseReject> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                }
            }
        )*
    };
}

/// `assert!` that participates in the proptest vocabulary.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `assert_eq!` that participates in the proptest vocabulary.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `assert_ne!` that participates in the proptest vocabulary.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseReject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 2u32..9,
            v in crate::collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn tuples_and_map(
            (a, b) in (0usize..4, 1u32..3),
            doubled in (0u64..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(a < 4 && (1..3).contains(&b));
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_is_honored(x in 0u8..255) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("other::test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
