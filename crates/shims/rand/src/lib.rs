//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over integer ranges — the subset this workspace uses.
//! The generator is SplitMix64: deterministic per seed, statistically fine
//! for workload generation, and dependency-free.

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Generic over the *element* type (like upstream `rand`), so type
    /// inference can flow backward from how the result is used into the
    /// choice of range impl.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministic generator for the given seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types with uniform range sampling (via 64-bit wrapping math,
/// which is exact for every primitive width up to 64 bits).
pub trait SampleUniform: Copy + PartialOrd {
    /// Bit-cast to `u64` (sign-extending).
    fn to_u64(self) -> u64;
    /// Truncating bit-cast back.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges over `T` that can be sampled uniformly.
///
/// Blanket-implemented over [`SampleUniform`] (one impl per range shape,
/// like upstream), so type inference can unify untyped range literals with
/// the expected output type.
pub trait SampleRange<T> {
    /// Draw one element.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let start = self.start.to_u64();
        let span = self.end.to_u64().wrapping_sub(start);
        T::from_u64(start.wrapping_add(rng.next_u64() % span))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start() <= self.end(), "cannot sample empty range");
        let start = self.start().to_u64();
        let span = self.end().to_u64().wrapping_sub(start).wrapping_add(1);
        if span == 0 {
            // The range covers the full 64-bit domain.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(start.wrapping_add(rng.next_u64() % span))
    }
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 60), b.gen_range(0u64..1 << 60));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }
}
