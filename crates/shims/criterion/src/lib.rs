//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Each benchmark runs a small fixed number of timed samples and prints
//! mean and minimum per-iteration wall time. Set `VIEWCAP_BENCH_SAMPLES`
//! to override the per-benchmark sample count (handy in CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as upstream renders it.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call outside the measurement.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

fn env_samples(default: usize) -> usize {
    std::env::var("VIEWCAP_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn report(label: &str, times: &[Duration]) {
    if times.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().expect("nonempty");
    println!(
        "{label:<56} mean {:>12.3?}   min {:>12.3?}   ({} samples)",
        mean,
        min,
        times.len()
    );
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut bencher);
    report(label, &bencher.times);
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            samples: env_samples(10),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.samples, |b| f(b));
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = env_samples(n);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, |b| f(b, input));
        self
    }

    /// End the group (upstream flushes reports here; we print eagerly).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion { samples: 2 };
        let mut calls = 0usize;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        // warm-up + 2 samples
        assert_eq!(calls, 3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
