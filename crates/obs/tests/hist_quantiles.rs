//! Property test: histogram p50/p99 agree with a naive sorted-vec
//! oracle up to one bucket's relative error (the estimate must land in
//! the exact order statistic's bucket, which bounds the error by the
//! bucket width — at most a quarter of the value).

use proptest::prelude::*;
use viewcap_obs::{bucket_bounds, bucket_index, HistCore};

/// The oracle: rank `ceil(q * n)` (1-based) of the sorted values — the
/// same convention `HistogramSnapshot::quantile` uses.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_match_sorted_oracle_within_bucket_error(
        values in proptest::collection::vec(0u64..2_000_000, 1..200),
    ) {
        let h = HistCore::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.99] {
            let exact = oracle(&sorted, q);
            let est = snap.quantile(q);
            prop_assert_eq!(
                bucket_index(est),
                bucket_index(exact),
                "q={} est={} exact={} values={:?}",
                q,
                est,
                exact,
                &values
            );
            // The same-bucket property bounds the error by the bucket
            // width; assert the advertised relative bound explicitly.
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            let width = hi - lo;
            prop_assert!(est.abs_diff(exact) <= width, "err beyond one bucket width");
        }
    }
}
