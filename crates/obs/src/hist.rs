//! Log-bucketed latency histogram (HDR-style).
//!
//! Values 0..16 get one exact bucket each; every power-of-two octave
//! above that is split into four sub-buckets (two mantissa bits), so a
//! recorded value lands in a bucket whose width is at most a quarter of
//! its lower bound — quantile estimates carry bounded ~25% relative
//! error at a fixed 256-slot footprint across the whole `u64` range.
//! Recording is one relaxed `fetch_add` per cell; no locks.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Values below this are their own exact bucket.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per octave (2 mantissa bits).
const SUBS: usize = 4;
const SUB_SHIFT: u32 = 2;
/// Octave of the first log bucket (`LINEAR_MAX == 2^4`).
const FIRST_OCTAVE: u32 = 4;
/// Total bucket count: 16 linear + 4 per octave for octaves 4..=63.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - FIRST_OCTAVE as usize) * SUBS;

/// Bucket index holding `v`. Monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - SUB_SHIFT)) & (SUBS as u64 - 1)) as usize;
    LINEAR_MAX as usize + (octave - FIRST_OCTAVE) as usize * SUBS + sub
}

/// `[lo, hi)` bounds of bucket `i` (the top bucket saturates to
/// `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < BUCKETS);
    if i < LINEAR_MAX as usize {
        return (i as u64, i as u64 + 1);
    }
    let k = i - LINEAR_MAX as usize;
    let octave = FIRST_OCTAVE + (k / SUBS) as u32;
    let sub = (k % SUBS) as u64;
    let width = 1u64 << (octave - SUB_SHIFT);
    let lo = (1u64 << octave) + sub * width;
    (lo, lo.saturating_add(width))
}

/// The raw concurrent histogram: fixed bucket array plus count/sum and
/// running min/max. `const`-constructible so handles can live in statics.
pub struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistCore {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count = self.count.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
            buckets,
        }
    }
}

impl Default for HistCore {
    fn default() -> Self {
        HistCore::new()
    }
}

/// A frozen histogram: sparse `(bucket, count)` pairs plus the scalar
/// aggregates. Quantiles are answered from the cumulative bucket walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Sorted by bucket index; zero-count buckets omitted.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (0.0..=1.0) as a representative of the bucket
    /// holding rank `ceil(q * count)` (1-based; the convention a sorted
    /// vector's `v[ceil(q*n)-1]` uses). Returns the bucket midpoint
    /// clamped into `[min, max]`, so the estimate always lies in the
    /// same bucket as the exact order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, n) in &self.buckets {
            cum = cum.saturating_add(n);
            if cum >= rank {
                let (lo, hi) = bucket_bounds(i as usize);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold `other` into `self`. All additive fields saturate — a
    /// long-lived process merging snapshots forever must never wrap.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na.saturating_add(nb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bounds_contain_their_values_and_indexes_are_monotone() {
        let probes: Vec<u64> = (0..64)
            .flat_map(|k| {
                let p = 1u64 << k;
                [
                    p.saturating_sub(1),
                    p,
                    p + 1,
                    p.saturating_add(p / 4),
                    p.saturating_add(p / 2),
                ]
            })
            .chain([0, 15, 16, 17, 1000, 123_456_789, u64::MAX])
            .collect();
        let mut last = 0usize;
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for v in sorted {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v < hi || hi == u64::MAX, "v {v} >= hi {hi}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn octave_boundaries_split_into_four() {
        // 256..512 must span exactly buckets [256,320), [320,384),
        // [384,448), [448,512).
        let base = bucket_index(256);
        assert_eq!(bucket_index(319), base);
        assert_eq!(bucket_index(320), base + 1);
        assert_eq!(bucket_index(447), base + 2);
        assert_eq!(bucket_index(448), base + 3);
        assert_eq!(bucket_index(512), base + 4);
        assert_eq!(bucket_bounds(base), (256, 320));
        assert_eq!(bucket_bounds(base + 3), (448, 512));
    }

    #[test]
    fn quantiles_on_known_data() {
        let h = HistCore::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // p50 rank = 50 → exact value 50; estimate must share its bucket.
        assert_eq!(bucket_index(s.p50()), bucket_index(50));
        assert_eq!(bucket_index(s.p99()), bucket_index(99));
        // Exact in the linear range.
        let small = HistCore::new();
        for v in [2u64, 3, 5, 7, 11] {
            small.record(v);
        }
        let ss = small.snapshot();
        assert_eq!(ss.p50(), 5);
        assert_eq!(ss.quantile(1.0), 11);
        assert_eq!(ss.quantile(0.0), 2);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = HistCore::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.p50(), s.p99()), (0, 0, 0, 0, 0));
    }

    #[test]
    fn merge_matches_single_histogram_and_saturates() {
        let (a, b, all) = (HistCore::new(), HistCore::new(), HistCore::new());
        for v in 0..500u64 {
            let x = v * v % 10_000;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
        let mut big = HistogramSnapshot {
            count: u64::MAX - 1,
            sum: u64::MAX - 1,
            min: 1,
            max: 2,
            buckets: vec![(1, u64::MAX - 1)],
        };
        big.merge(&big.clone());
        assert_eq!(big.count, u64::MAX);
        assert_eq!(big.sum, u64::MAX);
        assert_eq!(big.buckets, vec![(1, u64::MAX)]);
    }
}
