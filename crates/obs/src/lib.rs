//! `viewcap-obs` — tracing spans, metrics, and latency histograms.
//!
//! A dependency-free observability layer (the workspace builds offline;
//! like `crates/shims/` this crate uses `std` only) threaded through the
//! three compute layers:
//!
//! * **Spans and events** ([`SpanDef`], [`instant`]) land in per-thread
//!   ring buffers stamped by a process-wide monotonic clock and export as
//!   Chrome `trace_event` JSON ([`write_trace`]) — load the file in
//!   Perfetto or `chrome://tracing`.
//! * **Metrics** ([`Counter`], [`Hist`]) are atomic cells registered
//!   lazily in a global registry; [`snapshot`] freezes them into a
//!   [`MetricsSnapshot`] whose histograms expose p50/p90/p99.
//! * **Disabled is free**: every instrumentation site first checks
//!   [`enabled`], a single relaxed atomic load, and does nothing else
//!   when telemetry is off (the default).
//!
//! Counter values and span *counts* are deterministic for a given
//! workload — the engine's batch executor dedups and elects
//! representatives sequentially, so totals do not depend on `--jobs`.
//! Only timestamps and durations vary run to run; snapshots keep them in
//! histograms, strictly apart from the counter map, so callers can
//! compare [`MetricsSnapshot::counters_text`] byte-for-byte across
//! concurrency levels.

mod hist;
mod metrics;
mod trace;

pub use hist::{bucket_bounds, bucket_index, HistCore, HistogramSnapshot, BUCKETS};
pub use metrics::{snapshot, Counter, Hist, MetricsSnapshot};
pub use trace::{instant, trace_json, write_trace, Span, SpanDef};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry collection on? One relaxed load; inlined everywhere so a
/// disabled probe costs nothing else.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Zero every registered counter and histogram and clear all trace ring
/// buffers. Handles stay registered; in-flight spans started before the
/// reset will still record on drop.
pub fn reset() {
    metrics::reset_metrics();
    trace::reset_trace();
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Tests in this crate share the process-global registry and enabled
/// flag; they serialize on this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Nanoseconds since the process-wide monotonic epoch (anchored on first
/// use, so early timestamps stay small and the trace starts near zero).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}
