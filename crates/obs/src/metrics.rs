//! Counter/histogram handles and the global registry.
//!
//! Handles are `const`-constructible statics holding their own atomic
//! cells; the registry is just a list of pointers collected on first
//! use (a `Once` per handle), so the hot path after the [`enabled`]
//! check is one relaxed `fetch_add` — no map lookups, no locks.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once};

use crate::enabled;
use crate::hist::{HistCore, HistogramSnapshot};

static COUNTERS: Mutex<Vec<(&'static str, &'static AtomicU64)>> = Mutex::new(Vec::new());
static HISTS: Mutex<Vec<(&'static str, &'static HistCore)>> = Mutex::new(Vec::new());

/// A named monotonically increasing counter. Declare as a `static` next
/// to the code it instruments:
///
/// ```
/// static HITS: viewcap_obs::Counter = viewcap_obs::Counter::new("engine.cache.hit");
/// HITS.add(1);
/// ```
pub struct Counter {
    name: &'static str,
    cell: AtomicU64,
    registered: Once,
}

impl Counter {
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: AtomicU64::new(0),
            registered: Once::new(),
        }
    }

    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| COUNTERS.lock().unwrap().push((self.name, &self.cell)));
        self.cell.fetch_add(n, Relaxed);
    }
}

/// A named latency histogram handle (see [`crate::HistCore`] for the
/// bucket layout). Values are whatever unit the caller records —
/// engine latencies use nanoseconds by convention (`*_ns` names).
pub struct Hist {
    name: &'static str,
    core: HistCore,
    registered: Once,
}

impl Hist {
    pub const fn new(name: &'static str) -> Hist {
        Hist {
            name,
            core: HistCore::new(),
            registered: Once::new(),
        }
    }

    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.registered
            .call_once(|| HISTS.lock().unwrap().push((self.name, &self.core)));
        self.core.record(v);
    }
}

pub(crate) fn reset_metrics() {
    for (_, cell) in COUNTERS.lock().unwrap().iter() {
        cell.store(0, Relaxed);
    }
    for (_, core) in HISTS.lock().unwrap().iter() {
        core.reset();
    }
}

/// Freeze every registered metric. Counters and histograms live in
/// separate maps: counters are deterministic for a given workload,
/// histograms carry timing and are expected to vary run to run.
pub fn snapshot() -> MetricsSnapshot {
    let counters = COUNTERS
        .lock()
        .unwrap()
        .iter()
        .map(|&(name, cell)| (name.to_string(), cell.load(Relaxed)))
        .collect();
    let histograms = HISTS
        .lock()
        .unwrap()
        .iter()
        .map(|&(name, core)| (name.to_string(), core.snapshot()))
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// A frozen view of the registry, mergeable and renderable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`. Counters saturate (the same policy as
    /// `EnumStats::plus`): a fleet aggregator folding snapshots forever
    /// must pin at `u64::MAX`, not wrap.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// The counter map alone as sorted `name value` lines — the
    /// byte-comparable, timing-free projection the determinism tests
    /// pin across `--jobs` levels.
    pub fn counters_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{name} {v}");
        }
        out
    }

    /// Render as JSON: counters verbatim, histograms as their scalar
    /// aggregates plus p50/p90/p99 (raw buckets are an internal detail
    /// and stay out of the file).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50(),
                h.p90(),
                h.p99()
            );
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Minimal JSON string escape. Metric names are static identifiers, but
/// the writer must stay correct if one ever carries a quote.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_A: Counter = Counter::new("test.metrics.a");
    static TEST_B: Counter = Counter::new("test.metrics.b");
    static TEST_H: Hist = Hist::new("test.metrics.lat_ns");

    #[test]
    fn disabled_records_nothing_enabled_snapshots() {
        // Single test exercising the global registry end to end (tests
        // in this binary share it, so keep the lifecycle in one place).
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        TEST_A.add(5);
        crate::set_enabled(true);
        TEST_A.add(2);
        TEST_B.add(3);
        TEST_H.record(100);
        TEST_H.record(200);
        let snap = snapshot();
        assert_eq!(snap.counters.get("test.metrics.a"), Some(&2));
        assert_eq!(snap.counters.get("test.metrics.b"), Some(&3));
        assert_eq!(snap.histograms.get("test.metrics.lat_ns").unwrap().count, 2);
        assert_eq!(snap.counters_text(), "test.metrics.a 2\ntest.metrics.b 3\n");

        let mut merged = snap.clone();
        merged.merge(&snap);
        assert_eq!(merged.counters.get("test.metrics.a"), Some(&4));
        assert_eq!(
            merged.histograms.get("test.metrics.lat_ns").unwrap().count,
            4
        );
        let mut sat = MetricsSnapshot::default();
        sat.counters.insert("test.metrics.a".into(), u64::MAX - 1);
        sat.merge(&snap);
        assert_eq!(sat.counters.get("test.metrics.a"), Some(&u64::MAX));

        let json = snap.to_json();
        assert!(json.contains("\"test.metrics.a\": 2"));
        assert!(json.contains("\"p50\""));

        crate::reset();
        let zeroed = snapshot();
        assert_eq!(zeroed.counters.get("test.metrics.a"), Some(&0));
        assert_eq!(
            zeroed.histograms.get("test.metrics.lat_ns").unwrap().count,
            0
        );
        crate::set_enabled(false);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("plain.name"), "plain.name");
    }
}
