//! Span/event tracing into per-thread ring buffers, exported as Chrome
//! `trace_event` JSON (the format Perfetto and `chrome://tracing` load).
//!
//! Each thread writes to its own ring (registered globally so export
//! outlives scoped worker threads); a ring holds the newest
//! [`RING_CAP`] events and counts what it had to drop. Events carry
//! static name/category strings and up to two integer args — nothing
//! on the hot path allocates.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use crate::metrics::{escape, Counter};
use crate::{enabled, now_ns};

/// Per-thread ring capacity. 64Ki events ≈ 4 MiB per active thread,
/// plenty for a scenario run; long benches overwrite the oldest.
const RING_CAP: usize = 1 << 16;

type Args = [Option<(&'static str, u64)>; 2];

struct Event {
    name: &'static str,
    cat: &'static str,
    /// `b'X'` complete span, `b'i'` instant.
    ph: u8,
    ts_ns: u64,
    dur_ns: u64,
    args: Args,
}

struct Ring {
    tid: u64,
    events: Vec<Event>,
    /// Next overwrite position once `events` is full.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < RING_CAP {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped += 1;
        }
    }
}

static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            tid: NEXT_TID.fetch_add(1, Relaxed),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }));
        RINGS.lock().unwrap().push(ring.clone());
        ring
    };
}

fn push_event(e: Event) {
    LOCAL.with(|ring| ring.lock().unwrap().push(e));
}

/// A span definition: declare one `static` per instrumented region.
/// Starting a span also bumps a counter (pass its name explicitly,
/// conventionally `span.<span name>`) so span *counts* — which are
/// deterministic for a workload — show up in metrics snapshots even
/// though durations only live in the trace.
///
/// ```
/// static CHECK: viewcap_obs::SpanDef =
///     viewcap_obs::SpanDef::new("engine.check", "engine", "span.engine.check");
/// let _span = CHECK.start();
/// ```
pub struct SpanDef {
    name: &'static str,
    cat: &'static str,
    starts: Counter,
}

impl SpanDef {
    pub const fn new(name: &'static str, cat: &'static str, counter: &'static str) -> SpanDef {
        SpanDef {
            name,
            cat,
            starts: Counter::new(counter),
        }
    }

    /// Begin a span; recording happens when the guard drops. Inactive
    /// (and free beyond the flag load) while telemetry is disabled.
    #[inline]
    pub fn start(&'static self) -> Span {
        if !enabled() {
            return Span {
                def: None,
                t0: 0,
                args: [None, None],
            };
        }
        self.starts.add(1);
        Span {
            def: Some(self),
            t0: now_ns(),
            args: [None, None],
        }
    }
}

/// Live span guard. Attach up to two integer args before it drops.
pub struct Span {
    def: Option<&'static SpanDef>,
    t0: u64,
    args: Args,
}

impl Span {
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.def.is_some() {
            for slot in &mut self.args {
                if slot.is_none() {
                    *slot = Some((key, value));
                    return;
                }
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(def) = self.def {
            let now = now_ns();
            push_event(Event {
                name: def.name,
                cat: def.cat,
                ph: b'X',
                ts_ns: self.t0,
                dur_ns: now.saturating_sub(self.t0),
                args: self.args,
            });
        }
    }
}

/// Record a zero-duration instant event (evictions, retirements, ...).
#[inline]
pub fn instant(name: &'static str, cat: &'static str, args: &[(&'static str, u64)]) {
    if !enabled() {
        return;
    }
    let mut packed: Args = [None, None];
    for (slot, &a) in packed.iter_mut().zip(args) {
        *slot = Some(a);
    }
    push_event(Event {
        name,
        cat,
        ph: b'i',
        ts_ns: now_ns(),
        dur_ns: 0,
        args: packed,
    });
}

pub(crate) fn reset_trace() {
    for ring in RINGS.lock().unwrap().iter() {
        let mut r = ring.lock().unwrap();
        r.events.clear();
        r.head = 0;
        r.dropped = 0;
    }
}

/// Microseconds with nanosecond decimals, the unit `trace_event` wants.
fn write_us(out: &mut String, ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

/// Serialize every ring as Chrome `trace_event` JSON. Events within a
/// ring come out in chronological order (oldest surviving first).
pub fn write_trace<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(trace_json().as_bytes())
}

/// [`write_trace`] into a `String`.
pub fn trace_json() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut dropped_total = 0u64;
    for ring in RINGS.lock().unwrap().iter() {
        let r = ring.lock().unwrap();
        dropped_total += r.dropped;
        let n = r.events.len();
        for k in 0..n {
            // Oldest first: the ring overwrites at `head`, so the oldest
            // surviving event sits there.
            let e = &r.events[(r.head + k) % n.max(1)];
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":",
                escape(e.name),
                escape(e.cat),
                e.ph as char,
                r.tid
            );
            write_us(&mut out, e.ts_ns);
            if e.ph == b'X' {
                out.push_str(",\"dur\":");
                write_us(&mut out, e.dur_ns);
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            let live: Vec<(&'static str, u64)> = e.args.iter().flatten().copied().collect();
            if !live.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in live.iter().enumerate() {
                    let sep = if i == 0 { "" } else { "," };
                    let _ = write!(out, "{sep}\"{}\":{v}", escape(k));
                }
                out.push('}');
            }
            out.push('}');
        }
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped_total}}}}}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_SPAN: SpanDef = SpanDef::new("test.trace.work", "test", "span.test.trace.work");

    #[test]
    fn spans_and_instants_export_as_trace_events() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let mut span = TEST_SPAN.start();
            span.arg("items", 7);
            span.arg("level", 2);
            span.arg("ignored", 3); // only two slots
            instant("test.trace.tick", "test", &[("n", 1)]);
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _span = TEST_SPAN.start();
            });
        });
        let json = trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"test.trace.work\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"items\":7"));
        assert!(json.contains("\"level\":2"));
        assert!(!json.contains("ignored"));
        // Two spans on two distinct threads.
        assert_eq!(json.matches("test.trace.work").count(), 2);
        let snap = crate::snapshot();
        assert_eq!(snap.counters.get("span.test.trace.work"), Some(&2));

        crate::set_enabled(false);
        crate::reset();
        let _none = TEST_SPAN.start();
        drop(_none);
        let empty = trace_json();
        assert!(!empty.contains("test.trace.work"));
    }
}
