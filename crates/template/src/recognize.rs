//! Expression-template recognition.
//!
//! The paper relies on two facts from Connors & Vianu, *Tableaux which
//! define expression mappings* (XP2 1981) — Propositions 2.4.5/2.4.6 — to
//! know that expression templates are recognizable. That paper is not
//! available; we implement recognition constructively instead
//! (DESIGN.md §5.2–5.3):
//!
//! > A template `S` is an *m.r.e. template* (realizes some project–join
//! > expression) **iff** `S ≡ T_E` for a normalized expression `E` over
//! > `RN(S)` with at most `#(reduce(S))` atom occurrences.
//!
//! The "if" direction is trivial; "only if" follows from the syntactic
//! subtemplate lemma applied to the homomorphic image of `reduce(S)` inside
//! the template of any realizing expression. Recognition is therefore a
//! bounded search, and positive answers carry an explicit witness
//! expression.

use crate::hom::equivalent_templates;
use crate::reduce::reduce;
use crate::search::{for_each_candidate, SearchLimits, SearchOverflow};
use crate::template::Template;
use std::ops::ControlFlow;
use viewcap_base::{Catalog, RelId};
use viewcap_expr::Expr;

/// Find a project–join expression realizing the template's mapping, if one
/// exists (Proposition 2.4.6, constructive).
pub fn expression_realization(
    t: &Template,
    catalog: &Catalog,
    limits: &SearchLimits,
) -> Result<Option<Expr>, SearchOverflow> {
    let red = reduce(t);
    let atoms: Vec<RelId> = red.rel_names().into_iter().collect();
    let trs = red.trs();
    let mut witness = None;
    for_each_candidate(
        catalog,
        &atoms,
        red.len(),
        Some(&trs),
        limits,
        &mut |e, cand| {
            if equivalent_templates(cand, &red) {
                witness = Some(e.clone());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        },
    )?;
    Ok(witness)
}

/// Is the template an expression template? (Convenience wrapper.)
pub fn is_expression_template(
    t: &Template,
    catalog: &Catalog,
    limits: &SearchLimits,
) -> Result<bool, SearchOverflow> {
    Ok(expression_realization(t, catalog, limits)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_expr::template_of_expr;
    use crate::template::TaggedTuple;
    use viewcap_base::Symbol;
    use viewcap_expr::parse_expr;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B"]).unwrap();
        cat.relation("S", &["B", "C"]).unwrap();
        cat
    }

    #[test]
    fn algorithm_outputs_are_recognized() {
        let cat = setup();
        for src in [
            "R",
            "pi{A}(R)",
            "R * S",
            "pi{A,C}(R * S)",
            "pi{B}(R) * pi{B}(S)",
        ] {
            let e = parse_expr(src, &cat).unwrap();
            let t = template_of_expr(&e, &cat);
            let w = expression_realization(&t, &cat, &SearchLimits::default())
                .unwrap()
                .unwrap_or_else(|| panic!("{src} not recognized"));
            // The witness realizes the same mapping.
            let wt = template_of_expr(&w, &cat);
            assert!(equivalent_templates(&wt, &t), "bad witness for {src}");
        }
    }

    #[test]
    fn non_expression_template_is_rejected() {
        // Two tuples tagged R sharing a nondistinguished A-symbol while BOTH
        // keep 0_B alive: a "cyclic" sharing pattern project–join cannot
        // create. In any T_E, two tuples share a symbol only via a
        // projection that hid the attribute — but here B remains
        // distinguished and A's shared symbol is nondistinguished while no
        // third party holds the cap. Concretely: {(a₁, 0_B), (a₁, b₂)}
        // tagged R — tuple 2 constrains tuple 1's row to agree on A with a
        // row whose B is unconstrained. Expressions cannot produce a
        // NONTRIVIAL such pattern; the reduced form here collapses, so use
        // three tuples forming a genuine triangle over {R, S}.
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        // T = {(0_A, b₁), (a₂, b₁), (a₂, 0_B)} over R: a path of shared
        // symbols connecting 0_A to 0_B through nondistinguished a₂, b₁.
        let t = Template::new(vec![
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap(),
            TaggedTuple::new(r, vec![Symbol::new(a, 2), Symbol::new(b, 1)], &cat).unwrap(),
            TaggedTuple::new(r, vec![Symbol::new(a, 2), Symbol::distinguished(b)], &cat).unwrap(),
        ])
        .unwrap();
        let red = reduce(&t);
        assert_eq!(red.len(), 3, "the path template is already reduced");
        let w = expression_realization(&t, &cat, &SearchLimits::default()).unwrap();
        assert!(
            w.is_none(),
            "path-sharing template is not an m.r.e. template"
        );
    }

    #[test]
    fn recognition_is_invariant_under_renaming() {
        let cat = setup();
        let e = parse_expr("pi{A,C}(R * S)", &cat).unwrap();
        let t = template_of_expr(&e, &cat);
        // Rename nondistinguished symbols by shifting ordinals.
        let renamed = Template::new(
            t.tuples()
                .iter()
                .map(|tt| {
                    tt.map_symbols(|s| {
                        if s.is_distinguished() {
                            s
                        } else {
                            Symbol::new(s.attr(), s.ord() + 40)
                        }
                    })
                })
                .collect(),
        )
        .unwrap();
        assert!(is_expression_template(&renamed, &cat, &SearchLimits::default()).unwrap());
    }
}
