//! Canonical keys and isomorphism of templates.
//!
//! Two templates are *isomorphic* (paper, Section 2.4) when a bijective
//! valuation maps one onto the other with a homomorphic inverse — i.e. they
//! are equal up to renaming of nondistinguished symbols. Isomorphism is what
//! Theorem 4.2.2's uniqueness statement is phrased in, and what the search
//! engine uses to bucket candidates.
//!
//! [`canonical_key`] computes an isomorphism-invariant key: tuples are
//! grouped by a strong local invariant, and the key is minimized over
//! within-group orderings with nondistinguished symbols renamed by first
//! occurrence. Keys are *complete* for templates whose group-permutation
//! budget stays under [`PERM_BUDGET`] (equal keys ⇔ isomorphic); above the
//! budget the key degrades to a sound-but-incomplete invariant and
//! [`is_isomorphic`] falls back to backtracking search, so correctness never
//! depends on the budget.

use crate::template::Template;
use std::collections::HashMap;
use std::ops::ControlFlow;
use viewcap_base::{AttrId, RelId, Symbol};

/// Maximum number of tuple orderings explored for an exact canonical key.
pub const PERM_BUDGET: usize = 40_320; // 8!

/// An isomorphism-invariant key for a template.
///
/// `exact == true` keys are complete: two templates with equal exact keys
/// are isomorphic, and isomorphic templates have equal exact keys.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonKey {
    words: Vec<u64>,
    exact: bool,
}

impl CanonKey {
    /// Whether this key is complete for isomorphism.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The key's word encoding.
    ///
    /// Equal word sequences always imply isomorphic templates (the encoding
    /// determines the template up to renaming of nondistinguished symbols),
    /// even for inexact keys — inexactness only means *isomorphic templates
    /// may encode differently*. Downstream fingerprinting (the
    /// `viewcap-engine` verdict cache) relies on exactly this direction.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Labels controlling how a canonical key names catalog structure.
///
/// The default key ([`canonical_key`]) labels tuples by raw [`RelId`] and
/// orders row slots by [`AttrId`] — cheap, and complete for
/// within-catalog isomorphism. Content-addressed callers (the
/// `viewcap-engine` fingerprints) substitute catalog-independent labels:
/// relation *content digests* and attribute *name* ranks, making equal
/// keys mean "same template content" across catalogs that declared the
/// same relations in any order.
///
/// `attr_rank` must be injective on the attributes the template uses (any
/// rank derived from distinct names or distinct ids qualifies); only the
/// *relative order* of ranks enters the key, so rank tables that shift
/// under catalog growth stay sound as long as relative order is preserved.
pub struct KeyLabels<'a> {
    /// 128-bit label per relation tag.
    pub rel_label: &'a dyn Fn(RelId) -> u128,
    /// Total-order rank for row slots (canonical attribute order).
    pub attr_rank: &'a dyn Fn(AttrId) -> u64,
}

/// The canonical row-slot traversal of every tuple under `labels` —
/// permutation-invariant, so it is computed once per canonicalization and
/// shared by the (up to [`PERM_BUDGET`]) encodings the minimization runs.
fn slot_orders(t: &Template, labels: &KeyLabels<'_>) -> Vec<Vec<usize>> {
    t.tuples()
        .iter()
        .map(|tup| {
            let row = tup.row();
            let mut slots: Vec<usize> = (0..row.len()).collect();
            slots.sort_unstable_by_key(|&j| ((labels.attr_rank)(row[j].attr()), row[j].attr().0));
            slots
        })
        .collect()
}

/// Per-tuple invariant used to pre-group tuples before permutation.
///
/// Isomorphisms preserve each field, so only within-group reorderings can
/// witness an isomorphism.
fn tuple_invariant(
    t: &Template,
    idx: usize,
    labels: &KeyLabels<'_>,
    slots: &[Vec<usize>],
    occurs: &HashMap<Symbol, u64>,
) -> Vec<u64> {
    let tup = &t.tuples()[idx];
    let label = (labels.rel_label)(tup.rel());
    let mut inv = vec![(label >> 64) as u64, label as u64];
    for &j in &slots[idx] {
        let s = &tup.row()[j];
        inv.push(if s.is_distinguished() { 1 } else { 0 });
        inv.push(occurs[s]);
    }
    inv
}

/// Encode the template under a fixed tuple ordering, renaming
/// nondistinguished symbols by first occurrence (per attribute), visiting
/// each row in the canonical slot order.
fn encode(t: &Template, order: &[usize], labels: &KeyLabels<'_>, slots: &[Vec<usize>]) -> Vec<u64> {
    let mut rename: HashMap<Symbol, u64> = HashMap::new();
    let mut next: HashMap<u32, u64> = HashMap::new(); // per-attribute counter
    let mut out = Vec::with_capacity(order.len() * 8);
    for &i in order {
        let tup = &t.tuples()[i];
        out.push(u64::MAX); // tuple separator
        let label = (labels.rel_label)(tup.rel());
        out.push((label >> 64) as u64);
        out.push(label as u64);
        for &j in &slots[i] {
            let s = &tup.row()[j];
            if s.is_distinguished() {
                out.push(0);
            } else {
                let code = *rename.entry(*s).or_insert_with(|| {
                    let c = next.entry(s.attr().0).or_insert(0);
                    *c += 1;
                    *c
                });
                out.push(code);
            }
        }
    }
    out
}

/// Compute the canonical key with the default (within-catalog) labels.
pub fn canonical_key(t: &Template) -> CanonKey {
    canonical_key_with(
        t,
        &KeyLabels {
            rel_label: &|r| r.0 as u128,
            attr_rank: &|a| a.0 as u64,
        },
    )
}

/// Compute the canonical key under caller-chosen labels (see module docs
/// and [`KeyLabels`]). Two templates get equal keys iff they are
/// isomorphic *as labeled* — with content-addressed labels, that means
/// isomorphic template content regardless of catalog declaration order.
///
/// The inexact fallback (permutation budget exceeded) breaks ties by the
/// template's internal tuple order, which *is* catalog-relative; inexact
/// keys under content labels may therefore differ across catalogs, which
/// only costs downstream cache hits, never correctness.
pub fn canonical_key_with(t: &Template, labels: &KeyLabels<'_>) -> CanonKey {
    let n = t.len();
    // Occurrence count of each symbol across the whole template.
    let mut occurs: HashMap<Symbol, u64> = HashMap::new();
    for s in t.symbols() {
        *occurs.entry(s).or_insert(0) += 1;
    }
    let slots = slot_orders(t, labels);
    // Group indices by invariant.
    let mut keyed: Vec<(Vec<u64>, usize)> = (0..n)
        .map(|i| (tuple_invariant(t, i, labels, &slots, &occurs), i))
        .collect();
    keyed.sort();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_invs: Vec<Vec<u64>> = Vec::new();
    for (inv, i) in keyed {
        if group_invs.last() == Some(&inv) {
            groups.last_mut().expect("nonempty").push(i);
        } else {
            group_invs.push(inv);
            groups.push(vec![i]);
        }
    }

    // Permutation budget: product of group factorials.
    let mut budget: usize = 1;
    for g in &groups {
        budget = budget.saturating_mul(factorial(g.len()));
        if budget > PERM_BUDGET {
            break;
        }
    }

    if budget > PERM_BUDGET {
        // Inexact fallback: encode with the invariant-sorted order.
        let order: Vec<usize> = groups.iter().flatten().copied().collect();
        let mut words = encode(t, &order, labels, &slots);
        words.push(u64::MAX - 1); // marker: inexact keys never equal exact ones
        return CanonKey {
            words,
            exact: false,
        };
    }

    // Minimize over within-group permutations.
    let mut best: Option<Vec<u64>> = None;
    permute_groups(&groups, &mut |full_order| {
        let enc = encode(t, full_order, labels, &slots);
        if best.as_ref().is_none_or(|b| enc < *b) {
            best = Some(enc);
        }
        ControlFlow::Continue(())
    });
    CanonKey {
        words: best.expect("at least one ordering"),
        exact: true,
    }
}

fn factorial(n: usize) -> usize {
    (2..=n).product::<usize>().max(1)
}

/// Enumerate all tuple orderings that permute only within groups.
fn permute_groups<F>(groups: &[Vec<usize>], f: &mut F)
where
    F: FnMut(&[usize]) -> ControlFlow<()>,
{
    fn groups_rec<F>(
        groups: &[Vec<usize>],
        gi: usize,
        prefix: &mut Vec<usize>,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[usize]) -> ControlFlow<()>,
    {
        if gi == groups.len() {
            return f(prefix);
        }
        let mut pool = groups[gi].clone();
        perm_rec(groups, gi, &mut pool, prefix, f)
    }

    fn perm_rec<F>(
        groups: &[Vec<usize>],
        gi: usize,
        pool: &mut Vec<usize>,
        prefix: &mut Vec<usize>,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&[usize]) -> ControlFlow<()>,
    {
        if pool.is_empty() {
            return groups_rec(groups, gi + 1, prefix, f);
        }
        for k in 0..pool.len() {
            let item = pool.remove(k);
            prefix.push(item);
            let flow = perm_rec(groups, gi, pool, prefix, f);
            prefix.pop();
            pool.insert(k, item);
            if flow.is_break() {
                return ControlFlow::Break(());
            }
        }
        ControlFlow::Continue(())
    }

    let _ = groups_rec(groups, 0, &mut Vec::new(), f);
}

/// Decide isomorphism: equal tuple counts, equal per-attribute symbol
/// counts, and a bijective structure match.
pub fn is_isomorphic(a: &Template, b: &Template) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let ka = canonical_key(a);
    let kb = canonical_key(b);
    if ka.exact && kb.exact {
        return ka == kb;
    }
    // Fallback: bijective backtracking via injective hom + counting.
    injective_match(a, b)
}

/// Is there an injective valuation mapping `a` bijectively onto `b`?
fn injective_match(a: &Template, b: &Template) -> bool {
    // Symbol cardinalities must match per attribute.
    let count = |t: &Template| {
        let mut m: HashMap<u32, std::collections::HashSet<Symbol>> = HashMap::new();
        for s in t.symbols().filter(|s| !s.is_distinguished()) {
            m.entry(s.attr().0).or_default().insert(s);
        }
        let mut v: Vec<(u32, usize)> = m.into_iter().map(|(k, s)| (k, s.len())).collect();
        v.sort();
        v
    };
    if count(a) != count(b) {
        return false;
    }

    fn search(
        a: &Template,
        b: &Template,
        i: usize,
        used: &mut Vec<bool>,
        map: &mut HashMap<Symbol, Symbol>,
        rev: &mut HashMap<Symbol, Symbol>,
    ) -> bool {
        if i == a.len() {
            return true;
        }
        let at = &a.tuples()[i];
        'target: for j in 0..b.len() {
            if used[j] || b.tuples()[j].rel() != at.rel() {
                continue;
            }
            let bt = &b.tuples()[j];
            let mut pushed: Vec<Symbol> = Vec::new();
            for (x, y) in at.row().iter().zip(bt.row()) {
                let ok = match (x.is_distinguished(), y.is_distinguished()) {
                    (true, true) => true,
                    (false, false) => match (map.get(x), rev.get(y)) {
                        (Some(m), _) if m != y => false,
                        (_, Some(r)) if r != x => false,
                        (Some(_), Some(_)) => true,
                        _ => {
                            map.insert(*x, *y);
                            rev.insert(*y, *x);
                            pushed.push(*x);
                            true
                        }
                    },
                    _ => false, // bijections preserve distinguishedness
                };
                if !ok {
                    for p in pushed {
                        let img = map.remove(&p).expect("pushed binding");
                        rev.remove(&img);
                    }
                    continue 'target;
                }
            }
            used[j] = true;
            if search(a, b, i + 1, used, map, rev) {
                return true;
            }
            used[j] = false;
            for p in pushed {
                let img = map.remove(&p).expect("pushed binding");
                rev.remove(&img);
            }
        }
        false
    }

    search(
        a,
        b,
        0,
        &mut vec![false; b.len()],
        &mut HashMap::new(),
        &mut HashMap::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TaggedTuple;
    use viewcap_base::{Catalog, RelId};

    fn setup() -> (Catalog, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        (cat, r)
    }

    fn t_with_c(cat: &Catalog, r: RelId, c_ord: u32, a_ord: u32) -> Template {
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, c_ord),
                ],
                cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, a_ord),
                    Symbol::distinguished(b),
                    Symbol::distinguished(c),
                ],
                cat,
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn renamings_share_a_key() {
        let (cat, r) = setup();
        let t1 = t_with_c(&cat, r, 1, 2);
        let t2 = t_with_c(&cat, r, 7, 5);
        assert_eq!(canonical_key(&t1), canonical_key(&t2));
        assert!(is_isomorphic(&t1, &t2));
    }

    #[test]
    fn different_structures_differ() {
        let (cat, r) = setup();
        let t1 = t_with_c(&cat, r, 1, 2);
        let atom = Template::atom(r, &cat);
        assert_ne!(canonical_key(&t1), canonical_key(&atom));
        assert!(!is_isomorphic(&t1, &atom));
    }

    #[test]
    fn key_is_order_independent() {
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        // Two tuples with symmetric roles; construction order must not
        // matter (Template sorts, but symbol names differ).
        let mk = |o1: u32, o2: u32| {
            Template::new(vec![
                TaggedTuple::new(
                    r,
                    vec![
                        Symbol::distinguished(a),
                        Symbol::new(b, o1),
                        Symbol::new(c, o1),
                    ],
                    &cat,
                )
                .unwrap(),
                TaggedTuple::new(
                    r,
                    vec![
                        Symbol::distinguished(a),
                        Symbol::new(b, o2),
                        Symbol::new(c, o2),
                    ],
                    &cat,
                )
                .unwrap(),
            ])
            .unwrap()
        };
        assert_eq!(canonical_key(&mk(1, 2)), canonical_key(&mk(9, 3)));
    }

    #[test]
    fn oversized_symmetric_templates_use_the_fallback_path() {
        // Ten interchangeable tuples: the permutation budget (8!) is
        // exceeded, keys go inexact, and isomorphism falls back to the
        // bijective search — which must still give the right answers.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mk = |shift: u32| {
            Template::new(
                (0..10)
                    .map(|i| {
                        TaggedTuple::new(
                            r,
                            vec![
                                Symbol::distinguished(a),
                                Symbol::new(b, shift + 2 * i),
                                Symbol::new(c, shift + 2 * i + 1),
                            ],
                            &cat,
                        )
                        .unwrap()
                    })
                    .collect(),
            )
            .unwrap()
        };
        let t1 = mk(1);
        let t2 = mk(101);
        assert!(!canonical_key(&t1).is_exact());
        assert!(is_isomorphic(&t1, &t2));
        // Breaking the symmetry in one tuple breaks the isomorphism.
        let mut tuples: Vec<TaggedTuple> = t1.tuples().to_vec();
        tuples[0] = TaggedTuple::new(
            r,
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, 99),
            ],
            &cat,
        )
        .unwrap();
        let broken = Template::new(tuples).unwrap();
        assert!(!is_isomorphic(&t1, &broken));
    }

    #[test]
    fn labeled_keys_are_declaration_order_independent() {
        // The same template content built in two catalogs with opposite
        // declaration orders: content-labeled keys agree even though every
        // raw id (and the scheme-sorted row order) differs.
        let build = |flip: bool| {
            let mut cat = Catalog::new();
            if flip {
                cat.relation("S", &["C", "B"]).unwrap();
                cat.relation("R", &["B", "A"]).unwrap();
            } else {
                cat.relation("R", &["A", "B"]).unwrap();
                cat.relation("S", &["B", "C"]).unwrap();
            }
            let r = cat.lookup_rel("R").unwrap();
            let s = cat.lookup_rel("S").unwrap();
            let a = cat.lookup_attr("A").unwrap();
            let b = cat.lookup_attr("B").unwrap();
            let c = cat.lookup_attr("C").unwrap();
            // Scheme order is AttrId order, which flips with interning.
            let row = |x: Symbol, y: Symbol| {
                let mut row = vec![x, y];
                row.sort_by_key(|s| s.attr());
                row
            };
            let t = Template::new(vec![
                TaggedTuple::new(r, row(Symbol::distinguished(a), Symbol::new(b, 1)), &cat)
                    .unwrap(),
                TaggedTuple::new(s, row(Symbol::new(b, 1), Symbol::distinguished(c)), &cat)
                    .unwrap(),
            ])
            .unwrap();
            (cat, t)
        };
        let (cat1, t1) = build(false);
        let (cat2, t2) = build(true);
        let content_key = |cat: &Catalog, t: &Template| {
            let digests: Vec<u128> = cat
                .relations()
                .map(|r| cat.rel_digest(r).as_u128())
                .collect();
            let ranks = cat.attr_name_ranks();
            canonical_key_with(
                t,
                &KeyLabels {
                    rel_label: &|r| digests[r.index()],
                    attr_rank: &|a| ranks[a.index()] as u64,
                },
            )
        };
        assert_eq!(content_key(&cat1, &t1), content_key(&cat2, &t2));
    }

    #[test]
    fn shared_symbol_structure_distinguishes() {
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        // Rows share the b-symbol vs rows with distinct b-symbols.
        let shared = Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::new(b, 1),
                    Symbol::new(c, 1),
                ],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::new(b, 1),
                    Symbol::new(c, 2),
                ],
                &cat,
            )
            .unwrap(),
        ])
        .unwrap();
        let unshared = Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::new(b, 1),
                    Symbol::new(c, 1),
                ],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::new(b, 2),
                    Symbol::new(c, 2),
                ],
                &cat,
            )
            .unwrap(),
        ])
        .unwrap();
        assert!(!is_isomorphic(&shared, &unshared));
        assert_ne!(canonical_key(&shared), canonical_key(&unshared));
    }
}
