//! Connected components of a template (paper, Section 3.3).
//!
//! Two tagged tuples are *linked* (`L_T`) when they share a nondistinguished
//! symbol; *connectedness* (`C_T`) is the reflexive-transitive closure. The
//! equivalence classes — *connected components* — are the unit at which
//! essential tagged tuples operate (Theorems 3.3.5–3.3.9).

use crate::template::Template;
use std::collections::HashMap;
use viewcap_base::Symbol;

/// The connected components of `T`, each a sorted list of tuple indices;
/// components are ordered by their smallest member.
pub fn connected_components(t: &Template) -> Vec<Vec<usize>> {
    let n = t.len();
    let mut uf = UnionFind::new(n);
    let mut first_seen: HashMap<Symbol, usize> = HashMap::new();
    for (i, tup) in t.tuples().iter().enumerate() {
        for s in tup.row().iter().filter(|s| !s.is_distinguished()) {
            match first_seen.entry(*s) {
                std::collections::hash_map::Entry::Occupied(e) => uf.union(*e.get(), i),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in &mut out {
        g.sort_unstable();
    }
    out.sort_by_key(|g| g[0]);
    out
}

/// Are two tuples linked (share a nondistinguished symbol)?
pub fn linked(t: &Template, i: usize, j: usize) -> bool {
    let a = t.tuples()[i].row();
    let b = t.tuples()[j].row();
    a.iter()
        .filter(|s| !s.is_distinguished())
        .any(|s| b.contains(s))
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TaggedTuple;
    use viewcap_base::{Catalog, Symbol};

    #[test]
    fn paper_example_3_2_1_components() {
        // T of Example 3.2.1: τ₁=(0_A,b₁)@η₁, τ₂=(a₁,b₁,0_C)@η₂,
        // τ₃=(a₂,0_B,0_C)@η₂. Components: {τ₁,τ₂} (via b₁) and {τ₃}.
        let mut cat = Catalog::new();
        let n1 = cat.relation("eta1", &["A", "B"]).unwrap();
        let n2 = cat.relation("eta2", &["A", "B", "C"]).unwrap();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let t1 =
            TaggedTuple::new(n1, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap();
        let t2 = TaggedTuple::new(
            n2,
            vec![
                Symbol::new(a, 1),
                Symbol::new(b, 1),
                Symbol::distinguished(c),
            ],
            &cat,
        )
        .unwrap();
        let t3 = TaggedTuple::new(
            n2,
            vec![
                Symbol::new(a, 2),
                Symbol::distinguished(b),
                Symbol::distinguished(c),
            ],
            &cat,
        )
        .unwrap();
        let t = Template::new(vec![t1.clone(), t2.clone(), t3.clone()]).unwrap();
        let comps = connected_components(&t);
        assert_eq!(comps.len(), 2);
        let i1 = t.index_of(&t1).unwrap();
        let i2 = t.index_of(&t2).unwrap();
        let i3 = t.index_of(&t3).unwrap();
        assert!(comps
            .iter()
            .any(|g| { g.len() == 2 && g.contains(&i1) && g.contains(&i2) }));
        assert!(comps.iter().any(|g| g == &vec![i3]));
        assert!(linked(&t, i1, i2));
        assert!(!linked(&t, i1, i3));
    }

    #[test]
    fn all_distinguished_tuples_are_isolated() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A"]).unwrap();
        let s = cat.relation("S", &["A"]).unwrap();
        let t = Template::new(vec![
            TaggedTuple::all_distinguished(r, &cat),
            TaggedTuple::all_distinguished(s, &cat),
        ])
        .unwrap();
        assert_eq!(connected_components(&t).len(), 2);
    }

    #[test]
    fn transitive_linking_merges() {
        // τ₁ ~ τ₂ via b₁; τ₂ ~ τ₃ via a shared a-symbol ⇒ one component.
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        let mk = |ao: u32, bo: u32| {
            TaggedTuple::new(r, vec![Symbol::new(a, ao), Symbol::new(b, bo)], &cat).unwrap()
        };
        let anchor = TaggedTuple::new(
            r,
            vec![Symbol::distinguished(a), Symbol::distinguished(b)],
            &cat,
        )
        .unwrap();
        let t = Template::new(vec![mk(1, 1), mk(2, 1), mk(2, 2), anchor]).unwrap();
        let comps = connected_components(&t);
        assert_eq!(comps.len(), 2); // the chain of three + the anchor
        assert!(comps.iter().any(|g| g.len() == 3));
    }
}
