//! Algorithm 2.1.1: expression → template.
//!
//! The template `T_E` built here realizes the same expression mapping as
//! `E` (Proposition 2.1.2), which the test suite verifies both on the
//! paper's examples and on randomized instantiations.
//!
//! The construction (with a single shared symbol generator, which makes the
//! "pairwise disjoint nondistinguished symbols" side condition of clause
//! (iii) automatic):
//!
//! * `E = η`: one tagged tuple, distinguished exactly on `R(η)`;
//! * `E = π_X(E₁)`: replace each `0_A`, `A ∈ TRS(E₁) − X`, by one fresh
//!   nondistinguished symbol shared across all its occurrences;
//! * `E = E₁ ⋈ ⋯ ⋈ Eₙ`: the union of the operand templates.

use crate::template::{TaggedTuple, Template};
use std::collections::HashMap;
use viewcap_base::{Catalog, Symbol, SymbolGen};
use viewcap_expr::Expr;

/// Convert an expression to an equivalent template (Algorithm 2.1.1).
pub fn template_of_expr(e: &Expr, catalog: &Catalog) -> Template {
    let mut gen = SymbolGen::new();
    let tuples = build(e, catalog, &mut gen);
    Template::new(tuples).expect("Algorithm 2.1.1 yields a valid template")
}

fn build(e: &Expr, catalog: &Catalog, gen: &mut SymbolGen) -> Vec<TaggedTuple> {
    match e {
        Expr::Rel(r) => vec![TaggedTuple::all_distinguished(*r, catalog)],
        Expr::Project(child, x) => {
            let tuples = build(child, catalog, gen);
            // One fresh symbol per hidden attribute, shared by all of that
            // attribute's distinguished occurrences.
            let mut fresh: HashMap<u32, Symbol> = HashMap::new();
            tuples
                .into_iter()
                .map(|t| {
                    t.map_symbols(|s| {
                        if s.is_distinguished() && !x.contains(s.attr()) {
                            *fresh
                                .entry(s.attr().0)
                                .or_insert_with(|| gen.fresh(s.attr()))
                        } else {
                            s
                        }
                    })
                })
                .collect()
        }
        Expr::Join(es) => es.iter().flat_map(|e| build(e, catalog, gen)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_template;
    use crate::hom::equivalent_templates;
    use crate::ops::{join_templates, project_template};
    use viewcap_base::{Instantiation, Scheme};
    use viewcap_expr::parse_expr;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B"]).unwrap();
        cat.relation("S", &["B", "C"]).unwrap();
        cat
    }

    fn sample_alpha(cat: &Catalog) -> Instantiation {
        let r = cat.lookup_rel("R").unwrap();
        let s = cat.lookup_rel("S").unwrap();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(
                r,
                [
                    vec![Symbol::new(a, 1), Symbol::new(b, 1)],
                    vec![Symbol::new(a, 2), Symbol::new(b, 1)],
                    vec![Symbol::new(a, 3), Symbol::new(b, 2)],
                ],
                cat,
            )
            .unwrap();
        alpha
            .insert_rows(
                s,
                [
                    vec![Symbol::new(b, 1), Symbol::new(c, 5)],
                    vec![Symbol::new(b, 2), Symbol::new(c, 6)],
                ],
                cat,
            )
            .unwrap();
        alpha
    }

    #[test]
    fn atom_case() {
        let cat = setup();
        let r = cat.lookup_rel("R").unwrap();
        let t = template_of_expr(&Expr::rel(r), &cat);
        assert_eq!(t, Template::atom(r, &cat));
    }

    #[test]
    fn matches_template_level_operations() {
        let cat = setup();
        let e = parse_expr("pi{A,C}(R * S)", &cat).unwrap();
        let t = template_of_expr(&e, &cat);

        let r = cat.lookup_rel("R").unwrap();
        let s = cat.lookup_rel("S").unwrap();
        let [a, c] = ["A", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let manual = project_template(
            &join_templates(&Template::atom(r, &cat), &Template::atom(s, &cat)),
            &Scheme::new([a, c]).unwrap(),
        )
        .unwrap();
        assert!(equivalent_templates(&t, &manual));
    }

    #[test]
    fn proposition_2_1_2_semantic_agreement() {
        // T_E(α) = E(α) across a family of expressions.
        let cat = setup();
        let alpha = sample_alpha(&cat);
        for src in [
            "R",
            "S",
            "R * S",
            "pi{A}(R)",
            "pi{B}(R) * pi{B}(S)",
            "pi{A,C}(R * S)",
            "pi{A}(pi{A,B}(R * S)) * pi{C}(S)",
            "R * R",
            "pi{B,C}(S) * pi{A,B}(R * S)",
        ] {
            let e = parse_expr(src, &cat).unwrap();
            let t = template_of_expr(&e, &cat);
            assert_eq!(
                eval_template(&t, &alpha, &cat),
                e.eval(&alpha, &cat),
                "mismatch for {src}"
            );
            assert_eq!(t.trs(), e.trs(&cat), "TRS mismatch for {src}");
            assert_eq!(t.rel_names(), e.rel_names(), "RN mismatch for {src}");
        }
    }

    #[test]
    fn join_of_identical_atoms_merges() {
        let cat = setup();
        let e = parse_expr("R * R", &cat).unwrap();
        let t = template_of_expr(&e, &cat);
        // Both operands produce the same all-distinguished tuple.
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn projection_after_join_shares_fresh_symbols() {
        let cat = setup();
        let e = parse_expr("pi{A,C}(R * S)", &cat).unwrap();
        let t = template_of_expr(&e, &cat);
        assert_eq!(t.len(), 2);
        // The hidden B column must hold the SAME fresh symbol in both rows.
        let b = cat.lookup_attr("B").unwrap();
        let syms: Vec<Symbol> = t.tuples().iter().filter_map(|x| x.symbol_at(b)).collect();
        assert_eq!(syms.len(), 2);
        assert_eq!(syms[0], syms[1]);
        assert!(!syms[0].is_distinguished());
    }

    #[test]
    fn separate_branches_get_disjoint_symbols() {
        let cat = setup();
        // pi{B}(R) * pi{B}(S): each branch hides its own attribute; the
        // hidden symbols must be distinct.
        let e = parse_expr("pi{B}(R) * pi{B}(S)", &cat).unwrap();
        let t = template_of_expr(&e, &cat);
        assert_eq!(t.len(), 2);
        let nd = t.nondistinguished_symbols();
        assert_eq!(nd.len(), 2);
    }
}
