//! Template substitution `T → β` (paper, Section 2.2) with block
//! provenance.
//!
//! Given a template `T` and a *template assignment* `β` (mapping each
//! relation name `η` to a template of TRS `R(η)`), the substitution
//! replaces every tagged tuple `(t, η) ∈ T` by a copy of `β(η)` in which
//!
//! * each distinguished symbol `0_A` of `β(η)` becomes `t(A)`, and
//! * each nondistinguished symbol is *marked* — renamed to a fresh symbol
//!   peculiar to the pair `((t, η), symbol)` — eliminating cross-talk
//!   between copies.
//!
//! The copy of `β(η)` contributed by `(t, η)` is the *`⟨(t,η), β(η)⟩`
//! block*; Section 3's essential-tuple machinery is defined in terms of
//! these blocks, so [`Substitution`] records the full provenance.
//!
//! The semantic content is **Theorem 2.2.3**: `[T → β](α) = T(β → α)`,
//! where `β → α` is the instantiation assigning `[β(η)](α)` to each
//! assigned name ([`apply_assignment`]). The test suite checks this
//! identity on fixed and randomized inputs.

use crate::error::TemplateError;
use crate::eval::eval_template;
use crate::template::{TaggedTuple, Template};
use std::collections::{BTreeMap, HashMap};
use viewcap_base::{Catalog, Instantiation, RelId, SymbolGen};

/// A template assignment `β`: relation names to templates of their type.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    map: BTreeMap<RelId, Template>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign `β(rel) = template`, enforcing `TRS(template) = R(rel)`.
    pub fn set(
        &mut self,
        rel: RelId,
        template: Template,
        catalog: &Catalog,
    ) -> Result<(), TemplateError> {
        let expected = catalog.scheme_of(rel).clone();
        let got = template.trs();
        if got != expected {
            return Err(TemplateError::AssignmentTrsMismatch { rel, expected, got });
        }
        self.map.insert(rel, template);
        Ok(())
    }

    /// Look up `β(rel)`.
    pub fn get(&self, rel: RelId) -> Option<&Template> {
        self.map.get(&rel)
    }

    /// The explicitly assigned names.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.map.keys().copied()
    }
}

/// The result of a substitution `T → β`, with block provenance.
#[derive(Clone, Debug)]
pub struct Substitution {
    /// The substituted template.
    pub result: Template,
    /// `blocks[i]` describes the `⟨τᵢ, β(ηᵢ)⟩` block: pairs
    /// `(inner_tuple_index, result_tuple_index)` for each tuple of `β(ηᵢ)`.
    ///
    /// Distinct blocks may share result tuples when marking happens to be
    /// vacuous (a β-tuple with no nondistinguished symbols whose
    /// distinguished entries map to identical rows) — the paper's union of
    /// blocks is a set union.
    pub blocks: Vec<Vec<(usize, usize)>>,
}

impl Substitution {
    /// The result-tuple indices forming source tuple `i`'s block.
    pub fn block_result_indices(&self, source: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.blocks[source].iter().map(|&(_, r)| r).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The source tuples whose blocks contain a given result tuple.
    pub fn blocks_containing(&self, result_idx: usize) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&i| self.blocks[i].iter().any(|&(_, r)| r == result_idx))
            .collect()
    }

    /// **Lemma 2.4.7** — restrict the construction to the source tuples hit
    /// by a homomorphic image.
    ///
    /// Given a homomorphism `f : Q → result` (as its tuple map into
    /// `result`), return the indices of the source tuples `τ` whose block
    /// contains some `f(ρ)`. The paper proves that the subtemplate `T_f` on
    /// these indices still satisfies `Q ≡ T_f → β`; this is the engine
    /// behind the `#(T) ≤ #(Q)` bound of Lemma 2.4.8 and hence behind every
    /// bounded decision procedure in the workspace.
    pub fn restrict_sources(&self, image_tuple_map: &[usize]) -> Vec<usize> {
        let image: std::collections::BTreeSet<usize> = image_tuple_map.iter().copied().collect();
        let mut keep: Vec<usize> = (0..self.blocks.len())
            .filter(|&i| self.blocks[i].iter().any(|&(_, r)| image.contains(&r)))
            .collect();
        keep.sort_unstable();
        keep
    }
}

/// Perform the substitution `T → β`.
///
/// Every relation name of `T` must be assigned.
pub fn substitute(
    t: &Template,
    beta: &Assignment,
    _catalog: &Catalog,
) -> Result<Substitution, TemplateError> {
    // Fresh symbols must avoid T and every assigned template in use.
    let mut gen: SymbolGen = t.symbol_gen();
    for rel in t.rel_names() {
        let inner = beta.get(rel).ok_or(TemplateError::MissingAssignment(rel))?;
        gen.reserve_all(inner.symbols());
    }

    // The marking function: (source tuple, symbol) → fresh symbol.
    let mut marked: HashMap<(usize, viewcap_base::Symbol), viewcap_base::Symbol> = HashMap::new();

    let mut raw: Vec<(usize, usize, TaggedTuple)> = Vec::new();
    for (i, tau) in t.tuples().iter().enumerate() {
        let inner = beta
            .get(tau.rel())
            .expect("presence checked in reservation pass");
        for (j, rho) in inner.tuples().iter().enumerate() {
            let mapped = rho.map_symbols(|s| {
                if s.is_distinguished() {
                    // TRS(β(η)) = R(η), so τ's row covers s.attr().
                    tau.symbol_at(s.attr())
                        .expect("assignment TRS equals the tag's type")
                } else {
                    *marked.entry((i, s)).or_insert_with(|| gen.fresh(s.attr()))
                }
            });
            raw.push((i, j, mapped));
        }
    }

    let result = Template::new(raw.iter().map(|(_, _, t)| t.clone()).collect())?;
    let mut blocks = vec![Vec::new(); t.len()];
    for (i, j, tuple) in &raw {
        let idx = result
            .index_of(tuple)
            .expect("every raw tuple survives into the canonical set");
        blocks[*i].push((*j, idx));
    }
    Ok(Substitution { result, blocks })
}

/// The instantiation `β → α` of Theorem 2.2.3:
/// `[β → α](η) = [β(η)](α)` for assigned names, `α(η)` otherwise.
pub fn apply_assignment(
    beta: &Assignment,
    alpha: &Instantiation,
    catalog: &Catalog,
) -> Instantiation {
    let mut out = alpha.clone();
    for rel in beta.rels() {
        let tpl = beta.get(rel).expect("iterating assigned names");
        let value = eval_template(tpl, alpha, catalog);
        out.set(rel, value, catalog)
            .expect("assignment TRS equals the name's type");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::equivalent_templates;
    use crate::ops::{join_templates, project_template};
    use viewcap_base::{Scheme, Symbol};

    /// A small world: underlying schema {R}, view names η₁:{A,B}, η₂:{B,C}.
    fn setup() -> (Catalog, RelId, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let n1 = cat.fresh_relation("eta1", ab);
        let n2 = cat.fresh_relation("eta2", bc);
        (cat, r, n1, n2)
    }

    fn pi(cat: &Catalog, r: RelId, attrs: &[&str]) -> Template {
        let x = Scheme::collect(attrs.iter().map(|n| cat.lookup_attr(n).unwrap()));
        project_template(&Template::atom(r, cat), &x).unwrap()
    }

    #[test]
    fn assignment_enforces_types() {
        let (cat, r, n1, _) = setup();
        let mut beta = Assignment::new();
        // π_AB(R) has TRS {A,B} = R(η₁): accepted.
        assert!(beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).is_ok());
        // π_BC(R) has the wrong TRS for η₁: rejected.
        assert!(beta.set(n1, pi(&cat, r, &["B", "C"]), &cat).is_err());
    }

    #[test]
    fn substitution_requires_full_assignment() {
        let (cat, r, n1, n2) = setup();
        let t = join_templates(&Template::atom(n1, &cat), &Template::atom(n2, &cat));
        let mut beta = Assignment::new();
        beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).unwrap();
        assert!(matches!(
            substitute(&t, &beta, &cat),
            Err(TemplateError::MissingAssignment(x)) if x == n2
        ));
    }

    #[test]
    fn substitution_into_atoms_reproduces_the_assigned_template() {
        // {(0_AB, η₁)} → β is just (a marked copy of) β(η₁).
        let (cat, r, n1, _) = setup();
        let t = Template::atom(n1, &cat);
        let mut beta = Assignment::new();
        beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).unwrap();
        let sub = substitute(&t, &beta, &cat).unwrap();
        assert!(equivalent_templates(&sub.result, &pi(&cat, r, &["A", "B"])));
        assert_eq!(sub.blocks.len(), 1);
        assert_eq!(sub.blocks[0].len(), 1);
    }

    #[test]
    fn theorem_2_2_3_on_a_concrete_world() {
        // T = η₁ ⋈ η₂ over the view schema; β assigns the projections of R.
        let (cat, r, n1, n2) = setup();
        let t = join_templates(&Template::atom(n1, &cat), &Template::atom(n2, &cat));
        let mut beta = Assignment::new();
        beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).unwrap();
        beta.set(n2, pi(&cat, r, &["B", "C"]), &cat).unwrap();
        let sub = substitute(&t, &beta, &cat).unwrap();

        // α with a couple of rows.
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(
                r,
                [
                    vec![Symbol::new(a, 1), Symbol::new(b, 1), Symbol::new(c, 1)],
                    vec![Symbol::new(a, 2), Symbol::new(b, 1), Symbol::new(c, 2)],
                ],
                &cat,
            )
            .unwrap();

        let lhs = eval_template(&sub.result, &alpha, &cat);
        let beta_alpha = apply_assignment(&beta, &alpha, &cat);
        let rhs = eval_template(&t, &beta_alpha, &cat);
        assert_eq!(lhs, rhs);
        // And the substituted template mentions only the underlying schema.
        assert_eq!(
            sub.result.rel_names().into_iter().collect::<Vec<_>>(),
            vec![r]
        );
    }

    #[test]
    fn marking_keeps_blocks_crosstalk_free() {
        // β(η₁) has a private symbol; two source tuples of tag η₁ must get
        // DIFFERENT marked copies of it.
        let (cat, r, n1, _) = setup();
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        // T: two tuples tagged η₁ sharing nothing: (0_A, b1), (a1, 0_B).
        let t = Template::new(vec![
            TaggedTuple::new(n1, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap(),
            TaggedTuple::new(n1, vec![Symbol::new(a, 1), Symbol::distinguished(b)], &cat).unwrap(),
        ])
        .unwrap();
        let mut beta = Assignment::new();
        beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).unwrap();
        let sub = substitute(&t, &beta, &cat).unwrap();
        // Each block has one tuple; their hidden C-symbols must differ.
        let c = cat.lookup_attr("C").unwrap();
        let block0 = sub.block_result_indices(0);
        let block1 = sub.block_result_indices(1);
        assert_eq!((block0.len(), block1.len()), (1, 1));
        let s0 = sub.result.tuples()[block0[0]].symbol_at(c).unwrap();
        let s1 = sub.result.tuples()[block1[0]].symbol_at(c).unwrap();
        assert_ne!(s0, s1, "marked symbols must be peculiar to their block");
    }

    #[test]
    fn lemma_2_4_7_restriction_preserves_the_construction() {
        // Build a construction with slack: skeleton η₁ ⋈ η₁' where the
        // second atom is subsumed, substitute, and check the restricted
        // subtemplate still realizes the goal.
        use crate::hom::find_homomorphism;
        let (cat, r, n1, _) = setup();
        // Skeleton with two tuples of tag η₁: (0_A,0_B) and (a₉, 0_B) —
        // the second is redundant.
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        let skeleton = Template::new(vec![
            TaggedTuple::new(
                n1,
                vec![Symbol::distinguished(a), Symbol::distinguished(b)],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(n1, vec![Symbol::new(a, 9), Symbol::distinguished(b)], &cat).unwrap(),
        ])
        .unwrap();
        let mut beta = Assignment::new();
        beta.set(n1, pi(&cat, r, &["A", "B"]), &cat).unwrap();
        let sub = substitute(&skeleton, &beta, &cat).unwrap();

        // Goal: the mapping of π_AB(R); find a hom goal → result.
        let goal = pi(&cat, r, &["A", "B"]);
        assert!(equivalent_templates(&sub.result, &goal));
        let f = find_homomorphism(&goal, &sub.result).expect("equivalence gives a hom");

        // Restrict: the image touches at most #goal source tuples.
        let keep = sub.restrict_sources(&f.tuple_map);
        assert!(!keep.is_empty() && keep.len() <= goal.len());
        let restricted = skeleton.subtemplate(&keep).unwrap();
        let sub2 = substitute(&restricted, &beta, &cat).unwrap();
        assert!(
            equivalent_templates(&sub2.result, &goal),
            "Lemma 2.4.7: T_f → β must still realize Q"
        );
    }

    #[test]
    fn blocks_may_overlap_when_marking_is_vacuous() {
        // β(η₁) = atom template of a name with TRS {A,B} (no private
        // symbols); two identical-valued source tuples produce identical
        // block contents, which merge in the set union.
        let (mut cat, _r, n1, _) = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let base = cat.fresh_relation("base", ab);
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        let t = Template::new(vec![TaggedTuple::new(
            n1,
            vec![Symbol::distinguished(a), Symbol::distinguished(b)],
            &cat,
        )
        .unwrap()])
        .unwrap();
        let mut beta = Assignment::new();
        beta.set(n1, Template::atom(base, &cat), &cat).unwrap();
        let sub = substitute(&t, &beta, &cat).unwrap();
        assert_eq!(sub.result.len(), 1);
        assert_eq!(sub.blocks_containing(0), vec![0]);
    }
}
