//! Template reduction (Proposition 2.4.4).
//!
//! A template is *reduced* when no equivalent template has fewer tagged
//! tuples. By classical tableau/core theory, the minimal *subtemplate*
//! fixpoint reached by greedy single-tuple removal is the core and achieves
//! the global minimum:
//!
//! * if `T ≡ S` with `#S < #T`, composing homomorphisms `T → S → T` and
//!   iterating yields an idempotent endomorphism of `T` whose image is a
//!   proper equivalent subtemplate, so *some* single tuple is removable;
//! * hence greedy removal cannot get stuck above the minimum.
//!
//! Removal of tuple `τ` is sound exactly when `T − {τ}` keeps the TRS and
//! admits a homomorphism from `T` (Prop 2.4.1 gives the missing containment;
//! the subtemplate containment is automatic).

use crate::hom::find_homomorphism;
use crate::template::Template;

/// Compute the reduced (minimal equivalent) template — the core.
///
/// Deterministic: scans tuples in canonical order and restarts after each
/// removal, so equal inputs give identical outputs.
pub fn reduce(t: &Template) -> Template {
    let mut cur = t.clone();
    let trs = t.trs();
    'outer: loop {
        if cur.len() == 1 {
            return cur;
        }
        for i in 0..cur.len() {
            let Ok(cand) = cur.without(i) else { continue };
            if cand.trs() != trs {
                continue; // dropping τ would change the mapping's scheme
            }
            if find_homomorphism(&cur, &cand).is_some() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Is the template already reduced?
pub fn is_reduced(t: &Template) -> bool {
    reduce(t).len() == t.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::equivalent_templates;
    use crate::template::TaggedTuple;
    use viewcap_base::{Catalog, RelId, Symbol};

    fn setup() -> (Catalog, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        (cat, r)
    }

    #[test]
    fn atom_is_reduced() {
        let (cat, r) = setup();
        let t = Template::atom(r, &cat);
        assert!(is_reduced(&t));
        assert_eq!(reduce(&t), t);
    }

    #[test]
    fn duplicate_role_rows_collapse() {
        // (0,0,c1) and (0,0,c2) tagged R: the second row is subsumed.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mk = |cv: u32| {
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, cv),
                ],
                &cat,
            )
            .unwrap()
        };
        let t = Template::new(vec![mk(1), mk(2)]).unwrap();
        let red = reduce(&t);
        assert_eq!(red.len(), 1);
        assert!(equivalent_templates(&red, &t));
    }

    #[test]
    fn genuinely_joint_rows_survive() {
        // π_AB(R) ⋈ π_BC(R): neither row subsumes the other.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let t = Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, 1),
                ],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, 2),
                    Symbol::distinguished(b),
                    Symbol::distinguished(c),
                ],
                &cat,
            )
            .unwrap(),
        ])
        .unwrap();
        assert!(is_reduced(&t));
    }

    #[test]
    fn subsumed_row_with_join_structure() {
        // Row 3 = (a1, 0B, c3) is dominated by the other two rows together.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let rows = vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, 1),
                ],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, 2),
                    Symbol::distinguished(b),
                    Symbol::distinguished(c),
                ],
                &cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, 1),
                    Symbol::distinguished(b),
                    Symbol::new(c, 3),
                ],
                &cat,
            )
            .unwrap(),
        ];
        let t = Template::new(rows).unwrap();
        let red = reduce(&t);
        assert_eq!(red.len(), 2);
        assert!(equivalent_templates(&red, &t));
    }

    #[test]
    fn reduction_is_idempotent() {
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mk = |cv: u32| {
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, cv),
                ],
                &cat,
            )
            .unwrap()
        };
        let t = Template::new(vec![mk(1), mk(2), mk(3)]).unwrap();
        let once = reduce(&t);
        let twice = reduce(&once);
        assert_eq!(once, twice);
    }
}
