//! Paper-style rendering of templates.
//!
//! Reproduces the grid presentation of the paper's Figures 1 and 2: one row
//! per tagged tuple, one column per universe attribute, and a trailing tag
//! column `η: ABC`. Cells outside the tag's scheme print as `·` (the paper
//! fills them with throwaway fresh symbols; our sparse representation omits
//! them — see DESIGN.md §5.2).
//!
//! Symbols render as `0A` (distinguished) or `a1` (nondistinguished: the
//! attribute name lowercased plus the ordinal).

use crate::template::Template;
use viewcap_base::{Catalog, Scheme, Symbol};

/// Render a symbol (`0A` / `a1` style).
pub fn display_symbol(s: Symbol, catalog: &Catalog) -> String {
    let name = catalog.attr_name(s.attr());
    if s.is_distinguished() {
        format!("0{name}")
    } else {
        format!("{}{}", name.to_lowercase(), s.ord())
    }
}

/// Render a template as the paper's grid, with columns for every attribute
/// in `universe` (pass `catalog.universe()` for the full picture).
pub fn display_template(t: &Template, universe: &Scheme, catalog: &Catalog) -> String {
    let mut widths: Vec<usize> = universe
        .iter()
        .map(|a| catalog.attr_name(a).len() + 1)
        .collect();
    let mut grid: Vec<(Vec<String>, String)> = Vec::with_capacity(t.len());
    for tup in t.tuples() {
        let cells: Vec<String> = universe
            .iter()
            .map(|a| match tup.symbol_at(a) {
                Some(s) => display_symbol(s, catalog),
                None => "·".to_owned(),
            })
            .collect();
        for (w, c) in widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.chars().count());
        }
        let scheme_names: Vec<&str> = catalog
            .scheme_of(tup.rel())
            .iter()
            .map(|a| catalog.attr_name(a))
            .collect();
        let tag = format!("{}: {}", catalog.rel_name(tup.rel()), scheme_names.join(""));
        grid.push((cells, tag));
    }

    let mut out = String::new();
    // Header.
    for (a, w) in universe.iter().zip(&widths) {
        out.push_str(&format!("{:>w$}  ", catalog.attr_name(a), w = *w));
    }
    out.push_str("| tag\n");
    for (cells, tag) in grid {
        for (c, w) in cells.iter().zip(&widths) {
            let pad = w.saturating_sub(c.chars().count());
            out.push_str(&" ".repeat(pad));
            out.push_str(c);
            out.push_str("  ");
        }
        out.push_str("| ");
        out.push_str(&tag);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::project_template;
    use viewcap_base::Catalog;

    #[test]
    fn symbols_render_like_the_paper() {
        let mut cat = Catalog::new();
        let a = cat.attr("A");
        assert_eq!(display_symbol(Symbol::distinguished(a), &cat), "0A");
        assert_eq!(display_symbol(Symbol::new(a, 3), &cat), "a3");
    }

    #[test]
    fn grid_contains_every_cell_and_tag() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        cat.attr("C");
        let b = cat.lookup_attr("B").unwrap();
        let t = project_template(&Template::atom(r, &cat), &Scheme::new([b]).unwrap()).unwrap();
        let s = display_template(&t, &cat.universe(), &cat);
        assert!(s.contains("0B"));
        assert!(s.contains("a1"));
        assert!(s.contains("·")); // C column is out of scheme
        assert!(s.contains("R: AB"));
    }
}
