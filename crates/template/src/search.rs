//! The bounded search engine over normalized project–join expressions.
//!
//! This is the effective core behind the paper's decidability results
//! (Theorems 2.4.11 / 2.4.12). Instead of the paper's astronomically large
//! `J_k` enumeration of candidate templates, we enumerate *normalized
//! expressions* over a set of typed atoms together with their (reduced)
//! templates, composed bottom-up at the template level:
//!
//! ```text
//! part  ::=  atom  |  π_X(join)      with ∅ ≠ X ⊊ TRS(join)
//! join  ::=  a set of ≥ 1 parts     (equivalent parts are interchangeable,
//!                                    and P ⋈ P ≡ P, so sets — not
//!                                    multisets — suffice)
//! root  ::=  join
//! ```
//!
//! Completeness rests on the *syntactic subtemplate lemma* (DESIGN.md §5.3):
//! whenever the sought query is realizable at all, it is realizable by a
//! normalized expression whose atom count is bounded by the tuple count of
//! the (reduced) goal template. One corner is documented there and in
//! [`for_each_candidate`]: skeletons requiring a fully hidden operand whose
//! hidden columns overlap the live TRS may escape the normalized grammar;
//! the literal paper procedure (`viewcap-core::paper_procedure`) serves as a
//! cross-check on small instances.
//!
//! Candidates are deduplicated *semantically*: reduced templates are
//! bucketed by canonical key and confirmed by homomorphism, so each distinct
//! mapping is visited once, which keeps level sizes small.

use crate::canon::{canonical_key, CanonKey};
use crate::hom::equivalent_templates;
use crate::ops::{join_templates, project_template};
use crate::reduce::reduce;
use crate::template::Template;
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;
use viewcap_base::{Catalog, RelId, Scheme};

/// Resource limits for the bounded search.
#[derive(Clone, Debug)]
pub struct SearchLimits {
    /// Maximum number of deduplicated parts per atom-count level.
    pub max_level_parts: usize,
    /// Maximum number of join combinations examined.
    pub max_visits: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_level_parts: 20_000,
            max_visits: 2_000_000,
        }
    }
}

/// The search exceeded its limits before finishing.
///
/// Callers must treat this as "unknown", never as "no".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOverflow {
    /// Which limit tripped.
    pub context: &'static str,
}

impl fmt::Display for SearchOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bounded search overflow: {}", self.context)
    }
}

impl std::error::Error for SearchOverflow {}

/// Counters describing what a search did — for the benchmark harness and
/// the dedup-ablation study (EXPERIMENTS.md B8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Join combinations examined.
    pub combos: u64,
    /// Candidate roots handed to the callback.
    pub roots_visited: u64,
    /// Parts kept after deduplication.
    pub parts_kept: u64,
    /// Candidates dropped as semantically duplicate (parts/joins/roots).
    pub dedup_hits: u64,
}

/// Tuning knobs for the search (the defaults are what the decision
/// procedures use; the ablation bench flips them).
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Deduplicate candidates semantically (canonical-key buckets confirmed
    /// by homomorphism). Turning this off makes the search visit every
    /// structurally distinct normalized expression — exponentially more
    /// work, same answers.
    pub semantic_dedup: bool,
    /// Reduce intermediate templates. Turning this off keeps raw
    /// Algorithm 2.1.1 compositions (larger templates, more hom work
    /// downstream), same answers.
    pub reduce_intermediates: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            semantic_dedup: true,
            reduce_intermediates: true,
        }
    }
}

use viewcap_expr::Expr;

/// Callback type for the combination enumerator.
type ComboSink<'a> = &'a mut dyn FnMut(&[(usize, usize)]) -> Result<(), SearchOverflow>;

/// A deduplicated candidate: an expression and its reduced template.
struct Part {
    expr: Expr,
    tpl: Template,
}

/// Semantic dedup: canonical-key buckets confirmed by equivalence.
struct Dedup {
    enabled: bool,
    buckets: HashMap<CanonKey, Vec<Template>>,
}

impl Dedup {
    fn new(enabled: bool) -> Self {
        Dedup {
            enabled,
            buckets: HashMap::new(),
        }
    }

    /// Returns `true` when an equivalent template was already recorded.
    fn seen(&mut self, t: &Template, stats: &mut SearchStats) -> bool {
        if !self.enabled {
            return false;
        }
        let key = canonical_key(t);
        let bucket = self.buckets.entry(key).or_default();
        if bucket.iter().any(|u| equivalent_templates(u, t)) {
            stats.dedup_hits += 1;
            return true;
        }
        bucket.push(t.clone());
        false
    }
}

/// Enumerate deduplicated `(expression, reduced template)` candidates over
/// `atoms` with at most `max_atoms` atom occurrences.
///
/// * `target_trs`: if given, only roots with exactly this TRS reach the
///   callback (parts of other TRS still participate as subexpressions).
/// * Returns `Ok(true)` when the callback broke (found what it wanted),
///   `Ok(false)` when the space was exhausted.
pub fn for_each_candidate(
    catalog: &Catalog,
    atoms: &[RelId],
    max_atoms: usize,
    target_trs: Option<&Scheme>,
    limits: &SearchLimits,
    f: &mut dyn FnMut(&Expr, &Template) -> ControlFlow<()>,
) -> Result<bool, SearchOverflow> {
    for_each_candidate_with(
        catalog,
        atoms,
        max_atoms,
        target_trs,
        limits,
        SearchOptions::default(),
        f,
    )
    .map(|(broke, _)| broke)
}

/// [`for_each_candidate`] with explicit [`SearchOptions`], returning the
/// search counters alongside the outcome.
pub fn for_each_candidate_with(
    catalog: &Catalog,
    atoms: &[RelId],
    max_atoms: usize,
    target_trs: Option<&Scheme>,
    limits: &SearchLimits,
    options: SearchOptions,
    f: &mut dyn FnMut(&Expr, &Template) -> ControlFlow<()>,
) -> Result<(bool, SearchStats), SearchOverflow> {
    let mut parts: Vec<Vec<Part>> = (0..=max_atoms).map(|_| Vec::new()).collect();
    let mut part_dedup = Dedup::new(options.semantic_dedup);
    let mut root_dedup = Dedup::new(options.semantic_dedup);
    let mut join_dedup = Dedup::new(options.semantic_dedup);
    let mut stats = SearchStats::default();
    let maybe_reduce = |t: &Template| {
        if options.reduce_intermediates {
            reduce(t)
        } else {
            t.clone()
        }
    };
    let mut visits: u64 = 0;

    for k in 1..=max_atoms {
        // -------- new parts of size k (and, for k ≥ 2, new joins of size k)
        let mut new_parts: Vec<Part> = Vec::new();
        let mut new_joins: Vec<Part> = Vec::new();

        if k == 1 {
            for &r in atoms {
                let tpl = Template::atom(r, catalog);
                if !part_dedup.seen(&tpl, &mut stats) {
                    new_parts.push(Part {
                        expr: Expr::rel(r),
                        tpl: tpl.clone(),
                    });
                }
                // Proper projections of the atom.
                for x in tpl.trs().proper_nonempty_subsets() {
                    let p = maybe_reduce(&project_template(&tpl, &x).expect("X ⊆ TRS"));
                    if !part_dedup.seen(&p, &mut stats) {
                        new_parts.push(Part {
                            expr: Expr::project(Expr::rel(r), x, catalog).expect("X ⊆ TRS of atom"),
                            tpl: p,
                        });
                    }
                }
            }
        } else {
            // Join combinations: strictly increasing (size, index) choices
            // totalling k with ≥ 2 children.
            let mut stack: Vec<(usize, usize)> = Vec::new();
            let flow = combos(
                &parts,
                k,
                (1, 0),
                &mut stack,
                &mut visits,
                limits,
                &mut |chosen| {
                    let children: Vec<&Part> = chosen.iter().map(|&(s, i)| &parts[s][i]).collect();
                    let mut tpl = children[0].tpl.clone();
                    for c in &children[1..] {
                        tpl = join_templates(&tpl, &c.tpl);
                    }
                    let tpl = maybe_reduce(&tpl);
                    if join_dedup.seen(&tpl, &mut stats) {
                        return Ok(());
                    }
                    let expr = Expr::join(children.iter().map(|c| c.expr.clone()).collect())
                        .expect("≥ 2 children");
                    // Proper projections become parts of size k.
                    for x in tpl.trs().proper_nonempty_subsets() {
                        let p = maybe_reduce(&project_template(&tpl, &x).expect("X ⊆ TRS"));
                        if !part_dedup.seen(&p, &mut stats) {
                            new_parts.push(Part {
                                expr: Expr::project(expr.clone(), x, catalog)
                                    .expect("X ⊆ TRS of join"),
                                tpl: p,
                            });
                        }
                    }
                    new_joins.push(Part { expr, tpl });
                    Ok(())
                },
            )?;
            debug_assert!(flow.is_continue());
        }

        if parts[k].len() + new_parts.len() > limits.max_level_parts {
            return Err(SearchOverflow {
                context: "per-level part budget exhausted",
            });
        }

        // -------- visit roots of size k: new parts and new joins
        stats.parts_kept += new_parts.len() as u64;
        for cand in new_parts.iter().chain(new_joins.iter()) {
            let trs_ok = target_trs.is_none_or(|want| cand.tpl.trs() == *want);
            if trs_ok && !root_dedup.seen(&cand.tpl, &mut stats) {
                stats.roots_visited += 1;
                if f(&cand.expr, &cand.tpl).is_break() {
                    stats.combos = visits;
                    return Ok((true, stats));
                }
            }
        }

        parts[k] = new_parts;
    }
    stats.combos = visits;
    Ok((false, stats))
}

/// Enumerate strictly increasing `(size, index)` selections from `parts`
/// totalling exactly `total`, with at least two elements.
fn combos(
    parts: &[Vec<Part>],
    remaining: usize,
    min: (usize, usize),
    current: &mut Vec<(usize, usize)>,
    visits: &mut u64,
    limits: &SearchLimits,
    f: ComboSink<'_>,
) -> Result<ControlFlow<()>, SearchOverflow> {
    if remaining == 0 {
        if current.len() >= 2 {
            *visits += 1;
            if *visits > limits.max_visits {
                return Err(SearchOverflow {
                    context: "combination budget exhausted",
                });
            }
            f(current)?;
        }
        return Ok(ControlFlow::Continue(()));
    }
    for size in min.0..=remaining {
        // A single child covering everything is not a join.
        if current.is_empty() && size == remaining {
            continue;
        }
        let start = if size == min.0 { min.1 } else { 0 };
        for idx in start..parts[size].len() {
            current.push((size, idx));
            let flow = combos(
                parts,
                remaining - size,
                (size, idx + 1),
                current,
                visits,
                limits,
                f,
            )?;
            current.pop();
            if flow.is_break() {
                return Ok(ControlFlow::Break(()));
            }
        }
    }
    Ok(ControlFlow::Continue(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_expr::template_of_expr;
    use viewcap_expr::parse_expr;

    fn setup() -> (Catalog, Vec<RelId>) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, vec![r, s])
    }

    fn collect(
        cat: &Catalog,
        atoms: &[RelId],
        max_atoms: usize,
        target: Option<&Scheme>,
    ) -> Vec<(Expr, Template)> {
        let mut out = Vec::new();
        let found = for_each_candidate(
            cat,
            atoms,
            max_atoms,
            target,
            &SearchLimits::default(),
            &mut |e, t| {
                out.push((e.clone(), t.clone()));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert!(!found);
        out
    }

    #[test]
    fn level_one_contains_atoms_and_their_projections() {
        let (cat, atoms) = setup();
        let cands = collect(&cat, &atoms, 1, None);
        // R, π_A(R), π_B(R), S, π_B(S), π_C(S)
        assert_eq!(cands.len(), 6);
    }

    #[test]
    fn finds_the_lossy_join_at_two_atoms() {
        let (cat, atoms) = setup();
        let goal = reduce(&template_of_expr(
            &parse_expr("pi{A,C}(R * S)", &cat).unwrap(),
            &cat,
        ));
        let mut hit = false;
        let found = for_each_candidate(
            &cat,
            &atoms,
            2,
            Some(&goal.trs()),
            &SearchLimits::default(),
            &mut |_, t| {
                if equivalent_templates(t, &goal) {
                    hit = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert!(found && hit);
    }

    #[test]
    fn dedup_collapses_equivalent_candidates() {
        let (cat, atoms) = setup();
        // All candidates at ≤ 3 atoms must be pairwise inequivalent.
        let cands = collect(&cat, &atoms, 3, None);
        for (i, (_, a)) in cands.iter().enumerate() {
            for (_, b) in cands.iter().skip(i + 1) {
                assert!(
                    !equivalent_templates(a, b),
                    "duplicate mapping visited twice"
                );
            }
        }
    }

    #[test]
    fn candidates_agree_with_their_expressions() {
        // Every emitted (expr, template) pair must satisfy template ≡ T_expr.
        let (cat, atoms) = setup();
        for (e, t) in collect(&cat, &atoms, 2, None) {
            let direct = template_of_expr(&e, &cat);
            assert!(
                equivalent_templates(&t, &direct),
                "candidate template disagrees with its expression"
            );
        }
    }

    #[test]
    fn target_trs_filters_roots() {
        let (cat, atoms) = setup();
        let b = cat.lookup_attr("B").unwrap();
        let target = Scheme::new([b]).unwrap();
        for (_, t) in collect(&cat, &atoms, 2, Some(&target)) {
            assert_eq!(t.trs(), target);
        }
    }

    #[test]
    fn disabling_dedup_preserves_answers() {
        // Ablation: without semantic dedup the search visits more roots but
        // the set of reachable mappings is identical.
        let (cat, atoms) = setup();
        let collect_with = |options: SearchOptions| {
            let mut tpls: Vec<Template> = Vec::new();
            let (_, stats) = for_each_candidate_with(
                &cat,
                &atoms,
                2,
                None,
                &SearchLimits::default(),
                options,
                &mut |_, t| {
                    if !tpls.iter().any(|u| equivalent_templates(u, t)) {
                        tpls.push(t.clone());
                    }
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
            (tpls, stats)
        };
        let (with, s_with) = collect_with(SearchOptions::default());
        let (without, s_without) = collect_with(SearchOptions {
            semantic_dedup: false,
            reduce_intermediates: true,
        });
        assert_eq!(with.len(), without.len());
        for t in &with {
            assert!(without.iter().any(|u| equivalent_templates(u, t)));
        }
        assert!(s_without.roots_visited >= s_with.roots_visited);
        assert_eq!(s_without.dedup_hits, 0);
        assert!(s_with.dedup_hits > 0);
    }

    #[test]
    fn disabling_reduction_preserves_answers() {
        let (cat, atoms) = setup();
        let goal = reduce(&template_of_expr(
            &parse_expr("pi{A,C}(R * S)", &cat).unwrap(),
            &cat,
        ));
        let mut hit = false;
        let (broke, _) = for_each_candidate_with(
            &cat,
            &atoms,
            2,
            Some(&goal.trs()),
            &SearchLimits::default(),
            SearchOptions {
                semantic_dedup: true,
                reduce_intermediates: false,
            },
            &mut |_, t| {
                if equivalent_templates(t, &goal) {
                    hit = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert!(broke && hit);
    }

    #[test]
    fn stats_count_roots() {
        let (cat, atoms) = setup();
        let (_, stats) = for_each_candidate_with(
            &cat,
            &atoms,
            1,
            None,
            &SearchLimits::default(),
            SearchOptions::default(),
            &mut |_, _| ControlFlow::Continue(()),
        )
        .unwrap();
        assert_eq!(stats.roots_visited, 6); // R, π_A R, π_B R, S, π_B S, π_C S
        assert_eq!(stats.parts_kept, 6);
    }

    #[test]
    fn zero_budget_and_empty_atom_sets_are_empty_searches() {
        let (cat, atoms) = setup();
        // max_atoms = 0: nothing to enumerate, exhausts immediately.
        let found = for_each_candidate(
            &cat,
            &atoms,
            0,
            None,
            &SearchLimits::default(),
            &mut |_, _| panic!("no candidates expected"),
        )
        .unwrap();
        assert!(!found);
        // No atoms: likewise.
        let found =
            for_each_candidate(&cat, &[], 3, None, &SearchLimits::default(), &mut |_, _| {
                panic!("no candidates expected")
            })
            .unwrap();
        assert!(!found);
    }

    #[test]
    fn duplicate_atoms_are_deduplicated() {
        let (cat, atoms) = setup();
        let doubled: Vec<RelId> = atoms.iter().chain(atoms.iter()).copied().collect();
        let plain = collect(&cat, &atoms, 2, None);
        let duped = collect(&cat, &doubled, 2, None);
        assert_eq!(plain.len(), duped.len());
    }

    #[test]
    fn tiny_visit_budget_overflows() {
        let (cat, atoms) = setup();
        let limits = SearchLimits {
            max_level_parts: 20_000,
            max_visits: 1,
        };
        let res = for_each_candidate(&cat, &atoms, 3, None, &limits, &mut |_, _| {
            ControlFlow::Continue(())
        });
        assert!(res.is_err());
    }
}
