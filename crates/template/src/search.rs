//! The bounded search engine over normalized project–join expressions.
//!
//! This is the effective core behind the paper's decidability results
//! (Theorems 2.4.11 / 2.4.12). Instead of the paper's astronomically large
//! `J_k` enumeration of candidate templates, we enumerate *normalized
//! expressions* over a set of typed atoms together with their (reduced)
//! templates, composed bottom-up at the template level:
//!
//! ```text
//! part  ::=  atom  |  π_X(join)      with ∅ ≠ X ⊊ TRS(join)
//! join  ::=  a set of ≥ 1 parts     (equivalent parts are interchangeable,
//!                                    and P ⋈ P ≡ P, so sets — not
//!                                    multisets — suffice)
//! root  ::=  join
//! ```
//!
//! Completeness rests on the *syntactic subtemplate lemma* (DESIGN.md §5.3):
//! whenever the sought query is realizable at all, it is realizable by a
//! normalized expression whose atom count is bounded by the tuple count of
//! the (reduced) goal template. One corner is documented there and in
//! [`for_each_candidate`]: skeletons requiring a fully hidden operand whose
//! hidden columns overlap the live TRS may escape the normalized grammar;
//! the literal paper procedure (`viewcap-core::paper_procedure`) serves as a
//! cross-check on small instances.
//!
//! Candidates are deduplicated *semantically*: reduced templates are
//! bucketed by canonical key and confirmed by homomorphism, so each distinct
//! mapping is visited once, which keeps level sizes small.

use crate::canon::{canonical_key, CanonKey};
use crate::hom::equivalent_templates;
use crate::index::{scheme_key, ByteTrie};
use crate::ops::{join_templates, project_template};
use crate::reduce::reduce;
use crate::template::Template;
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;
use viewcap_base::{Catalog, RelId, Scheme};
use viewcap_obs as obs;

/// Span over each committed enumeration level; `combos` counts the join
/// combinations the level visited (also summed into the
/// `template.search.combos` counter, which the jobs-determinism suite
/// pins — level content is work, not timing).
static LEVEL_SPAN: obs::SpanDef =
    obs::SpanDef::new("template.level_build", "enum", "span.template.level_build");
static COMBOS_COUNTER: obs::Counter = obs::Counter::new("template.search.combos");
static PARTS_COUNTER: obs::Counter = obs::Counter::new("template.search.parts_kept");

/// Resource limits for the bounded search.
#[derive(Clone, Debug)]
pub struct SearchLimits {
    /// Maximum number of deduplicated parts per atom-count level.
    pub max_level_parts: usize,
    /// Maximum number of join combinations examined.
    pub max_visits: u64,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_level_parts: 20_000,
            max_visits: 2_000_000,
        }
    }
}

/// The search exceeded its limits before finishing.
///
/// Callers must treat this as "unknown", never as "no".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchOverflow {
    /// Which limit tripped.
    pub context: &'static str,
}

impl fmt::Display for SearchOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bounded search overflow: {}", self.context)
    }
}

impl std::error::Error for SearchOverflow {}

/// Counters describing what a search did — for the benchmark harness and
/// the dedup-ablation study (EXPERIMENTS.md B8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Join combinations examined.
    pub combos: u64,
    /// Candidate roots handed to the callback.
    pub roots_visited: u64,
    /// Parts kept after deduplication.
    pub parts_kept: u64,
    /// Candidates dropped as semantically duplicate (parts/joins/roots).
    pub dedup_hits: u64,
}

/// Tuning knobs for the search (the defaults are what the decision
/// procedures use; the ablation bench flips them).
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Deduplicate candidates semantically (canonical-key buckets confirmed
    /// by homomorphism). Turning this off makes the search visit every
    /// structurally distinct normalized expression — exponentially more
    /// work, same answers.
    pub semantic_dedup: bool,
    /// Reduce intermediate templates. Turning this off keeps raw
    /// Algorithm 2.1.1 compositions (larger templates, more hom work
    /// downstream), same answers.
    pub reduce_intermediates: bool,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            semantic_dedup: true,
            reduce_intermediates: true,
        }
    }
}

use viewcap_expr::Expr;

/// Callback type for the combination enumerator.
type ComboSink<'a> = &'a mut dyn FnMut(&[(usize, usize)]) -> Result<(), SearchOverflow>;

/// Proper nonempty subsets of `trs` in *content* order: by length, then by
/// the sequence of attribute-name ranks.
///
/// `Scheme` stores attributes sorted by [`viewcap_base::AttrId`] — interning
/// order, a catalog-declaration artifact — so the raw
/// [`Scheme::proper_nonempty_subsets`] order varies across catalogs that
/// declare the same relations in different orders. Sorting by name rank
/// (`ranks` from [`Catalog::attr_name_ranks`]) makes level expansion — and
/// therefore which equivalent witness the search keeps first — identical
/// across permuted catalogs, which is what lets cold runs emit
/// byte-identical witnesses and makes persisted spaces portable.
fn canonical_proper_subsets(trs: &Scheme, ranks: &[u32]) -> Vec<Scheme> {
    let mut subs = trs.proper_nonempty_subsets();
    subs.sort_by_cached_key(|s| {
        let mut key: Vec<u32> = s.iter().map(|a| ranks[a.index()]).collect();
        key.sort_unstable();
        (s.len(), key)
    });
    subs
}

/// A deduplicated candidate: an expression and its reduced template.
pub(crate) struct Part {
    pub(crate) expr: Expr,
    pub(crate) tpl: Template,
}

/// Semantic dedup: canonical-key buckets confirmed by equivalence.
///
/// Insertions are journaled so a partially built level can be rolled back
/// (see [`CandidateSpace::ensure_level`]); [`Dedup::commit`] discards the
/// journal once a level is final.
pub(crate) struct Dedup {
    enabled: bool,
    buckets: HashMap<CanonKey, Vec<Template>>,
    trail: Vec<CanonKey>,
}

impl Dedup {
    pub(crate) fn new(enabled: bool) -> Self {
        Dedup {
            enabled,
            buckets: HashMap::new(),
            trail: Vec::new(),
        }
    }

    /// Returns `true` when an equivalent template was already recorded.
    pub(crate) fn seen(&mut self, t: &Template, stats: &mut SearchStats) -> bool {
        if !self.enabled {
            return false;
        }
        let key = canonical_key(t);
        let exact = key.is_exact();
        let bucket = self.buckets.entry(key.clone()).or_default();
        // Exact keys are complete for isomorphism, so a nonempty bucket
        // already holds an isomorphic — hence equivalent — template; the
        // homomorphism confirm is only needed for the inexact fallback.
        let hit = if exact {
            !bucket.is_empty()
        } else {
            bucket.iter().any(|u| equivalent_templates(u, t))
        };
        if hit {
            stats.dedup_hits += 1;
            return true;
        }
        bucket.push(t.clone());
        self.trail.push(key);
        false
    }

    /// Journal position for a later [`Dedup::rollback`].
    fn checkpoint(&self) -> usize {
        self.trail.len()
    }

    /// Undo every insertion after `checkpoint` (insertions are push-only,
    /// so reverse popping restores the buckets exactly).
    fn rollback(&mut self, checkpoint: usize) {
        while self.trail.len() > checkpoint {
            let key = self.trail.pop().expect("trail len checked");
            let bucket = self.buckets.get_mut(&key).expect("journaled key exists");
            bucket.pop();
            if bucket.is_empty() {
                self.buckets.remove(&key);
            }
        }
    }

    /// Forget the journal (the recorded insertions are now permanent).
    pub(crate) fn commit(&mut self) {
        self.trail.clear();
    }
}

/// One fully built enumeration level of a [`CandidateSpace`].
pub(crate) struct Level {
    /// Cumulative join combinations examined after completing this level —
    /// the deterministic, goal-independent visit count a fresh search would
    /// have consumed. Probes compare it against their own
    /// [`SearchLimits::max_visits`] to reproduce per-probe overflow.
    pub(crate) visits_after: u64,
    /// Parts kept at this level (what a fresh search checks against
    /// [`SearchLimits::max_level_parts`]).
    pub(crate) parts_kept: usize,
    /// Deduplicated candidate roots in fresh visit order (new parts, then
    /// new joins).
    pub(crate) roots: Vec<Part>,
    /// Root indices keyed by target relation scheme (rendered as bytes),
    /// preserving order within a scheme.
    pub(crate) roots_by_trs: ByteTrie,
    /// The joins committed at this level, in enumeration order — kept so a
    /// snapshot can replay `join_dedup` exactly (roots alone lose joins
    /// that earlier roots deduplicated away).
    pub(crate) joins: Vec<Part>,
}

/// A persistent, lazily extended memo of the bounded enumeration.
///
/// The candidate space over a fixed `(catalog, atoms)` pair depends only on
/// the atoms and the level bound — never on any goal. A `CandidateSpace`
/// therefore builds each atom-count level exactly once and lets any number
/// of goals *probe* it ([`CandidateSpace::probe`]): a probe walks the
/// already-built levels (filtered down to roots with its target TRS via a
/// per-level index), extending the space only when it needs a level no
/// earlier probe reached.
///
/// **Per-probe budget semantics.** Level content is limit-independent, so
/// the space records, per level, the cumulative combination count and the
/// kept-part count a fresh search would have observed. A probe overflows
/// exactly when a fresh [`for_each_candidate`] run with the same
/// `(max_atoms, limits)` would: recorded counts are compared against the
/// *probe's* limits, and a level being built mid-probe aborts (and rolls
/// back, leaving the space unchanged) when the probing caller's budget is
/// exhausted. Overflow still means "unknown", never "no".
///
/// The space does not own the catalog: every probe borrows it, and every
/// probe of one space must pass the same catalog (the one the atoms were
/// minted in) — callers such as `viewcap-core`'s `ClosureContext` own the
/// scratch catalog and the space side by side.
pub struct CandidateSpace {
    pub(crate) atoms: Vec<RelId>,
    pub(crate) options: SearchOptions,
    /// `parts[k]` = deduplicated parts of exactly `k` atoms (index 0 unused).
    pub(crate) parts: Vec<Vec<Part>>,
    pub(crate) levels: Vec<Level>,
    pub(crate) part_dedup: Dedup,
    pub(crate) join_dedup: Dedup,
    pub(crate) root_dedup: Dedup,
    /// Cumulative counters over all committed build work.
    pub(crate) stats: SearchStats,
    /// Probes served (for reuse reporting).
    pub(crate) probes: u64,
}

impl CandidateSpace {
    /// An empty space over `atoms`; no level is built until a probe asks.
    pub fn new(atoms: &[RelId], options: SearchOptions) -> Self {
        CandidateSpace {
            atoms: atoms.to_vec(),
            options,
            parts: vec![Vec::new()],
            levels: Vec::new(),
            part_dedup: Dedup::new(options.semantic_dedup),
            join_dedup: Dedup::new(options.semantic_dedup),
            root_dedup: Dedup::new(options.semantic_dedup),
            stats: SearchStats::default(),
            probes: 0,
        }
    }

    /// Cumulative counters over every committed level build — the total
    /// enumeration work this space has paid, however many probes shared it.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Number of fully built atom-count levels.
    pub fn built_levels(&self) -> usize {
        self.levels.len()
    }

    /// Probes served so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Enumerate candidates with at most `max_atoms` atoms whose TRS is
    /// `target_trs` (all roots when `None`), reusing every already-built
    /// level and extending the space on demand.
    ///
    /// Returns `Ok(true)` when the callback broke, `Ok(false)` when the
    /// (bounded) space was exhausted. The returned [`SearchStats`] count
    /// this probe's *incremental* work: combinations and parts from levels
    /// it had to build, plus the roots it delivered — for a probe fully
    /// served from memo, `combos` is 0.
    ///
    /// `catalog` must be the catalog the atoms live in, the same for every
    /// probe of this space.
    pub fn probe(
        &mut self,
        catalog: &Catalog,
        max_atoms: usize,
        target_trs: Option<&Scheme>,
        limits: &SearchLimits,
        f: &mut dyn FnMut(&Expr, &Template) -> ControlFlow<()>,
    ) -> Result<(bool, SearchStats), SearchOverflow> {
        self.probes += 1;
        let mut probe_stats = SearchStats::default();
        for k in 1..=max_atoms {
            if k > self.levels.len() {
                let before = self.stats;
                self.ensure_level(catalog, k, limits)?;
                probe_stats.combos += self.stats.combos - before.combos;
                probe_stats.parts_kept += self.stats.parts_kept - before.parts_kept;
                probe_stats.dedup_hits += self.stats.dedup_hits - before.dedup_hits;
            } else if self.levels[k - 1].visits_after > limits.max_visits {
                // A fresh run with these limits would have overflowed while
                // examining this level's combinations.
                return Err(SearchOverflow {
                    context: "combination budget exhausted",
                });
            }
            let level = &self.levels[k - 1];
            if level.parts_kept > limits.max_level_parts {
                return Err(SearchOverflow {
                    context: "per-level part budget exhausted",
                });
            }
            // Visit this level's roots, narrowed to the target scheme.
            let all: Vec<u32>;
            let indices: &[u32] = match target_trs {
                Some(want) => level.roots_by_trs.get(&scheme_key(want)),
                None => {
                    all = (0..level.roots.len() as u32).collect();
                    &all
                }
            };
            for &i in indices {
                let root = &level.roots[i as usize];
                probe_stats.roots_visited += 1;
                if f(&root.expr, &root.tpl).is_break() {
                    return Ok((true, probe_stats));
                }
            }
        }
        Ok((false, probe_stats))
    }

    /// Build level `k` (which must be the next unbuilt level) under the
    /// probing caller's limits. On overflow the partial level is rolled
    /// back — dedup journals undone, nothing committed — so a later probe
    /// with a larger budget rebuilds it identically.
    fn ensure_level(
        &mut self,
        catalog: &Catalog,
        k: usize,
        limits: &SearchLimits,
    ) -> Result<(), SearchOverflow> {
        debug_assert_eq!(k, self.levels.len() + 1);
        let mut span = LEVEL_SPAN.start();
        span.arg("level", k as u64);
        let cp_parts = self.part_dedup.checkpoint();
        let cp_joins = self.join_dedup.checkpoint();
        let cp_roots = self.root_dedup.checkpoint();
        let stats_before = self.stats;
        match self.build_level(catalog, k, limits) {
            Ok(()) => {
                self.part_dedup.commit();
                self.join_dedup.commit();
                self.root_dedup.commit();
                let combos = self.stats.combos - stats_before.combos;
                span.arg("combos", combos);
                COMBOS_COUNTER.add(combos);
                PARTS_COUNTER.add(self.stats.parts_kept - stats_before.parts_kept);
                Ok(())
            }
            Err(overflow) => {
                self.part_dedup.rollback(cp_parts);
                self.join_dedup.rollback(cp_joins);
                self.root_dedup.rollback(cp_roots);
                self.stats = stats_before;
                Err(overflow)
            }
        }
    }

    fn build_level(
        &mut self,
        catalog: &Catalog,
        k: usize,
        limits: &SearchLimits,
    ) -> Result<(), SearchOverflow> {
        let CandidateSpace {
            atoms,
            options,
            parts,
            levels,
            part_dedup,
            join_dedup,
            root_dedup,
            stats,
            ..
        } = self;
        let maybe_reduce = |t: &Template| {
            if options.reduce_intermediates {
                reduce(t)
            } else {
                t.clone()
            }
        };
        // Visits continue cumulatively across levels, exactly as one fresh
        // bottom-up search would count them.
        let mut visits: u64 = levels.last().map_or(0, |l| l.visits_after);
        let ranks = catalog.attr_name_ranks();

        // -------- new parts of size k (and, for k ≥ 2, new joins of size k)
        let mut new_parts: Vec<Part> = Vec::new();
        let mut new_joins: Vec<Part> = Vec::new();

        if k == 1 {
            for &r in atoms.iter() {
                let tpl = Template::atom(r, catalog);
                if !part_dedup.seen(&tpl, stats) {
                    new_parts.push(Part {
                        expr: Expr::rel(r),
                        tpl: tpl.clone(),
                    });
                }
                // Proper projections of the atom, in content order.
                for x in canonical_proper_subsets(&tpl.trs(), &ranks) {
                    let p = maybe_reduce(&project_template(&tpl, &x).expect("X ⊆ TRS"));
                    if !part_dedup.seen(&p, stats) {
                        new_parts.push(Part {
                            expr: Expr::project(Expr::rel(r), x, catalog).expect("X ⊆ TRS of atom"),
                            tpl: p,
                        });
                    }
                }
            }
        } else {
            // Join combinations: strictly increasing (size, index) choices
            // totalling k with ≥ 2 children.
            let mut stack: Vec<(usize, usize)> = Vec::new();
            let flow = combos(
                parts,
                k,
                (1, 0),
                &mut stack,
                &mut visits,
                limits,
                &mut |chosen| {
                    let children: Vec<&Part> = chosen.iter().map(|&(s, i)| &parts[s][i]).collect();
                    let mut tpl = children[0].tpl.clone();
                    for c in &children[1..] {
                        tpl = join_templates(&tpl, &c.tpl);
                    }
                    let tpl = maybe_reduce(&tpl);
                    if join_dedup.seen(&tpl, stats) {
                        return Ok(());
                    }
                    let expr = Expr::join(children.iter().map(|c| c.expr.clone()).collect())
                        .expect("≥ 2 children");
                    // Proper projections become parts of size k, in
                    // content order.
                    for x in canonical_proper_subsets(&tpl.trs(), &ranks) {
                        let p = maybe_reduce(&project_template(&tpl, &x).expect("X ⊆ TRS"));
                        if !part_dedup.seen(&p, stats) {
                            new_parts.push(Part {
                                expr: Expr::project(expr.clone(), x, catalog)
                                    .expect("X ⊆ TRS of join"),
                                tpl: p,
                            });
                        }
                    }
                    new_joins.push(Part { expr, tpl });
                    Ok(())
                },
            )?;
            debug_assert!(flow.is_continue());
        }

        // Commit the level. The kept-part count is recorded (not enforced)
        // here: level content is limit-independent, so the budget check is
        // the *probe's* job — `probe` errs before visiting a level whose
        // recorded count exceeds its own `max_level_parts`, exactly where a
        // fresh search with those limits would have erred.
        stats.parts_kept += new_parts.len() as u64;
        stats.combos = visits;
        let mut roots: Vec<Part> = Vec::new();
        let mut roots_by_trs = ByteTrie::new();
        for cand in new_parts.iter().chain(new_joins.iter()) {
            // Root dedup is TRS-blind here, where a fresh filtered search
            // only dedups roots matching its target. The decisions agree:
            // equivalent templates always share a TRS, so whether a root is
            // a duplicate depends only on earlier same-TRS roots — a set the
            // filter never changes.
            if !root_dedup.seen(&cand.tpl, stats) {
                stats.roots_visited += 1;
                let idx = roots.len() as u32;
                roots_by_trs.insert(&scheme_key(&cand.tpl.trs()), idx);
                roots.push(Part {
                    expr: cand.expr.clone(),
                    tpl: cand.tpl.clone(),
                });
            }
        }
        levels.push(Level {
            visits_after: visits,
            parts_kept: new_parts.len(),
            roots,
            roots_by_trs,
            joins: new_joins,
        });
        parts.push(new_parts);
        Ok(())
    }
}

/// Enumerate deduplicated `(expression, reduced template)` candidates over
/// `atoms` with at most `max_atoms` atom occurrences.
///
/// * `target_trs`: if given, only roots with exactly this TRS reach the
///   callback (parts of other TRS still participate as subexpressions).
/// * Returns `Ok(true)` when the callback broke (found what it wanted),
///   `Ok(false)` when the space was exhausted.
///
/// This is the one-shot entry point: it builds a throwaway
/// [`CandidateSpace`] and probes it once. Callers with several goals over
/// one atom set should hold a `CandidateSpace` (or a
/// `viewcap-core::ClosureContext`) and probe it per goal instead — the
/// enumeration is goal-independent and amortizes.
pub fn for_each_candidate(
    catalog: &Catalog,
    atoms: &[RelId],
    max_atoms: usize,
    target_trs: Option<&Scheme>,
    limits: &SearchLimits,
    f: &mut dyn FnMut(&Expr, &Template) -> ControlFlow<()>,
) -> Result<bool, SearchOverflow> {
    for_each_candidate_with(
        catalog,
        atoms,
        max_atoms,
        target_trs,
        limits,
        SearchOptions::default(),
        f,
    )
    .map(|(broke, _)| broke)
}

/// [`for_each_candidate`] with explicit [`SearchOptions`], returning the
/// search counters alongside the outcome.
pub fn for_each_candidate_with(
    catalog: &Catalog,
    atoms: &[RelId],
    max_atoms: usize,
    target_trs: Option<&Scheme>,
    limits: &SearchLimits,
    options: SearchOptions,
    f: &mut dyn FnMut(&Expr, &Template) -> ControlFlow<()>,
) -> Result<(bool, SearchStats), SearchOverflow> {
    CandidateSpace::new(atoms, options).probe(catalog, max_atoms, target_trs, limits, f)
}

/// Enumerate strictly increasing `(size, index)` selections from `parts`
/// totalling exactly `total`, with at least two elements.
fn combos(
    parts: &[Vec<Part>],
    remaining: usize,
    min: (usize, usize),
    current: &mut Vec<(usize, usize)>,
    visits: &mut u64,
    limits: &SearchLimits,
    f: ComboSink<'_>,
) -> Result<ControlFlow<()>, SearchOverflow> {
    if remaining == 0 {
        if current.len() >= 2 {
            *visits += 1;
            if *visits > limits.max_visits {
                return Err(SearchOverflow {
                    context: "combination budget exhausted",
                });
            }
            f(current)?;
        }
        return Ok(ControlFlow::Continue(()));
    }
    for size in min.0..=remaining {
        // A single child covering everything is not a join.
        if current.is_empty() && size == remaining {
            continue;
        }
        let start = if size == min.0 { min.1 } else { 0 };
        for idx in start..parts[size].len() {
            current.push((size, idx));
            let flow = combos(
                parts,
                remaining - size,
                (size, idx + 1),
                current,
                visits,
                limits,
                f,
            )?;
            current.pop();
            if flow.is_break() {
                return Ok(ControlFlow::Break(()));
            }
        }
    }
    Ok(ControlFlow::Continue(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_expr::template_of_expr;
    use viewcap_expr::parse_expr;

    fn setup() -> (Catalog, Vec<RelId>) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, vec![r, s])
    }

    fn collect(
        cat: &Catalog,
        atoms: &[RelId],
        max_atoms: usize,
        target: Option<&Scheme>,
    ) -> Vec<(Expr, Template)> {
        let mut out = Vec::new();
        let found = for_each_candidate(
            cat,
            atoms,
            max_atoms,
            target,
            &SearchLimits::default(),
            &mut |e, t| {
                out.push((e.clone(), t.clone()));
                ControlFlow::Continue(())
            },
        )
        .unwrap();
        assert!(!found);
        out
    }

    #[test]
    fn level_one_contains_atoms_and_their_projections() {
        let (cat, atoms) = setup();
        let cands = collect(&cat, &atoms, 1, None);
        // R, π_A(R), π_B(R), S, π_B(S), π_C(S)
        assert_eq!(cands.len(), 6);
    }

    #[test]
    fn finds_the_lossy_join_at_two_atoms() {
        let (cat, atoms) = setup();
        let goal = reduce(&template_of_expr(
            &parse_expr("pi{A,C}(R * S)", &cat).unwrap(),
            &cat,
        ));
        let mut hit = false;
        let found = for_each_candidate(
            &cat,
            &atoms,
            2,
            Some(&goal.trs()),
            &SearchLimits::default(),
            &mut |_, t| {
                if equivalent_templates(t, &goal) {
                    hit = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert!(found && hit);
    }

    #[test]
    fn dedup_collapses_equivalent_candidates() {
        let (cat, atoms) = setup();
        // All candidates at ≤ 3 atoms must be pairwise inequivalent.
        let cands = collect(&cat, &atoms, 3, None);
        for (i, (_, a)) in cands.iter().enumerate() {
            for (_, b) in cands.iter().skip(i + 1) {
                assert!(
                    !equivalent_templates(a, b),
                    "duplicate mapping visited twice"
                );
            }
        }
    }

    #[test]
    fn candidates_agree_with_their_expressions() {
        // Every emitted (expr, template) pair must satisfy template ≡ T_expr.
        let (cat, atoms) = setup();
        for (e, t) in collect(&cat, &atoms, 2, None) {
            let direct = template_of_expr(&e, &cat);
            assert!(
                equivalent_templates(&t, &direct),
                "candidate template disagrees with its expression"
            );
        }
    }

    #[test]
    fn target_trs_filters_roots() {
        let (cat, atoms) = setup();
        let b = cat.lookup_attr("B").unwrap();
        let target = Scheme::new([b]).unwrap();
        for (_, t) in collect(&cat, &atoms, 2, Some(&target)) {
            assert_eq!(t.trs(), target);
        }
    }

    #[test]
    fn disabling_dedup_preserves_answers() {
        // Ablation: without semantic dedup the search visits more roots but
        // the set of reachable mappings is identical.
        let (cat, atoms) = setup();
        let collect_with = |options: SearchOptions| {
            let mut tpls: Vec<Template> = Vec::new();
            let (_, stats) = for_each_candidate_with(
                &cat,
                &atoms,
                2,
                None,
                &SearchLimits::default(),
                options,
                &mut |_, t| {
                    if !tpls.iter().any(|u| equivalent_templates(u, t)) {
                        tpls.push(t.clone());
                    }
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
            (tpls, stats)
        };
        let (with, s_with) = collect_with(SearchOptions::default());
        let (without, s_without) = collect_with(SearchOptions {
            semantic_dedup: false,
            reduce_intermediates: true,
        });
        assert_eq!(with.len(), without.len());
        for t in &with {
            assert!(without.iter().any(|u| equivalent_templates(u, t)));
        }
        assert!(s_without.roots_visited >= s_with.roots_visited);
        assert_eq!(s_without.dedup_hits, 0);
        assert!(s_with.dedup_hits > 0);
    }

    #[test]
    fn disabling_reduction_preserves_answers() {
        let (cat, atoms) = setup();
        let goal = reduce(&template_of_expr(
            &parse_expr("pi{A,C}(R * S)", &cat).unwrap(),
            &cat,
        ));
        let mut hit = false;
        let (broke, _) = for_each_candidate_with(
            &cat,
            &atoms,
            2,
            Some(&goal.trs()),
            &SearchLimits::default(),
            SearchOptions {
                semantic_dedup: true,
                reduce_intermediates: false,
            },
            &mut |_, t| {
                if equivalent_templates(t, &goal) {
                    hit = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert!(broke && hit);
    }

    #[test]
    fn stats_count_roots() {
        let (cat, atoms) = setup();
        let (_, stats) = for_each_candidate_with(
            &cat,
            &atoms,
            1,
            None,
            &SearchLimits::default(),
            SearchOptions::default(),
            &mut |_, _| ControlFlow::Continue(()),
        )
        .unwrap();
        assert_eq!(stats.roots_visited, 6); // R, π_A R, π_B R, S, π_B S, π_C S
        assert_eq!(stats.parts_kept, 6);
    }

    #[test]
    fn zero_budget_and_empty_atom_sets_are_empty_searches() {
        let (cat, atoms) = setup();
        // max_atoms = 0: nothing to enumerate, exhausts immediately.
        let found = for_each_candidate(
            &cat,
            &atoms,
            0,
            None,
            &SearchLimits::default(),
            &mut |_, _| panic!("no candidates expected"),
        )
        .unwrap();
        assert!(!found);
        // No atoms: likewise.
        let found =
            for_each_candidate(&cat, &[], 3, None, &SearchLimits::default(), &mut |_, _| {
                panic!("no candidates expected")
            })
            .unwrap();
        assert!(!found);
    }

    #[test]
    fn duplicate_atoms_are_deduplicated() {
        let (cat, atoms) = setup();
        let doubled: Vec<RelId> = atoms.iter().chain(atoms.iter()).copied().collect();
        let plain = collect(&cat, &atoms, 2, None);
        let duped = collect(&cat, &doubled, 2, None);
        assert_eq!(plain.len(), duped.len());
    }

    #[test]
    fn space_probes_share_the_enumeration() {
        let (cat, atoms) = setup();
        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        let limits = SearchLimits::default();
        let count = |space: &mut CandidateSpace| {
            let mut n = 0usize;
            let (_, stats) = space
                .probe(&cat, 3, None, &limits, &mut |_, _| {
                    n += 1;
                    ControlFlow::Continue(())
                })
                .unwrap();
            (n, stats)
        };
        let (n1, s1) = count(&mut space);
        let (n2, s2) = count(&mut space);
        assert_eq!(n1, n2, "probes must see identical roots");
        assert!(s1.combos > 0, "first probe pays the enumeration");
        assert_eq!(s2.combos, 0, "second probe is served from the memo");
        assert_eq!(s2.parts_kept, 0);
        assert_eq!(space.probes(), 2);
        assert_eq!(space.built_levels(), 3);
    }

    #[test]
    fn space_extends_incrementally_and_matches_fresh_runs() {
        let (cat, atoms) = setup();
        let limits = SearchLimits::default();
        let collect_fresh = |max_atoms: usize| collect(&cat, &atoms, max_atoms, None);
        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        for max_atoms in [1usize, 2, 3] {
            let mut shared: Vec<(Expr, Template)> = Vec::new();
            space
                .probe(&cat, max_atoms, None, &limits, &mut |e, t| {
                    shared.push((e.clone(), t.clone()));
                    ControlFlow::Continue(())
                })
                .unwrap();
            let fresh = collect_fresh(max_atoms);
            assert_eq!(shared.len(), fresh.len(), "bound {max_atoms}");
            for ((es, ts), (ef, tf)) in shared.iter().zip(&fresh) {
                assert_eq!(format!("{es:?}"), format!("{ef:?}"), "bound {max_atoms}");
                assert!(equivalent_templates(ts, tf));
            }
        }
        // Total build work equals one full bound-3 enumeration, not the sum
        // of three fresh runs.
        let (_, fresh3) = for_each_candidate_with(
            &cat,
            &atoms,
            3,
            None,
            &limits,
            SearchOptions::default(),
            &mut |_, _| ControlFlow::Continue(()),
        )
        .unwrap();
        assert_eq!(space.stats().combos, fresh3.combos);
    }

    #[test]
    fn space_trs_index_narrows_roots() {
        let (cat, atoms) = setup();
        let b = cat.lookup_attr("B").unwrap();
        let target = Scheme::new([b]).unwrap();
        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        let mut narrowed = Vec::new();
        space
            .probe(
                &cat,
                2,
                Some(&target),
                &SearchLimits::default(),
                &mut |_, t| {
                    narrowed.push(t.clone());
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
        assert!(narrowed.iter().all(|t| t.trs() == target));
        let fresh = collect(&cat, &atoms, 2, Some(&target));
        assert_eq!(narrowed.len(), fresh.len());
    }

    /// Differential: a TRS-narrowed probe of a persistent space (served by
    /// the per-level byte-trie root index) must agree with a fresh
    /// flat-scan oracle — enumerate everything, filter by TRS — across the
    /// whole budget sweep 1–1000: same roots in the same order, and the
    /// same overflow verdicts (the space's recorded counts must reproduce
    /// per-probe limits exactly).
    #[test]
    fn differential_trs_index_matches_flat_scan_across_budgets() {
        let (cat, atoms) = setup();
        let attr = |n: &str| cat.lookup_attr(n).unwrap();
        let targets: Vec<Scheme> = [
            vec!["A"],
            vec!["B"],
            vec!["C"],
            vec!["A", "B"],
            vec!["B", "C"],
            vec!["A", "C"],
            vec!["A", "B", "C"],
        ]
        .iter()
        .map(|names| Scheme::collect(names.iter().map(|n| attr(n))))
        .collect();

        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        for max_visits in (1u64..=1000).step_by(13).chain([2, 3, 1000]) {
            let limits = SearchLimits {
                max_level_parts: 20_000,
                max_visits,
            };
            for target in &targets {
                let mut indexed: Vec<String> = Vec::new();
                let shared = space.probe(&cat, 3, Some(target), &limits, &mut |e, _| {
                    indexed.push(format!("{e:?}"));
                    ControlFlow::Continue(())
                });
                let mut flat: Vec<String> = Vec::new();
                let fresh = for_each_candidate(&cat, &atoms, 3, None, &limits, &mut |e, t| {
                    if t.trs() == *target {
                        flat.push(format!("{e:?}"));
                    }
                    ControlFlow::Continue(())
                });
                match (&shared, &fresh) {
                    (Ok(_), Ok(_)) => assert_eq!(
                        indexed, flat,
                        "roots diverged at budget {max_visits}, target {target:?}"
                    ),
                    (Err(a), Err(b)) => assert_eq!(
                        a.context, b.context,
                        "overflow reasons diverged at budget {max_visits}"
                    ),
                    _ => panic!(
                        "overflow divergence at budget {max_visits}: \
                         indexed {shared:?} vs flat {fresh:?}"
                    ),
                }
            }
        }
        // The sweep exercised both regimes.
        assert!(space.built_levels() == 3, "large budgets built the space");
    }

    #[test]
    fn overflowed_builds_roll_back_and_larger_budgets_rebuild() {
        let (cat, atoms) = setup();
        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        let tiny = SearchLimits {
            max_level_parts: 20_000,
            max_visits: 1,
        };
        let err = space
            .probe(&cat, 3, None, &tiny, &mut |_, _| ControlFlow::Continue(()))
            .unwrap_err();
        assert_eq!(err.context, "combination budget exhausted");
        let levels_after_overflow = space.built_levels();
        // A generous probe rebuilds the aborted level and sees exactly what
        // a fresh search sees.
        let mut n = 0usize;
        space
            .probe(&cat, 3, None, &SearchLimits::default(), &mut |_, _| {
                n += 1;
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(n, collect(&cat, &atoms, 3, None).len());
        assert!(space.built_levels() > levels_after_overflow);
        // And the tiny budget still overflows afterwards — recorded counts
        // reproduce per-probe limits even once the space is built.
        let err = space
            .probe(&cat, 3, None, &tiny, &mut |_, _| ControlFlow::Continue(()))
            .unwrap_err();
        assert_eq!(err.context, "combination budget exhausted");
    }

    #[test]
    fn per_probe_part_budget_is_respected_after_commit() {
        let (cat, atoms) = setup();
        let mut space = CandidateSpace::new(&atoms, SearchOptions::default());
        // Build level 1 with a generous budget (6 parts kept).
        space
            .probe(&cat, 1, None, &SearchLimits::default(), &mut |_, _| {
                ControlFlow::Continue(())
            })
            .unwrap();
        let strict = SearchLimits {
            max_level_parts: 3,
            max_visits: 2_000_000,
        };
        let err = space
            .probe(
                &cat,
                1,
                None,
                &strict,
                &mut |_, _| ControlFlow::Continue(()),
            )
            .unwrap_err();
        assert_eq!(err.context, "per-level part budget exhausted");
        // Matches the fresh outcome under the same limits.
        let fresh = for_each_candidate(&cat, &atoms, 1, None, &strict, &mut |_, _| {
            ControlFlow::Continue(())
        });
        assert_eq!(fresh.unwrap_err().context, err.context);
    }

    #[test]
    fn tiny_visit_budget_overflows() {
        let (cat, atoms) = setup();
        let limits = SearchLimits {
            max_level_parts: 20_000,
            max_visits: 1,
        };
        let res = for_each_candidate(&cat, &atoms, 3, None, &limits, &mut |_, _| {
            ControlFlow::Continue(())
        });
        assert!(res.is_err());
    }
}
