//! Byte-trie candidate indexes.
//!
//! Two consumers share one structure:
//!
//! * [`TupleIndex`] — the homomorphism search's candidate index over a
//!   target template. Each target tuple is posted under its relation tag
//!   and, per position, under `(tag, position, symbol)`; a candidate query
//!   intersects the postings of every *ground* position (distinguished in
//!   the source, or bound by the partial valuation), so the search prunes
//!   on all bound attributes instead of relation tag alone.
//! * the per-level root index of the bounded search
//!   (`CandidateSpace`), which keys roots by their target relation scheme
//!   rendered as bytes.
//!
//! Keys are short LEB128-style varint strings, so the trie stays shallow
//! on the small dense id spaces the catalogs produce; postings are `u32`
//! lists in insertion order, which callers keep ascending so intersection
//! preserves target-tuple order — the order the flat reference scan
//! produces, keeping witness selection byte-identical.

use crate::template::Template;
use viewcap_base::{RelId, Scheme, Symbol};

/// A byte-keyed trie with `u32` posting lists at every node.
///
/// Nodes live in one arena; children are small sorted `(label, node)`
/// vectors, binary-searched on descent. Inserting ids in ascending order
/// keeps every posting list sorted, which [`leapfrog_intersect`] relies on.
pub struct ByteTrie {
    nodes: Vec<Node>,
}

#[derive(Default)]
struct Node {
    /// Child edges, sorted by byte label.
    children: Vec<(u8, u32)>,
    /// Ids posted exactly at this node.
    postings: Vec<u32>,
}

impl Default for ByteTrie {
    fn default() -> Self {
        ByteTrie::new()
    }
}

impl ByteTrie {
    /// An empty trie (just the root).
    pub fn new() -> Self {
        ByteTrie {
            nodes: vec![Node::default()],
        }
    }

    /// Post `id` under `key`, creating the path as needed.
    pub fn insert(&mut self, key: &[u8], id: u32) {
        let mut node = 0usize;
        for &b in key {
            node = match self.nodes[node]
                .children
                .binary_search_by_key(&b, |&(label, _)| label)
            {
                Ok(pos) => self.nodes[node].children[pos].1 as usize,
                Err(pos) => {
                    let fresh = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[node].children.insert(pos, (b, fresh));
                    fresh as usize
                }
            };
        }
        self.nodes[node].postings.push(id);
    }

    /// The postings at exactly `key` (empty when the path is absent).
    pub fn get(&self, key: &[u8]) -> &[u32] {
        let mut node = 0usize;
        for &b in key {
            match self.nodes[node]
                .children
                .binary_search_by_key(&b, |&(label, _)| label)
            {
                Ok(pos) => node = self.nodes[node].children[pos].1 as usize,
                Err(_) => return &[],
            }
        }
        &self.nodes[node].postings
    }
}

/// Append `v` as a LEB128 varint (7 bits per byte, high bit = continue).
#[inline]
fn push_varint(key: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            key.push(byte);
            return;
        }
        key.push(byte | 0x80);
    }
}

/// Stack-allocated key buffer for lookups — the hot paths (per search
/// node) must not allocate. 40 bytes covers four maximal u64 varints.
struct KeyBuf {
    buf: [u8; 40],
    len: usize,
}

impl KeyBuf {
    #[inline]
    fn new() -> Self {
        KeyBuf {
            buf: [0; 40],
            len: 0,
        }
    }

    #[inline]
    fn push_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf[self.len] = byte;
                self.len += 1;
                return;
            }
            self.buf[self.len] = byte | 0x80;
            self.len += 1;
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Render a scheme as a trie key (attribute indices in scheme order, which
/// is canonical — schemes are sorted and deduplicated).
pub fn scheme_key(scheme: &Scheme) -> Vec<u8> {
    let mut key = Vec::with_capacity(scheme.len() * 2);
    for attr in scheme.iter() {
        push_varint(&mut key, attr.index() as u64);
    }
    key
}

/// Candidate index over the tuples of a target template.
pub struct TupleIndex {
    trie: ByteTrie,
}

#[inline]
fn push_symbol(key: &mut Vec<u8>, sym: Symbol) {
    push_varint(key, sym.attr().index() as u64);
    push_varint(key, sym.ord() as u64);
}

impl TupleIndex {
    /// Index every tuple of `dst` under its tag and its per-position
    /// symbols.
    pub fn build(dst: &Template) -> Self {
        let mut trie = ByteTrie::new();
        let mut key = Vec::with_capacity(16);
        for (j, dt) in dst.tuples().iter().enumerate() {
            key.clear();
            push_varint(&mut key, dt.rel().index() as u64);
            trie.insert(&key, j as u32);
            let tag_len = key.len();
            for (p, sym) in dt.row().iter().enumerate() {
                key.truncate(tag_len);
                push_varint(&mut key, p as u64);
                push_symbol(&mut key, *sym);
                trie.insert(&key, j as u32);
            }
        }
        TupleIndex { trie }
    }

    /// Target tuples tagged `rel`, in tuple order.
    pub fn by_tag(&self, rel: RelId) -> &[u32] {
        let mut key = KeyBuf::new();
        key.push_varint(rel.index() as u64);
        self.trie.get(key.as_slice())
    }

    /// Target tuples tagged `rel` whose position `p` holds exactly `sym`.
    pub fn by_position(&self, rel: RelId, p: usize, sym: Symbol) -> &[u32] {
        let mut key = KeyBuf::new();
        key.push_varint(rel.index() as u64);
        key.push_varint(p as u64);
        key.push_varint(sym.attr().index() as u64);
        key.push_varint(sym.ord() as u64);
        self.trie.get(key.as_slice())
    }

    /// Multiway candidate join: target tuples tagged `rel` matching every
    /// `(position, symbol)` requirement, appended to `out` in tuple order.
    /// With no requirements this is the whole tag bucket.
    pub fn candidates(&self, rel: RelId, required: &[(usize, Symbol)], out: &mut Vec<u32>) {
        match required {
            [] => out.extend_from_slice(self.by_tag(rel)),
            [(p, sym)] => out.extend_from_slice(self.by_position(rel, *p, *sym)),
            _ => {
                let mut lists: Vec<&[u32]> = required
                    .iter()
                    .map(|&(p, sym)| self.by_position(rel, p, sym))
                    .collect();
                leapfrog_intersect(&mut lists, out);
            }
        }
    }
}

/// Intersect sorted `u32` posting lists, appending the common ids to `out`
/// in ascending order.
///
/// Leapfrog-style: the shortest list drives, and every other list advances
/// monotonically by galloping (`partition_point` from its current offset),
/// so total work is near-linear in the shortest list with logarithmic
/// seeks into the others.
pub fn leapfrog_intersect(lists: &mut [&[u32]], out: &mut Vec<u32>) {
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return;
    }
    lists.sort_by_key(|l| l.len());
    let (driver, rest) = lists.split_first_mut().expect("nonempty");
    'driver: for &v in driver.iter() {
        for list in rest.iter_mut() {
            let skip = list.partition_point(|&x| x < v);
            *list = &list[skip..];
            if list.is_empty() {
                // Every later driver value is larger still: done.
                return;
            }
            if list[0] != v {
                continue 'driver;
            }
        }
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TaggedTuple;
    use viewcap_base::Catalog;

    #[test]
    fn trie_round_trips_keys() {
        let mut trie = ByteTrie::new();
        trie.insert(b"ab", 1);
        trie.insert(b"ab", 3);
        trie.insert(b"abc", 2);
        trie.insert(b"", 9);
        assert_eq!(trie.get(b"ab"), &[1, 3]);
        assert_eq!(trie.get(b"abc"), &[2]);
        assert_eq!(trie.get(b""), &[9]);
        assert_eq!(trie.get(b"a"), &[] as &[u32]);
        assert_eq!(trie.get(b"zz"), &[] as &[u32]);
    }

    #[test]
    fn varints_are_prefix_free_per_field() {
        // Ids 1 and 129 share a low byte under naive truncation; varint
        // encoding must keep their keys distinct.
        let mut a = Vec::new();
        let mut b = Vec::new();
        push_varint(&mut a, 1);
        push_varint(&mut b, 129);
        assert_ne!(a, b);
        let mut c = Vec::new();
        push_varint(&mut c, 16_384);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn leapfrog_matches_naive_intersection() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 2, 3], vec![2, 3, 4]],
            vec![vec![1, 5, 9], vec![5], vec![0, 5, 7]],
            vec![vec![1, 2], vec![3, 4]],
            vec![vec![0, 1, 2, 3, 4, 5], vec![1, 3, 5], vec![3, 5, 7]],
            vec![vec![], vec![1, 2]],
        ];
        for lists in cases {
            let naive: Vec<u32> = lists
                .first()
                .map(|f| {
                    f.iter()
                        .copied()
                        .filter(|v| lists.iter().all(|l| l.contains(v)))
                        .collect()
                })
                .unwrap_or_default();
            let mut borrowed: Vec<&[u32]> = lists.iter().map(Vec::as_slice).collect();
            let mut out = Vec::new();
            leapfrog_intersect(&mut borrowed, &mut out);
            assert_eq!(out, naive, "lists {lists:?}");
        }
    }

    #[test]
    fn tuple_index_finds_by_tag_and_position() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["A"]).unwrap();
        let [a, b] = ["A", "B"].map(|n| cat.lookup_attr(n).unwrap());
        let t = Template::new(vec![
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap(),
            TaggedTuple::new(r, vec![Symbol::new(a, 2), Symbol::distinguished(b)], &cat).unwrap(),
            TaggedTuple::new(s, vec![Symbol::distinguished(a)], &cat).unwrap(),
        ])
        .unwrap();
        let index = TupleIndex::build(&t);
        assert_eq!(index.by_tag(r), &[0, 1]);
        assert_eq!(index.by_tag(s), &[2]);
        assert_eq!(index.by_position(r, 0, Symbol::distinguished(a)), &[0]);
        assert_eq!(index.by_position(r, 1, Symbol::distinguished(b)), &[1]);
        let mut out = Vec::new();
        index.candidates(r, &[], &mut out);
        assert_eq!(out, vec![0, 1]);
        out.clear();
        index.candidates(
            r,
            &[(0, Symbol::new(a, 2)), (1, Symbol::distinguished(b))],
            &mut out,
        );
        assert_eq!(out, vec![1]);
        out.clear();
        index.candidates(
            r,
            &[(0, Symbol::distinguished(a)), (1, Symbol::distinguished(b))],
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn scheme_keys_distinguish_schemes() {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let ac = cat.scheme(&["A", "C"]).unwrap();
        let abc = cat.scheme(&["A", "B", "C"]).unwrap();
        assert_ne!(scheme_key(&ab), scheme_key(&ac));
        assert_ne!(scheme_key(&ab), scheme_key(&abc));
        assert_eq!(scheme_key(&ab), scheme_key(&ab.clone()));
    }
}
