//! # viewcap-template
//!
//! Multirelational templates — the tableau machinery of Section 2 of
//! Connors (JCSS 1986), extended from the single-relation "tagged tableaux"
//! of Aho–Sagiv–Ullman.
//!
//! A template is a finite set of *tagged tuples* `(t, η)`; it denotes a
//! mapping from instantiations to relations by enumerating *α-embeddings*
//! (valuations sending every tagged tuple into `α(η)`) and collecting the
//! images of the distinguished symbols. This crate provides:
//!
//! * the [`Template`] data type with the paper's validity conditions
//!   ([`template`]);
//! * **evaluation** `T(α)` ([`eval`]);
//! * **Algorithm 2.1.1**: converting an expression to an equivalent template
//!   ([`from_expr`]);
//! * **homomorphisms** and the containment/equivalence tests of
//!   Propositions 2.4.1–2.4.3 ([`hom`]), plus canonical forms and
//!   isomorphism ([`canon`]);
//! * **reduction** to a minimal equivalent template, Proposition 2.4.4
//!   ([`reduce()`]);
//! * template-level **projection and join** ([`ops`]);
//! * **template substitution** `T → β` with full block provenance —
//!   the paper's key tool (Section 2.2, Theorem 2.2.3) ([`subst`]);
//! * **connected components** via shared nondistinguished symbols
//!   (Section 3.3) ([`components`]);
//! * the **bounded search engine** over normalized expressions with
//!   semantic deduplication — the effective core behind the paper's
//!   decidability results ([`search`]);
//! * **expression-template recognition**, our constructive replacement for
//!   Propositions 2.4.5/2.4.6 ([`recognize`]).

pub mod canon;
pub mod components;
pub mod display;
pub mod error;
pub mod eval;
pub mod from_expr;
pub mod hom;
pub mod index;
pub mod ops;
pub mod recognize;
pub mod reduce;
pub mod search;
pub mod snapshot;
pub mod subst;
pub mod template;

pub use canon::{canonical_key, canonical_key_with, is_isomorphic, CanonKey, KeyLabels};
pub use components::connected_components;
pub use error::TemplateError;
pub use eval::eval_template;
pub use from_expr::template_of_expr;
pub use hom::{
    candidate_lists, equivalent_templates, find_homomorphism, for_each_homomorphism,
    template_contains, Homomorphism, Valuation,
};
pub use index::{leapfrog_intersect, scheme_key, ByteTrie, TupleIndex};
pub use ops::{join_templates, project_template};
pub use recognize::expression_realization;
pub use reduce::reduce;
pub use search::{
    for_each_candidate, for_each_candidate_with, CandidateSpace, SearchLimits, SearchOptions,
    SearchOverflow, SearchStats,
};
pub use snapshot::{
    load_space, save_space, space_digest, SnapshotError, SPACE_FORMAT_VERSION, SPACE_MAGIC,
};
pub use subst::{apply_assignment, substitute, Assignment, Substitution};
pub use template::{TaggedTuple, Template};
