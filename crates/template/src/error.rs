//! Error types for the template crate.

use std::fmt;
use viewcap_base::{RelId, Scheme};

/// Errors raised while constructing or combining templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// Templates are nonempty sets of tagged tuples.
    EmptyTemplate,
    /// Condition (iii): some tagged tuple must carry a distinguished symbol.
    NoDistinguishedSymbol,
    /// A tagged tuple's row does not match the type of its relation name.
    RowMismatch {
        /// The tag whose type was violated.
        rel: RelId,
    },
    /// A template assignment must map `η` to a template of TRS `R(η)`.
    AssignmentTrsMismatch {
        /// The relation name being assigned.
        rel: RelId,
        /// The type `R(η)` the assignment requires.
        expected: Scheme,
        /// The TRS of the assigned template.
        got: Scheme,
    },
    /// Substitution hit a relation name with no assigned template.
    MissingAssignment(RelId),
    /// Template projection requires a nonempty subset of the TRS.
    BadProjection {
        /// The requested target.
        target: Scheme,
        /// The template's TRS.
        trs: Scheme,
    },
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::EmptyTemplate => write!(f, "templates must be nonempty"),
            TemplateError::NoDistinguishedSymbol => write!(
                f,
                "template condition (iii) violated: no distinguished symbol present"
            ),
            TemplateError::RowMismatch { rel } => {
                write!(f, "tagged tuple row does not match the type of {rel:?}")
            }
            TemplateError::AssignmentTrsMismatch { rel, expected, got } => write!(
                f,
                "assignment for {rel:?} must have TRS {expected:?}, got {got:?}"
            ),
            TemplateError::MissingAssignment(rel) => {
                write!(f, "no template assigned to relation name {rel:?}")
            }
            TemplateError::BadProjection { target, trs } => write!(
                f,
                "projection target {target:?} is not a nonempty subset of TRS {trs:?}"
            ),
        }
    }
}

impl std::error::Error for TemplateError {}
