//! Template-level projection and join.
//!
//! These realize the closure operations of Section 1.5 directly on
//! templates, mirroring the corresponding clauses of Algorithm 2.1.1:
//!
//! * [`project_template`]: `π_X(T)` — rename each `0_A` with `A ∈ TRS − X`
//!   to a fresh nondistinguished symbol (Algorithm 2.1.1(ii));
//! * [`join_templates`]: `T₁ ⋈ T₂` — union after relabeling to disjoint
//!   nondistinguished symbols (Algorithm 2.1.1(iii)).
//!
//! Both commute with the mappings: `project_template(T, X)` realizes
//! `π_X ∘ T` and `join_templates(T₁, T₂)` realizes `T₁ ⋈ T₂`
//! (Lemma 2.3.1 uses exactly these constructions). Semantic agreement is
//! cross-checked in the crate's property tests.

use crate::error::TemplateError;
use crate::template::Template;
use std::collections::HashMap;
use viewcap_base::{Scheme, Symbol};

/// The template realizing `π_X ∘ T`.
///
/// Requires `∅ ≠ X ⊆ TRS(T)`.
pub fn project_template(t: &Template, x: &Scheme) -> Result<Template, TemplateError> {
    let trs = t.trs();
    if x.is_empty() || !x.is_subset_of(&trs) {
        return Err(TemplateError::BadProjection {
            target: x.clone(),
            trs,
        });
    }
    let mut gen = t.symbol_gen();
    // One fresh symbol per hidden attribute, shared by every occurrence of
    // the old 0_A (this is what creates cross-tuple symbol sharing).
    let mut fresh: HashMap<u32, Symbol> = HashMap::new();
    let tuples = t
        .tuples()
        .iter()
        .map(|tup| {
            tup.map_symbols(|s| {
                if s.is_distinguished() && !x.contains(s.attr()) {
                    *fresh
                        .entry(s.attr().0)
                        .or_insert_with(|| gen.fresh(s.attr()))
                } else {
                    s
                }
            })
        })
        .collect();
    Template::new(tuples)
}

/// The template realizing `T₁ ⋈ T₂`.
///
/// The right operand is relabeled so its nondistinguished symbols are
/// disjoint from the left's; the tuple sets are then unioned (distinguished
/// symbols intentionally coincide — that is the join condition).
pub fn join_templates(left: &Template, right: &Template) -> Template {
    let mut gen = left.symbol_gen();
    gen.reserve_all(right.symbols());
    let right = right.relabel_disjoint(&mut gen);
    let mut tuples = left.tuples().to_vec();
    tuples.extend(right.tuples().iter().cloned());
    Template::new(tuples).expect("join of valid templates is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::equivalent_templates;
    use crate::template::TaggedTuple;
    use viewcap_base::{Catalog, RelId};

    fn setup() -> (Catalog, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, r, s)
    }

    #[test]
    fn projection_hides_attributes() {
        let (cat, r, _) = setup();
        let b = cat.lookup_attr("B").unwrap();
        let t = Template::atom(r, &cat);
        let p = project_template(&t, &Scheme::new([b]).unwrap()).unwrap();
        assert_eq!(p.trs(), Scheme::new([b]).unwrap());
        assert_eq!(p.len(), 1);
        // A-column became nondistinguished.
        let a = cat.lookup_attr("A").unwrap();
        assert!(!p.tuples()[0].symbol_at(a).unwrap().is_distinguished());
    }

    #[test]
    fn projection_validates_target() {
        let (cat, r, _) = setup();
        let c = cat.lookup_attr("C").unwrap();
        let t = Template::atom(r, &cat);
        assert!(project_template(&t, &Scheme::new([c]).unwrap()).is_err());
        assert!(project_template(&t, &Scheme::empty()).is_err());
    }

    #[test]
    fn projection_shares_the_fresh_symbol() {
        // Join R with R (two tuples each holding 0_A) then project A away:
        // both occurrences of 0_A must become the SAME fresh symbol.
        let (cat, r, s) = setup();
        let j = join_templates(&Template::atom(r, &cat), &Template::atom(s, &cat));
        let b = cat.lookup_attr("B").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        let p = project_template(&j, &Scheme::new([c]).unwrap()).unwrap();
        // B was shared (0_B in both); after hiding B both rows hold the same
        // fresh symbol in column B.
        let syms: Vec<Symbol> = p.tuples().iter().filter_map(|t| t.symbol_at(b)).collect();
        assert_eq!(syms.len(), 2);
        assert_eq!(syms[0], syms[1]);
        assert!(!syms[0].is_distinguished());
    }

    #[test]
    fn join_makes_operands_symbol_disjoint() {
        let (cat, r, _) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let b = cat.lookup_attr("B").unwrap();
        // Two copies of π_B(R): each has a private a-symbol; joined they must
        // stay private (b-columns stay distinguished and shared).
        let pb = project_template(&Template::atom(r, &cat), &Scheme::new([b]).unwrap()).unwrap();
        let j = join_templates(&pb, &pb);
        assert_eq!(j.len(), 2);
        let a_syms: Vec<Symbol> = j.tuples().iter().filter_map(|t| t.symbol_at(a)).collect();
        assert_ne!(
            a_syms[0], a_syms[1],
            "nondistinguished symbols must stay disjoint"
        );
        assert_eq!(j.trs(), Scheme::new([b]).unwrap());
    }

    #[test]
    fn join_with_self_of_atom_collapses() {
        // η ⋈ η has the single all-distinguished tuple: identical rows merge
        // under set semantics, matching η ⋈ η ≡ η.
        let (cat, r, _) = setup();
        let atom = Template::atom(r, &cat);
        let j = join_templates(&atom, &atom);
        assert_eq!(j.len(), 1);
        assert!(equivalent_templates(&j, &atom));
    }

    #[test]
    fn join_is_commutative_up_to_equivalence() {
        let (cat, r, s) = setup();
        let tr = Template::atom(r, &cat);
        let ts = Template::atom(s, &cat);
        let j1 = join_templates(&tr, &ts);
        let j2 = join_templates(&ts, &tr);
        assert!(equivalent_templates(&j1, &j2));
    }

    #[test]
    fn tagged_tuple_symbol_at_out_of_scheme_is_none() {
        let (cat, r, _) = setup();
        let c = cat.lookup_attr("C").unwrap();
        let tup = TaggedTuple::all_distinguished(r, &cat);
        assert!(tup.symbol_at(c).is_none());
    }
}
