//! Template homomorphisms and the containment / equivalence tests.
//!
//! Paper, Section 2.4: a *homomorphism* from `T` to `S` is a valuation `f`
//! with `f(0_A) = 0_A` for every attribute and `f(τ) ∈ S` for every tagged
//! tuple `τ ∈ T`. The fundamental facts (from Aho–Sagiv–Ullman, restated as
//! Propositions 2.4.1–2.4.3):
//!
//! * `S(α) ⊆ T(α)` for every instantiation `α` **iff** there is a
//!   homomorphism from `T` to `S` ([`template_contains`]);
//! * `T ≡ S` **iff** homomorphisms exist in both directions
//!   ([`equivalent_templates`]);
//! * both are decidable — realized here by backtracking search with
//!   candidate precomputation and most-constrained-first ordering.
//!
//! A [`Homomorphism`] records both the symbol valuation and the induced
//! tuple mapping; the latter is what the essential-tuple machinery of
//! Section 3 consumes. Valuations and consistent tuple maps are in
//! bijection, so enumerating tuple maps enumerates valuations without
//! duplicates.

use crate::index::TupleIndex;
use crate::template::{TaggedTuple, Template};
use std::collections::HashMap;
use std::ops::ControlFlow;
use viewcap_base::Symbol;
use viewcap_obs as obs;

/// Trie-indexed candidate-join activity: calls to [`candidate_lists`]
/// and the total candidate targets they surfaced (the pairs the
/// backtracking search actually has to consider).
static JOIN_CALLS: obs::Counter = obs::Counter::new("template.join.calls");
static JOIN_CANDIDATES: obs::Counter = obs::Counter::new("template.join.candidates");

/// A finite symbol mapping (the meaningful fragment of a valuation).
///
/// Symbols absent from the map are fixed; distinguished symbols are always
/// fixed.
pub type Valuation = HashMap<Symbol, Symbol>;

/// A homomorphism between templates: the symbol valuation together with the
/// tuple mapping it induces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Homomorphism {
    /// Images of the source's nondistinguished symbols.
    pub symbol_map: Valuation,
    /// `tuple_map[i] = j` means source tuple `i` maps onto target tuple `j`
    /// (indices into the canonical tuple orders).
    pub tuple_map: Vec<usize>,
}

impl Homomorphism {
    /// Apply the valuation to a symbol (identity outside the map).
    pub fn apply(&self, s: Symbol) -> Symbol {
        if s.is_distinguished() {
            s
        } else {
            self.symbol_map.get(&s).copied().unwrap_or(s)
        }
    }

    /// Apply the valuation to a tagged tuple.
    pub fn apply_tuple(&self, t: &TaggedTuple) -> TaggedTuple {
        t.map_symbols(|s| self.apply(s))
    }
}

/// Candidate target-tuple lists per source tuple.
///
/// A target tuple is a candidate for a source tuple when the tags agree and
/// every distinguished source entry meets the same distinguished entry in
/// the target (valuations fix distinguished symbols).
///
/// Candidates come from the target's byte-trie [`TupleIndex`]
/// ([`Template::tuple_index`], built once and shared by clones): each
/// source tuple narrows the postings of its relation tag by its ground
/// (distinguished) positions — a multiway sorted intersection on large tag
/// buckets, a direct row check over the (already tag-pruned) bucket on
/// small ones, where intersection seeks cost more than they save. Postings
/// are in tuple order and both paths preserve it, so the lists — and
/// therefore the backtracking search — are identical to the flat reference
/// scan's.
pub fn candidate_lists(src: &Template, dst: &Template) -> Option<Vec<Vec<usize>>> {
    candidate_lists_indexed(src, dst, dst.tuple_index())
}

/// Below this tag-bucket size, filtering the bucket against the target
/// rows directly beats per-position posting seeks.
const LEAPFROG_MIN_BUCKET: usize = 16;

/// Below this candidate-list length the backtracking search keeps the
/// static list rather than re-intersecting postings per depth — pruning a
/// handful of candidates costs more than letting the bind step reject
/// them.
const DYNAMIC_PRUNE_MIN: usize = 8;

/// [`candidate_lists`] against a prebuilt index (what [`HomSearch`] uses,
/// so one cached build serves both the static lists and the dynamic
/// pruning).
fn candidate_lists_indexed(
    src: &Template,
    dst: &Template,
    index: &TupleIndex,
) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(src.len());
    let mut required: Vec<(usize, Symbol)> = Vec::new();
    let mut buf: Vec<u32> = Vec::new();
    let mut surfaced: u64 = 0;
    JOIN_CALLS.add(1);
    for st in src.tuples() {
        buf.clear();
        let bucket = index.by_tag(st.rel());
        if bucket.len() < LEAPFROG_MIN_BUCKET {
            'target: for &j in bucket {
                let dt = &dst.tuples()[j as usize];
                for (a, b) in st.row().iter().zip(dt.row()) {
                    if a.is_distinguished() && a != b {
                        continue 'target;
                    }
                }
                buf.push(j);
            }
        } else {
            required.clear();
            for (p, a) in st.row().iter().enumerate() {
                if a.is_distinguished() {
                    required.push((p, *a));
                }
            }
            index.candidates(st.rel(), &required, &mut buf);
        }
        if buf.is_empty() {
            JOIN_CANDIDATES.add(surfaced);
            return None;
        }
        surfaced += buf.len() as u64;
        out.push(buf.iter().map(|&j| j as usize).collect());
    }
    JOIN_CANDIDATES.add(surfaced);
    Some(out)
}

/// The flat O(|src| · |dst|) reference scan — the semantic oracle the
/// differential tests compare the trie-indexed join against. Not part of
/// the public API: decision procedures reach candidates through
/// [`find_homomorphism`] / [`template_contains`], which drive the index.
#[cfg(test)]
pub(crate) fn candidate_lists_flat(src: &Template, dst: &Template) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(src.len());
    for st in src.tuples() {
        let mut cands = Vec::new();
        'target: for (j, dt) in dst.tuples().iter().enumerate() {
            if dt.rel() != st.rel() {
                continue;
            }
            for (a, b) in st.row().iter().zip(dt.row()) {
                if a.is_distinguished() && a != b {
                    continue 'target;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        out.push(cands);
    }
    Some(out)
}

/// Backtracking engine shared by existence and enumeration queries.
struct HomSearch<'a> {
    src: &'a Template,
    dst: &'a Template,
    /// Source tuple indices in search order (most constrained first).
    order: Vec<usize>,
    cands: Vec<Vec<usize>>,
    /// Byte-trie index over the target (the target's cached index), shared
    /// by the static candidate lists and the per-depth bound-attribute
    /// pruning.
    index: &'a TupleIndex,
    binding: Valuation,
    trail: Vec<Symbol>,
    assignment: Vec<usize>,
    /// Scratch for the per-depth `(position, symbol)` requirements.
    req_buf: Vec<(usize, Symbol)>,
    /// Scratch for index intersections.
    cand_buf: Vec<u32>,
}

impl<'a> HomSearch<'a> {
    fn new(src: &'a Template, dst: &'a Template) -> Option<Self> {
        let index = dst.tuple_index();
        let cands = candidate_lists_indexed(src, dst, index)?;
        let mut order: Vec<usize> = (0..src.len()).collect();
        order.sort_by_key(|&i| cands[i].len());
        Some(HomSearch {
            src,
            dst,
            order,
            cands,
            index,
            binding: HashMap::new(),
            trail: Vec::new(),
            assignment: vec![usize::MAX; src.len()],
            req_buf: Vec::new(),
            cand_buf: Vec::new(),
        })
    }

    /// Try mapping source tuple `i` onto target tuple `j`; on success returns
    /// the number of new bindings pushed on the trail.
    fn try_bind(&mut self, i: usize, j: usize) -> Option<usize> {
        let st = &self.src.tuples()[i];
        let dt = &self.dst.tuples()[j];
        let mut pushed = 0;
        for (a, b) in st.row().iter().zip(dt.row()) {
            if a.is_distinguished() {
                continue; // candidate list already enforced equality
            }
            match self.binding.get(a) {
                Some(&bound) if bound == *b => {}
                Some(_) => {
                    self.undo(pushed);
                    return None;
                }
                None => {
                    self.binding.insert(*a, *b);
                    self.trail.push(*a);
                    pushed += 1;
                }
            }
        }
        Some(pushed)
    }

    fn undo(&mut self, n: usize) {
        for _ in 0..n {
            let s = self.trail.pop().expect("trail underflow");
            self.binding.remove(&s);
        }
    }

    /// Candidates for source tuple `i` under the current partial valuation.
    ///
    /// On long candidate lists, every position whose source symbol is
    /// already bound adds a `(position, image)` requirement; intersecting
    /// those postings (plus the distinguished positions') drops exactly the
    /// targets [`HomSearch::try_bind`] would reject on a bound-symbol
    /// conflict. Short lists — and depths with nothing bound — keep the
    /// static list and let the bind step reject. Pruning yields a
    /// subsequence of the static (tuple-order) list, so the search visits
    /// survivors in the same order as the unpruned search — same first
    /// homomorphism, same enumeration order.
    fn pruned_candidates(&mut self, i: usize) -> Vec<usize> {
        if self.cands[i].len() < DYNAMIC_PRUNE_MIN || self.binding.is_empty() {
            return self.cands[i].clone();
        }
        let st = &self.src.tuples()[i];
        self.req_buf.clear();
        for (p, a) in st.row().iter().enumerate() {
            if !a.is_distinguished() {
                if let Some(&b) = self.binding.get(a) {
                    self.req_buf.push((p, b));
                }
            }
        }
        if self.req_buf.is_empty() {
            return self.cands[i].clone();
        }
        for (p, a) in st.row().iter().enumerate() {
            if a.is_distinguished() {
                self.req_buf.push((p, *a));
            }
        }
        self.cand_buf.clear();
        self.index
            .candidates(st.rel(), &self.req_buf, &mut self.cand_buf);
        self.cand_buf.iter().map(|&j| j as usize).collect()
    }

    fn run<F>(&mut self, depth: usize, f: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Homomorphism) -> ControlFlow<()>,
    {
        if depth == self.order.len() {
            let hom = Homomorphism {
                symbol_map: self.binding.clone(),
                tuple_map: self.assignment.clone(),
            };
            return f(&hom);
        }
        let i = self.order[depth];
        let cands = self.pruned_candidates(i);
        for j in cands {
            if let Some(pushed) = self.try_bind(i, j) {
                self.assignment[i] = j;
                let flow = self.run(depth + 1, f);
                self.assignment[i] = usize::MAX;
                self.undo(pushed);
                if flow.is_break() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Find one homomorphism from `src` to `dst`, if any.
pub fn find_homomorphism(src: &Template, dst: &Template) -> Option<Homomorphism> {
    let mut found = None;
    let _ = for_each_homomorphism(src, dst, &mut |h| {
        found = Some(h.clone());
        ControlFlow::Break(())
    });
    found
}

/// Enumerate every homomorphism from `src` to `dst`.
///
/// The callback can stop the enumeration by returning
/// [`ControlFlow::Break`]. Returns whether enumeration was broken.
pub fn for_each_homomorphism<F>(src: &Template, dst: &Template, f: &mut F) -> ControlFlow<()>
where
    F: FnMut(&Homomorphism) -> ControlFlow<()>,
{
    match HomSearch::new(src, dst) {
        None => ControlFlow::Continue(()),
        Some(mut search) => search.run(0, f),
    }
}

/// Proposition 2.4.1: does `inner(α) ⊆ outer(α)` hold for *every*
/// instantiation `α`? Decided by searching for a homomorphism from `outer`
/// to `inner`.
///
/// Relations on different schemes are never comparable, so templates with
/// different TRS are never in the containment relation; the proposition
/// implicitly compares same-TRS templates and we guard accordingly (a
/// homomorphism can still exist across a TRS mismatch — it just proves
/// nothing about the mappings).
pub fn template_contains(outer: &Template, inner: &Template) -> bool {
    outer.trs() == inner.trs() && find_homomorphism(outer, inner).is_some()
}

/// Corollary 2.4.2 / Proposition 2.4.3: do `a` and `b` realize the same
/// mapping? Decided by homomorphisms in both directions.
pub fn equivalent_templates(a: &Template, b: &Template) -> bool {
    template_contains(a, b) && template_contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::{Catalog, RelId};

    fn setup() -> (Catalog, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        (cat, r)
    }

    /// Template for π_AB(R): row (0_A, 0_B, c₁).
    fn pi_ab(cat: &Catalog, r: RelId) -> Template {
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        Template::new(vec![TaggedTuple::new(
            r,
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, 1),
            ],
            cat,
        )
        .unwrap()])
        .unwrap()
    }

    /// Template for π_AB(R) ⋈ π_BC(R): rows (0,0,c₁) and (a₂,0,0).
    fn pi_ab_join_pi_bc(cat: &Catalog, r: RelId) -> Template {
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, 1),
                ],
                cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, 2),
                    Symbol::distinguished(b),
                    Symbol::distinguished(c),
                ],
                cat,
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let (cat, r) = setup();
        let t = pi_ab_join_pi_bc(&cat, r);
        let h = find_homomorphism(&t, &t).expect("identity exists");
        assert_eq!(h.tuple_map.len(), 2);
        // identity maps each tuple to itself under some hom (maybe others too)
        assert!(template_contains(&t, &t));
    }

    #[test]
    fn lossy_join_containment_direction() {
        // R ⊑ π_AB(R) ⋈ π_BC(R): the decomposition contains the original.
        // In template terms: R(α) ⊆ [π_AB ⋈ π_BC](α) for all α, so by
        // Prop 2.4.1 there is a hom from the join template to atom(R).
        let (cat, r) = setup();
        let atom = Template::atom(r, &cat);
        let join = pi_ab_join_pi_bc(&cat, r);
        assert!(template_contains(&join, &atom));
        // and NOT conversely (the join is lossy):
        assert!(!template_contains(&atom, &join));
        assert!(!equivalent_templates(&atom, &join));
    }

    #[test]
    fn trs_mismatch_blocks_containment_even_with_hom() {
        let (cat, r) = setup();
        let atom = Template::atom(r, &cat); // TRS {A,B,C}
        let proj = pi_ab(&cat, r); // TRS {A,B}
                                   // A raw homomorphism proj → atom exists (c₁ ↦ 0_C) …
        assert!(find_homomorphism(&proj, &atom).is_some());
        // … but the mappings land on different schemes, so neither
        // containment nor equivalence holds.
        assert!(!template_contains(&proj, &atom));
        assert!(!template_contains(&atom, &proj));
        assert!(!equivalent_templates(&atom, &proj));
    }

    #[test]
    fn homomorphism_may_merge_symbols() {
        // π_AB(R) ⋈ π_AB(R) must be equivalent to π_AB(R): the two rows can
        // merge by mapping their distinct c-symbols together.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row = |cv: u32| {
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, cv),
            ]
        };
        let doubled = Template::new(vec![
            TaggedTuple::new(r, row(1), &cat).unwrap(),
            TaggedTuple::new(r, row(2), &cat).unwrap(),
        ])
        .unwrap();
        let single = pi_ab(&cat, r);
        assert!(equivalent_templates(&doubled, &single));
    }

    #[test]
    fn nondistinguished_may_map_to_distinguished() {
        // hom from π_AB(R) template (0,0,c1) to atom(R) (0,0,0): c1 ↦ 0_C.
        let (cat, r) = setup();
        let proj = pi_ab(&cat, r);
        let atom = Template::atom(r, &cat);
        let h = find_homomorphism(&proj, &atom).expect("c1 ↦ 0_C");
        let c = cat.lookup_attr("C").unwrap();
        assert_eq!(h.apply(Symbol::new(c, 1)), Symbol::distinguished(c));
    }

    #[test]
    fn enumeration_counts_all_homs() {
        // Two interchangeable rows: hom count from doubled to doubled is 4
        // (each row maps to either row independently — c-symbols are free).
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row = |cv: u32| {
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, cv),
            ]
        };
        let doubled = Template::new(vec![
            TaggedTuple::new(r, row(1), &cat).unwrap(),
            TaggedTuple::new(r, row(2), &cat).unwrap(),
        ])
        .unwrap();
        let mut n = 0;
        let _ = for_each_homomorphism(&doubled, &doubled, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn indexed_candidate_lists_match_the_flat_scan() {
        // The trie-indexed construction must produce exactly the lists the
        // flat O(|src|·|dst|) reference scan produces, in the same order.
        let naive = candidate_lists_flat;
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        let s = cat.relation("S", &["A", "B"]).unwrap();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row_r = |av: u32, bv: u32, cv: u32| {
            TaggedTuple::new(
                r,
                vec![Symbol::new(a, av), Symbol::new(b, bv), Symbol::new(c, cv)],
                &cat,
            )
            .unwrap()
        };
        let row_s = |av: u32, bv: u32| {
            TaggedTuple::new(s, vec![Symbol::new(a, av), Symbol::new(b, bv)], &cat).unwrap()
        };
        let src = Template::new(vec![row_r(0, 1, 2), row_s(0, 3)]).unwrap();
        // Small target.
        let dst = Template::new(vec![
            row_r(0, 4, 5),
            row_r(0, 0, 6),
            row_s(0, 7),
            row_s(8, 9),
        ])
        .unwrap();
        assert_eq!(candidate_lists(&src, &dst), naive(&src, &dst));
        // Large target: many same-tag tuples, so the multiway intersection
        // actually narrows; lists must still come out in tuple order.
        let mut rows = Vec::new();
        for v in 0..16u32 {
            rows.push(row_r(0, v + 10, v + 40));
            rows.push(row_s(0, v + 70));
        }
        let big = Template::new(rows).unwrap();
        assert_eq!(candidate_lists(&src, &big), naive(&src, &big));
        // And a no-candidate case returns None both ways.
        let only_s = Template::new(vec![row_s(0, 1)]).unwrap();
        let only_r = Template::new(vec![row_r(0, 1, 2)]).unwrap();
        assert_eq!(candidate_lists(&only_s, &only_r), naive(&only_s, &only_r));
        assert_eq!(candidate_lists(&only_s, &only_r), None);
    }

    /// Deterministic splitmix64 stream for the seeded differential suite.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// All homomorphisms via the production search (trie-indexed,
    /// bound-attribute pruned), in visit order.
    fn collect_homs(src: &Template, dst: &Template) -> Vec<Homomorphism> {
        let mut out = Vec::new();
        let _ = for_each_homomorphism(src, dst, &mut |h| {
            out.push(h.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Oracle: the same backtracking over flat-scan candidate lists with no
    /// index pruning — every rejection happens inside the bind step. Visit
    /// order must match the production search exactly (the pruned lists are
    /// subsequences of these, and pruning only removes bind failures).
    fn oracle_homs(src: &Template, dst: &Template) -> Vec<Homomorphism> {
        #[allow(clippy::too_many_arguments)]
        fn rec(
            src: &Template,
            dst: &Template,
            order: &[usize],
            cands: &[Vec<usize>],
            depth: usize,
            binding: &mut Valuation,
            assignment: &mut Vec<usize>,
            out: &mut Vec<Homomorphism>,
        ) {
            if depth == order.len() {
                out.push(Homomorphism {
                    symbol_map: binding.clone(),
                    tuple_map: assignment.clone(),
                });
                return;
            }
            let i = order[depth];
            'cand: for &j in &cands[i] {
                let st = &src.tuples()[i];
                let dt = &dst.tuples()[j];
                let mut pushed: Vec<Symbol> = Vec::new();
                for (a, b) in st.row().iter().zip(dt.row()) {
                    if a.is_distinguished() {
                        continue;
                    }
                    match binding.get(a) {
                        Some(&bound) if bound == *b => {}
                        Some(_) => {
                            for s in pushed.drain(..) {
                                binding.remove(&s);
                            }
                            continue 'cand;
                        }
                        None => {
                            binding.insert(*a, *b);
                            pushed.push(*a);
                        }
                    }
                }
                assignment[i] = j;
                rec(src, dst, order, cands, depth + 1, binding, assignment, out);
                assignment[i] = usize::MAX;
                for s in pushed {
                    binding.remove(&s);
                }
            }
        }
        let Some(cands) = candidate_lists_flat(src, dst) else {
            return Vec::new();
        };
        let mut order: Vec<usize> = (0..src.len()).collect();
        order.sort_by_key(|&i| cands[i].len());
        let mut binding = Valuation::new();
        let mut assignment = vec![usize::MAX; src.len()];
        let mut out = Vec::new();
        rec(
            src,
            dst,
            &order,
            &cands,
            0,
            &mut binding,
            &mut assignment,
            &mut out,
        );
        out
    }

    #[test]
    fn differential_trie_join_matches_flat_oracle_on_random_templates() {
        use viewcap_base::AttrId;
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        let attrs_r: Vec<AttrId> = ["A", "B", "C"]
            .iter()
            .map(|n| cat.lookup_attr(n).unwrap())
            .collect();
        let attrs_s: Vec<AttrId> = ["B", "C"]
            .iter()
            .map(|n| cat.lookup_attr(n).unwrap())
            .collect();
        let mut state = 0xC0FFEE_u64;
        let random_template = |state: &mut u64| -> Template {
            loop {
                let n = 1 + (splitmix(state) as usize) % 5;
                let mut rows = Vec::new();
                for _ in 0..n {
                    let (rel, attrs) = if splitmix(state).is_multiple_of(2) {
                        (r, &attrs_r)
                    } else {
                        (s, &attrs_s)
                    };
                    // Small ordinal range forces symbol collisions, which
                    // is what exercises the bound-attribute pruning.
                    let row: Vec<Symbol> = attrs
                        .iter()
                        .map(|&a| Symbol::new(a, (splitmix(state) % 4) as u32))
                        .collect();
                    if let Ok(t) = TaggedTuple::new(rel, row, &cat) {
                        rows.push(t);
                    }
                }
                if let Ok(t) = Template::new(rows) {
                    return t;
                }
            }
        };
        for round in 0..200 {
            let a = random_template(&mut state);
            let b = random_template(&mut state);
            // Both probe orders: a → b and b → a.
            for (src, dst) in [(&a, &b), (&b, &a)] {
                assert_eq!(
                    candidate_lists(src, dst),
                    candidate_lists_flat(src, dst),
                    "candidate lists diverged in round {round}"
                );
                assert_eq!(
                    collect_homs(src, dst),
                    oracle_homs(src, dst),
                    "hom enumeration diverged in round {round}"
                );
            }
        }
    }

    #[test]
    fn tags_must_match() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A"]).unwrap();
        let s = cat.relation("S", &["A"]).unwrap();
        let tr = Template::atom(r, &cat);
        let ts = Template::atom(s, &cat);
        assert!(!template_contains(&tr, &ts));
        assert!(!template_contains(&ts, &tr));
    }
}
