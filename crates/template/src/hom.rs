//! Template homomorphisms and the containment / equivalence tests.
//!
//! Paper, Section 2.4: a *homomorphism* from `T` to `S` is a valuation `f`
//! with `f(0_A) = 0_A` for every attribute and `f(τ) ∈ S` for every tagged
//! tuple `τ ∈ T`. The fundamental facts (from Aho–Sagiv–Ullman, restated as
//! Propositions 2.4.1–2.4.3):
//!
//! * `S(α) ⊆ T(α)` for every instantiation `α` **iff** there is a
//!   homomorphism from `T` to `S` ([`template_contains`]);
//! * `T ≡ S` **iff** homomorphisms exist in both directions
//!   ([`equivalent_templates`]);
//! * both are decidable — realized here by backtracking search with
//!   candidate precomputation and most-constrained-first ordering.
//!
//! A [`Homomorphism`] records both the symbol valuation and the induced
//! tuple mapping; the latter is what the essential-tuple machinery of
//! Section 3 consumes. Valuations and consistent tuple maps are in
//! bijection, so enumerating tuple maps enumerates valuations without
//! duplicates.

use crate::template::{TaggedTuple, Template};
use std::collections::HashMap;
use std::ops::ControlFlow;
use viewcap_base::Symbol;

/// A finite symbol mapping (the meaningful fragment of a valuation).
///
/// Symbols absent from the map are fixed; distinguished symbols are always
/// fixed.
pub type Valuation = HashMap<Symbol, Symbol>;

/// A homomorphism between templates: the symbol valuation together with the
/// tuple mapping it induces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Homomorphism {
    /// Images of the source's nondistinguished symbols.
    pub symbol_map: Valuation,
    /// `tuple_map[i] = j` means source tuple `i` maps onto target tuple `j`
    /// (indices into the canonical tuple orders).
    pub tuple_map: Vec<usize>,
}

impl Homomorphism {
    /// Apply the valuation to a symbol (identity outside the map).
    pub fn apply(&self, s: Symbol) -> Symbol {
        if s.is_distinguished() {
            s
        } else {
            self.symbol_map.get(&s).copied().unwrap_or(s)
        }
    }

    /// Apply the valuation to a tagged tuple.
    pub fn apply_tuple(&self, t: &TaggedTuple) -> TaggedTuple {
        t.map_symbols(|s| self.apply(s))
    }
}

/// Below this target size (or when relation ids are absurdly sparse) the
/// flat O(|src| · |dst|) scan wins: its inner loop is a branch-predictable
/// integer compare, and bucket construction would cost more than it saves.
const BUCKET_MIN_DST: usize = 24;

/// Candidate target-tuple lists per source tuple.
///
/// A target tuple is a candidate for a source tuple when the tags agree and
/// every distinguished source entry meets the same distinguished entry in
/// the target (valuations fix distinguished symbols).
///
/// Destination tuples are pre-bucketed by relation tag (a counting sort
/// over the dense `RelId` indices), so construction is O(|src| · bucket)
/// rather than O(|src| · |dst|) — on large multirelational templates each
/// source tuple scans only the same-tag slice of the target. Buckets
/// preserve tuple order, so candidate lists (and therefore the backtracking
/// search) are identical to the flat scan's; small targets keep the flat
/// scan, which is faster there.
///
/// Public for the benchmark harness (`viewcap-bench` measures the bucketed
/// construction against the flat scan); decision procedures reach it
/// through [`find_homomorphism`] / [`template_contains`].
pub fn candidate_lists(src: &Template, dst: &Template) -> Option<Vec<Vec<usize>>> {
    let max_id = dst
        .tuples()
        .iter()
        .map(|t| t.rel().index())
        .max()
        .unwrap_or(0);
    if dst.len() < BUCKET_MIN_DST || max_id > 64 * dst.len() + 1024 {
        return candidate_lists_flat(src, dst);
    }
    // Counting sort of target tuple indices by relation tag:
    // `flat[offsets[r]..offsets[r + 1]]` lists the targets tagged `r`, in
    // tuple order.
    let mut offsets = vec![0usize; max_id + 2];
    for dt in dst.tuples() {
        offsets[dt.rel().index() + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut flat = vec![0usize; dst.len()];
    let mut cursor = offsets.clone();
    for (j, dt) in dst.tuples().iter().enumerate() {
        let r = dt.rel().index();
        flat[cursor[r]] = j;
        cursor[r] += 1;
    }

    let mut out = Vec::with_capacity(src.len());
    for st in src.tuples() {
        let r = st.rel().index();
        let bucket = if r <= max_id {
            &flat[offsets[r]..offsets[r + 1]]
        } else {
            &[]
        };
        let mut cands = Vec::new();
        'target: for &j in bucket {
            let dt = &dst.tuples()[j];
            for (a, b) in st.row().iter().zip(dt.row()) {
                if a.is_distinguished() && a != b {
                    continue 'target;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        out.push(cands);
    }
    Some(out)
}

/// The flat O(|src| · |dst|) scan used for small targets, and the single
/// semantic reference for the bucketed path — the conformance test and the
/// `viewcap-bench` delta benchmark both compare against this function
/// rather than keeping private copies.
pub fn candidate_lists_flat(src: &Template, dst: &Template) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(src.len());
    for st in src.tuples() {
        let mut cands = Vec::new();
        'target: for (j, dt) in dst.tuples().iter().enumerate() {
            if dt.rel() != st.rel() {
                continue;
            }
            for (a, b) in st.row().iter().zip(dt.row()) {
                if a.is_distinguished() && a != b {
                    continue 'target;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        out.push(cands);
    }
    Some(out)
}

/// Backtracking engine shared by existence and enumeration queries.
struct HomSearch<'a> {
    src: &'a Template,
    dst: &'a Template,
    /// Source tuple indices in search order (most constrained first).
    order: Vec<usize>,
    cands: Vec<Vec<usize>>,
    binding: Valuation,
    trail: Vec<Symbol>,
    assignment: Vec<usize>,
}

impl<'a> HomSearch<'a> {
    fn new(src: &'a Template, dst: &'a Template) -> Option<Self> {
        let cands = candidate_lists(src, dst)?;
        let mut order: Vec<usize> = (0..src.len()).collect();
        order.sort_by_key(|&i| cands[i].len());
        Some(HomSearch {
            src,
            dst,
            order,
            cands,
            binding: HashMap::new(),
            trail: Vec::new(),
            assignment: vec![usize::MAX; src.len()],
        })
    }

    /// Try mapping source tuple `i` onto target tuple `j`; on success returns
    /// the number of new bindings pushed on the trail.
    fn try_bind(&mut self, i: usize, j: usize) -> Option<usize> {
        let st = &self.src.tuples()[i];
        let dt = &self.dst.tuples()[j];
        let mut pushed = 0;
        for (a, b) in st.row().iter().zip(dt.row()) {
            if a.is_distinguished() {
                continue; // candidate list already enforced equality
            }
            match self.binding.get(a) {
                Some(&bound) if bound == *b => {}
                Some(_) => {
                    self.undo(pushed);
                    return None;
                }
                None => {
                    self.binding.insert(*a, *b);
                    self.trail.push(*a);
                    pushed += 1;
                }
            }
        }
        Some(pushed)
    }

    fn undo(&mut self, n: usize) {
        for _ in 0..n {
            let s = self.trail.pop().expect("trail underflow");
            self.binding.remove(&s);
        }
    }

    fn run<F>(&mut self, depth: usize, f: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Homomorphism) -> ControlFlow<()>,
    {
        if depth == self.order.len() {
            let hom = Homomorphism {
                symbol_map: self.binding.clone(),
                tuple_map: self.assignment.clone(),
            };
            return f(&hom);
        }
        let i = self.order[depth];
        // Candidate lists are tiny; clone to appease the borrow checker
        // outside the hot path (they are index vectors, not tuples).
        let cands = self.cands[i].clone();
        for j in cands {
            if let Some(pushed) = self.try_bind(i, j) {
                self.assignment[i] = j;
                let flow = self.run(depth + 1, f);
                self.assignment[i] = usize::MAX;
                self.undo(pushed);
                if flow.is_break() {
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    }
}

/// Find one homomorphism from `src` to `dst`, if any.
pub fn find_homomorphism(src: &Template, dst: &Template) -> Option<Homomorphism> {
    let mut found = None;
    let _ = for_each_homomorphism(src, dst, &mut |h| {
        found = Some(h.clone());
        ControlFlow::Break(())
    });
    found
}

/// Enumerate every homomorphism from `src` to `dst`.
///
/// The callback can stop the enumeration by returning
/// [`ControlFlow::Break`]. Returns whether enumeration was broken.
pub fn for_each_homomorphism<F>(src: &Template, dst: &Template, f: &mut F) -> ControlFlow<()>
where
    F: FnMut(&Homomorphism) -> ControlFlow<()>,
{
    match HomSearch::new(src, dst) {
        None => ControlFlow::Continue(()),
        Some(mut search) => search.run(0, f),
    }
}

/// Proposition 2.4.1: does `inner(α) ⊆ outer(α)` hold for *every*
/// instantiation `α`? Decided by searching for a homomorphism from `outer`
/// to `inner`.
///
/// Relations on different schemes are never comparable, so templates with
/// different TRS are never in the containment relation; the proposition
/// implicitly compares same-TRS templates and we guard accordingly (a
/// homomorphism can still exist across a TRS mismatch — it just proves
/// nothing about the mappings).
pub fn template_contains(outer: &Template, inner: &Template) -> bool {
    outer.trs() == inner.trs() && find_homomorphism(outer, inner).is_some()
}

/// Corollary 2.4.2 / Proposition 2.4.3: do `a` and `b` realize the same
/// mapping? Decided by homomorphisms in both directions.
pub fn equivalent_templates(a: &Template, b: &Template) -> bool {
    template_contains(a, b) && template_contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::{Catalog, RelId};

    fn setup() -> (Catalog, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        (cat, r)
    }

    /// Template for π_AB(R): row (0_A, 0_B, c₁).
    fn pi_ab(cat: &Catalog, r: RelId) -> Template {
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        Template::new(vec![TaggedTuple::new(
            r,
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, 1),
            ],
            cat,
        )
        .unwrap()])
        .unwrap()
    }

    /// Template for π_AB(R) ⋈ π_BC(R): rows (0,0,c₁) and (a₂,0,0).
    fn pi_ab_join_pi_bc(cat: &Catalog, r: RelId) -> Template {
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        Template::new(vec![
            TaggedTuple::new(
                r,
                vec![
                    Symbol::distinguished(a),
                    Symbol::distinguished(b),
                    Symbol::new(c, 1),
                ],
                cat,
            )
            .unwrap(),
            TaggedTuple::new(
                r,
                vec![
                    Symbol::new(a, 2),
                    Symbol::distinguished(b),
                    Symbol::distinguished(c),
                ],
                cat,
            )
            .unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let (cat, r) = setup();
        let t = pi_ab_join_pi_bc(&cat, r);
        let h = find_homomorphism(&t, &t).expect("identity exists");
        assert_eq!(h.tuple_map.len(), 2);
        // identity maps each tuple to itself under some hom (maybe others too)
        assert!(template_contains(&t, &t));
    }

    #[test]
    fn lossy_join_containment_direction() {
        // R ⊑ π_AB(R) ⋈ π_BC(R): the decomposition contains the original.
        // In template terms: R(α) ⊆ [π_AB ⋈ π_BC](α) for all α, so by
        // Prop 2.4.1 there is a hom from the join template to atom(R).
        let (cat, r) = setup();
        let atom = Template::atom(r, &cat);
        let join = pi_ab_join_pi_bc(&cat, r);
        assert!(template_contains(&join, &atom));
        // and NOT conversely (the join is lossy):
        assert!(!template_contains(&atom, &join));
        assert!(!equivalent_templates(&atom, &join));
    }

    #[test]
    fn trs_mismatch_blocks_containment_even_with_hom() {
        let (cat, r) = setup();
        let atom = Template::atom(r, &cat); // TRS {A,B,C}
        let proj = pi_ab(&cat, r); // TRS {A,B}
                                   // A raw homomorphism proj → atom exists (c₁ ↦ 0_C) …
        assert!(find_homomorphism(&proj, &atom).is_some());
        // … but the mappings land on different schemes, so neither
        // containment nor equivalence holds.
        assert!(!template_contains(&proj, &atom));
        assert!(!template_contains(&atom, &proj));
        assert!(!equivalent_templates(&atom, &proj));
    }

    #[test]
    fn homomorphism_may_merge_symbols() {
        // π_AB(R) ⋈ π_AB(R) must be equivalent to π_AB(R): the two rows can
        // merge by mapping their distinct c-symbols together.
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row = |cv: u32| {
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, cv),
            ]
        };
        let doubled = Template::new(vec![
            TaggedTuple::new(r, row(1), &cat).unwrap(),
            TaggedTuple::new(r, row(2), &cat).unwrap(),
        ])
        .unwrap();
        let single = pi_ab(&cat, r);
        assert!(equivalent_templates(&doubled, &single));
    }

    #[test]
    fn nondistinguished_may_map_to_distinguished() {
        // hom from π_AB(R) template (0,0,c1) to atom(R) (0,0,0): c1 ↦ 0_C.
        let (cat, r) = setup();
        let proj = pi_ab(&cat, r);
        let atom = Template::atom(r, &cat);
        let h = find_homomorphism(&proj, &atom).expect("c1 ↦ 0_C");
        let c = cat.lookup_attr("C").unwrap();
        assert_eq!(h.apply(Symbol::new(c, 1)), Symbol::distinguished(c));
    }

    #[test]
    fn enumeration_counts_all_homs() {
        // Two interchangeable rows: hom count from doubled to doubled is 4
        // (each row maps to either row independently — c-symbols are free).
        let (cat, r) = setup();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row = |cv: u32| {
            vec![
                Symbol::distinguished(a),
                Symbol::distinguished(b),
                Symbol::new(c, cv),
            ]
        };
        let doubled = Template::new(vec![
            TaggedTuple::new(r, row(1), &cat).unwrap(),
            TaggedTuple::new(r, row(2), &cat).unwrap(),
        ])
        .unwrap();
        let mut n = 0;
        let _ = for_each_homomorphism(&doubled, &doubled, &mut |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(n, 4);
    }

    #[test]
    fn bucketed_candidate_lists_match_the_flat_scan() {
        // The tag-bucketed construction must produce exactly the lists the
        // flat O(|src|·|dst|) reference scan produces, in the same order.
        let naive = candidate_lists_flat;
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B", "C"]).unwrap();
        let s = cat.relation("S", &["A", "B"]).unwrap();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let row_r = |av: u32, bv: u32, cv: u32| {
            TaggedTuple::new(
                r,
                vec![Symbol::new(a, av), Symbol::new(b, bv), Symbol::new(c, cv)],
                &cat,
            )
            .unwrap()
        };
        let row_s = |av: u32, bv: u32| {
            TaggedTuple::new(s, vec![Symbol::new(a, av), Symbol::new(b, bv)], &cat).unwrap()
        };
        let src = Template::new(vec![row_r(0, 1, 2), row_s(0, 3)]).unwrap();
        // Small target: exercises the flat path.
        let dst = Template::new(vec![
            row_r(0, 4, 5),
            row_r(0, 0, 6),
            row_s(0, 7),
            row_s(8, 9),
        ])
        .unwrap();
        assert_eq!(candidate_lists(&src, &dst), naive(&src, &dst));
        // Large target (past BUCKET_MIN_DST): exercises the counting-sort
        // path, which must produce the same lists in the same order.
        let mut rows = Vec::new();
        for v in 0..16u32 {
            rows.push(row_r(0, v + 10, v + 40));
            rows.push(row_s(0, v + 70));
        }
        let big = Template::new(rows).unwrap();
        assert!(big.len() >= BUCKET_MIN_DST);
        assert_eq!(candidate_lists(&src, &big), naive(&src, &big));
        // And a no-candidate case returns None both ways.
        let only_s = Template::new(vec![row_s(0, 1)]).unwrap();
        let only_r = Template::new(vec![row_r(0, 1, 2)]).unwrap();
        assert_eq!(candidate_lists(&only_s, &only_r), naive(&only_s, &only_r));
        assert_eq!(candidate_lists(&only_s, &only_r), None);
    }

    #[test]
    fn tags_must_match() {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A"]).unwrap();
        let s = cat.relation("S", &["A"]).unwrap();
        let tr = Template::atom(r, &cat);
        let ts = Template::atom(s, &cat);
        assert!(!template_contains(&tr, &ts));
        assert!(!template_contains(&ts, &tr));
    }
}
