//! Durable, content-addressed snapshots of [`CandidateSpace`] enumeration
//! levels.
//!
//! A candidate space over a fixed atom sequence is goal-independent and —
//! now that level expansion is content-ordered (see
//! `search::canonical_proper_subsets`) — *catalog-declaration-order
//! independent*: any catalog declaring relations with the same ordered
//! sequence of target relation schemes builds byte-for-byte the same
//! levels. That makes the space worth persisting once and sharing across a
//! fleet: a fresh process loads the snapshot instead of re-enumerating.
//!
//! **Addressing.** A snapshot is keyed by [`space_digest`]: a 128-bit
//! content hash of the search options plus, per atom in order, the sorted
//! attribute *names* of its scheme. Deliberately independent of relation
//! names (scratch λ names embed mint counters), of query bodies, and of
//! search limits (level content is limit-independent) — any two view
//! contexts whose λ-atoms have the same TRS sequence share one snapshot.
//!
//! **Format.** Same discipline as the engine's verdict-cache persist
//! format: magic + version + FNV-1a checksum over the payload; an
//! attribute *name* table so symbols are portable across catalogs;
//! relations referenced *positionally* (index into the atom sequence).
//! Per level the snapshot stores exactly what [`CandidateSpace`] cannot
//! rederive cheaply — the deduplicated parts and joins, each an
//! `(expression, reduced template)` pair in enumeration order, plus the
//! cumulative visit count. Everything else (dedup buckets, root lists,
//! per-level TRS tries, stats) is rebuilt by *replaying* the commit path
//! on load, so a loaded space is indistinguishable from a freshly built
//! one — and the replay doubles as semantic validation: a tampered
//! snapshot whose templates stop being pairwise-inequivalent is rejected.
//!
//! Loads are strict: short buffers, bad magic/version/checksum, malformed
//! structures, absurd counts, and snapshots whose atom signature or
//! options disagree with the loading space all fail cleanly with a
//! [`SnapshotError`] — never a panic, never a silently wrong space.

use crate::index::{scheme_key, ByteTrie};
use crate::search::{CandidateSpace, Level, Part, SearchOptions, SearchStats};
use crate::template::{TaggedTuple, Template};
use std::fmt;
use viewcap_base::{AttrId, Catalog, ContentHasher, RelId, Scheme, Symbol};
use viewcap_expr::Expr;

/// File magic for a single space snapshot.
pub const SPACE_MAGIC: &[u8; 8] = b"VCAPSPCE";
/// Snapshot format version.
pub const SPACE_FORMAT_VERSION: u32 = 1;

/// Maximum expression nesting depth accepted on load.
const MAX_EXPR_DEPTH: usize = 64;

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the structure it promised.
    Truncated(&'static str),
    /// The magic bytes are not a space snapshot's.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The payload checksum does not match.
    BadChecksum,
    /// Structurally invalid content (bad counts, invalid templates,
    /// replay contradictions).
    Malformed(&'static str),
    /// A valid snapshot that does not describe *this* space (atom
    /// signature or options disagree).
    Mismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated(what) => write!(f, "space snapshot truncated: {what}"),
            SnapshotError::BadMagic => write!(f, "not a space snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(
                f,
                "unsupported space snapshot version {v} (expected {SPACE_FORMAT_VERSION})"
            ),
            SnapshotError::BadChecksum => write!(f, "space snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed space snapshot: {what}"),
            SnapshotError::Mismatch(what) => {
                write!(f, "space snapshot does not match this space: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over `bytes` (the verdict-cache persist format uses the same
/// checksum; keeping one algorithm keeps tooling simple).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Content digest addressing a space: options + the ordered sequence of
/// atom target relation schemes, by attribute *name*.
///
/// Independent of attribute/relation interning order, of the atoms'
/// (scratch) names, and of later catalog growth — two catalogs declaring
/// the same relations in any order agree on every view's space digest.
pub fn space_digest(catalog: &Catalog, atoms: &[RelId], options: SearchOptions) -> u128 {
    let mut h = ContentHasher::new();
    h.word(0x5350_4143_4553_4E41); // domain tag: space snapshot
    h.word(options.semantic_dedup as u64 | ((options.reduce_intermediates as u64) << 1));
    h.word(atoms.len() as u64);
    for &r in atoms {
        let scheme = catalog.scheme_of(r);
        let mut names: Vec<&str> = scheme.iter().map(|a| catalog.attr_name(a)).collect();
        names.sort_unstable();
        h.word(names.len() as u64);
        for name in names {
            h.str(name);
        }
    }
    h.finish()
}

// ------------------------------------------------------------- serializing

/// First-encounter-order attribute-name interner for one snapshot.
struct AttrTable<'a> {
    catalog: &'a Catalog,
    names: Vec<&'a str>,
    refs: std::collections::HashMap<AttrId, u32>,
}

impl<'a> AttrTable<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        AttrTable {
            catalog,
            names: Vec::new(),
            refs: std::collections::HashMap::new(),
        }
    }

    fn attr_ref(&mut self, a: AttrId) -> u32 {
        if let Some(&r) = self.refs.get(&a) {
            return r;
        }
        let r = self.names.len() as u32;
        self.names.push(self.catalog.attr_name(a));
        self.refs.insert(a, r);
        r
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_scheme(out: &mut Vec<u8>, s: &Scheme, attrs: &mut AttrTable<'_>) {
    // Name order, not AttrId order: canonical bytes whatever the catalog's
    // interning order was.
    let cat = attrs.catalog;
    let mut refs: Vec<(&str, AttrId)> = s.iter().map(|a| (cat.attr_name(a), a)).collect();
    refs.sort_unstable_by_key(|&(name, _)| name);
    put_u32(out, refs.len() as u32);
    for (_, a) in refs {
        put_u32(out, attrs.attr_ref(a));
    }
}

fn put_expr(
    out: &mut Vec<u8>,
    e: &Expr,
    atom_pos: &std::collections::HashMap<RelId, u32>,
    attrs: &mut AttrTable<'_>,
) {
    match e {
        Expr::Rel(r) => {
            out.push(0);
            put_u32(out, atom_pos[r]);
        }
        Expr::Project(child, x) => {
            out.push(1);
            put_scheme(out, x, attrs);
            put_expr(out, child, atom_pos, attrs);
        }
        Expr::Join(es) => {
            out.push(2);
            put_u32(out, es.len() as u32);
            for child in es {
                put_expr(out, child, atom_pos, attrs);
            }
        }
    }
}

fn put_template(
    out: &mut Vec<u8>,
    t: &Template,
    atom_pos: &std::collections::HashMap<RelId, u32>,
    attrs: &mut AttrTable<'_>,
) {
    put_u32(out, t.tuples().len() as u32);
    for tt in t.tuples() {
        put_u32(out, atom_pos[&tt.rel()]);
        put_u32(out, tt.row().len() as u32);
        for sym in tt.row() {
            put_u32(out, attrs.attr_ref(sym.attr()));
            put_u32(out, sym.ord());
        }
    }
}

/// Serialize a space's committed levels into one self-contained snapshot.
///
/// `catalog` must be the catalog the space's atoms live in (the same one
/// every probe passes). The result round-trips through [`load_space`].
pub fn save_space(space: &CandidateSpace, catalog: &Catalog) -> Vec<u8> {
    let mut attrs = AttrTable::new(catalog);
    let atom_pos: std::collections::HashMap<RelId, u32> = space
        .atoms
        .iter()
        .enumerate()
        .map(|(i, &r)| (r, i as u32))
        .collect();

    // Body first (interning attribute refs as it goes), table after.
    let mut body = Vec::new();
    body.push(
        space.options.semantic_dedup as u8 | ((space.options.reduce_intermediates as u8) << 1),
    );
    put_u32(&mut body, space.atoms.len() as u32);
    for &r in &space.atoms {
        put_scheme(&mut body, catalog.scheme_of(r), &mut attrs);
    }
    put_u64(&mut body, space.stats.dedup_hits);
    put_u32(&mut body, space.levels.len() as u32);
    for (k, level) in space.levels.iter().enumerate() {
        put_u64(&mut body, level.visits_after);
        let parts = &space.parts[k + 1];
        put_u32(&mut body, parts.len() as u32);
        for p in parts {
            put_expr(&mut body, &p.expr, &atom_pos, &mut attrs);
            put_template(&mut body, &p.tpl, &atom_pos, &mut attrs);
        }
        put_u32(&mut body, level.joins.len() as u32);
        for j in &level.joins {
            put_expr(&mut body, &j.expr, &atom_pos, &mut attrs);
            put_template(&mut body, &j.tpl, &atom_pos, &mut attrs);
        }
    }

    let mut payload = Vec::with_capacity(body.len() + 64);
    put_u32(&mut payload, attrs.names.len() as u32);
    for name in &attrs.names {
        put_u32(&mut payload, name.len() as u32);
        payload.extend_from_slice(name.as_bytes());
    }
    payload.extend_from_slice(&body);

    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(SPACE_MAGIC);
    put_u32(&mut out, SPACE_FORMAT_VERSION);
    put_u64(&mut out, fnv1a64(&payload));
    out.extend_from_slice(&payload);
    out
}

// ------------------------------------------------------------ deserializing

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return Err(SnapshotError::Truncated(what));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A count whose elements occupy at least `min_bytes` each — rejects
    /// counts the remaining buffer cannot possibly hold, so corrupt counts
    /// fail fast instead of attempting absurd allocations.
    fn count(&mut self, min_bytes: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.bytes.len() - self.pos {
            return Err(SnapshotError::Truncated(what));
        }
        Ok(n)
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

struct LoadTables {
    /// Snapshot attr ref → live AttrId.
    attrs: Vec<AttrId>,
    /// Snapshot atom position → live RelId.
    atoms: Vec<RelId>,
}

fn read_scheme(r: &mut Reader<'_>, tables: &LoadTables) -> Result<Scheme, SnapshotError> {
    let n = r.count(4, "scheme attrs")?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let aref = r.u32("scheme attr ref")? as usize;
        attrs.push(
            *tables
                .attrs
                .get(aref)
                .ok_or(SnapshotError::Malformed("attr ref out of range"))?,
        );
    }
    Scheme::new(attrs).map_err(|_| SnapshotError::Malformed("empty or invalid scheme"))
}

fn read_expr(
    r: &mut Reader<'_>,
    tables: &LoadTables,
    catalog: &Catalog,
    depth: usize,
) -> Result<Expr, SnapshotError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(SnapshotError::Malformed("expression nested too deep"));
    }
    match r.u8("expr tag")? {
        0 => {
            let pos = r.u32("atom ref")? as usize;
            let rel = *tables
                .atoms
                .get(pos)
                .ok_or(SnapshotError::Malformed("atom ref out of range"))?;
            Ok(Expr::rel(rel))
        }
        1 => {
            let x = read_scheme(r, tables)?;
            let child = read_expr(r, tables, catalog, depth + 1)?;
            Expr::project(child, x, catalog)
                .map_err(|_| SnapshotError::Malformed("projection outside child TRS"))
        }
        2 => {
            let n = r.count(2, "join children")?;
            if n < 2 {
                return Err(SnapshotError::Malformed("join with fewer than 2 children"));
            }
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(read_expr(r, tables, catalog, depth + 1)?);
            }
            Expr::join(children).map_err(|_| SnapshotError::Malformed("invalid join"))
        }
        _ => Err(SnapshotError::Malformed("unknown expression tag")),
    }
}

fn read_template(
    r: &mut Reader<'_>,
    tables: &LoadTables,
    catalog: &Catalog,
) -> Result<Template, SnapshotError> {
    let n = r.count(8, "template tuples")?;
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let pos = r.u32("tuple atom ref")? as usize;
        let rel = *tables
            .atoms
            .get(pos)
            .ok_or(SnapshotError::Malformed("tuple atom ref out of range"))?;
        let arity = r.count(8, "tuple row")?;
        let mut row = Vec::with_capacity(arity);
        for _ in 0..arity {
            let aref = r.u32("symbol attr ref")? as usize;
            let attr = *tables
                .attrs
                .get(aref)
                .ok_or(SnapshotError::Malformed("symbol attr ref out of range"))?;
            let ord = r.u32("symbol ord")?;
            row.push(Symbol::new(attr, ord));
        }
        // Rows are positional against the relation's scheme, which sorts by
        // the *loading* catalog's AttrIds — a different order than the
        // snapshotting catalog's. Symbols carry their attribute, so re-sort.
        row.sort_unstable_by_key(|sym: &Symbol| sym.attr());
        tuples.push(
            TaggedTuple::new(rel, row, catalog)
                .map_err(|_| SnapshotError::Malformed("invalid tagged tuple"))?,
        );
    }
    Template::new(tuples).map_err(|_| SnapshotError::Malformed("invalid template"))
}

/// Load a snapshot into a fresh [`CandidateSpace`] over `atoms` in
/// `catalog`.
///
/// The snapshot must describe a space with the same atom signature (the
/// ordered sequence of TRS attribute-name sets) and the same options;
/// anything else is a [`SnapshotError::Mismatch`]. Dedup state, root
/// lists, per-level TRS indexes, and stats are rebuilt by replaying the
/// commit path over the stored parts and joins, so every probe of the
/// returned space behaves exactly as it would on a freshly enumerated
/// one.
pub fn load_space(
    bytes: &[u8],
    catalog: &Catalog,
    atoms: &[RelId],
    options: SearchOptions,
) -> Result<CandidateSpace, SnapshotError> {
    if bytes.len() < 20 {
        return Err(SnapshotError::Truncated("header"));
    }
    if &bytes[..8] != SPACE_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SPACE_FORMAT_VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let checksum = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[20..];
    if fnv1a64(payload) != checksum {
        return Err(SnapshotError::BadChecksum);
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };

    // Attribute name table, resolved against the live catalog.
    let n_attrs = r.count(4, "attr table")?;
    let mut attr_ids = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let len = r.count(1, "attr name length")?;
        let name = std::str::from_utf8(r.take(len, "attr name")?)
            .map_err(|_| SnapshotError::Malformed("attr name not UTF-8"))?;
        attr_ids.push(
            catalog
                .lookup_attr(name)
                .map_err(|_| SnapshotError::Mismatch("attribute not in this catalog"))?,
        );
    }
    let tables = LoadTables {
        attrs: attr_ids,
        atoms: atoms.to_vec(),
    };

    // Options + atom signature must agree with the loading space.
    let flags = r.u8("options")?;
    if flags & !0b11 != 0 {
        return Err(SnapshotError::Malformed("unknown option bits"));
    }
    let snap_options = SearchOptions {
        semantic_dedup: flags & 1 != 0,
        reduce_intermediates: flags & 2 != 0,
    };
    if snap_options.semantic_dedup != options.semantic_dedup
        || snap_options.reduce_intermediates != options.reduce_intermediates
    {
        return Err(SnapshotError::Mismatch("search options differ"));
    }
    let n_atoms = r.count(4, "atom signatures")?;
    if n_atoms != atoms.len() {
        return Err(SnapshotError::Mismatch("atom count differs"));
    }
    for &rel in atoms {
        let scheme = read_scheme(&mut r, &tables)?;
        if &scheme != catalog.scheme_of(rel) {
            return Err(SnapshotError::Mismatch("atom scheme differs"));
        }
    }
    let dedup_hits = r.u64("dedup hits")?;

    // Replay the levels through the same dedup + commit path the builder
    // uses; any replay contradiction (a stored candidate that dedups away)
    // means the snapshot does not describe a canonical enumeration.
    let mut space = CandidateSpace::new(atoms, options);
    let mut scratch = SearchStats::default();
    let n_levels = r.count(12, "levels")?;
    for _ in 0..n_levels {
        let visits_after = r.u64("level visits")?;
        if let Some(last) = space.levels.last() {
            if visits_after < last.visits_after {
                return Err(SnapshotError::Malformed("level visit counts decreasing"));
            }
        }
        let n_parts = r.count(9, "level parts")?;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let expr = read_expr(&mut r, &tables, catalog, 0)?;
            let tpl = read_template(&mut r, &tables, catalog)?;
            if space.part_dedup.seen(&tpl, &mut scratch) {
                return Err(SnapshotError::Malformed("duplicate part in snapshot"));
            }
            parts.push(Part { expr, tpl });
        }
        let n_joins = r.count(9, "level joins")?;
        let mut joins = Vec::with_capacity(n_joins);
        for _ in 0..n_joins {
            let expr = read_expr(&mut r, &tables, catalog, 0)?;
            let tpl = read_template(&mut r, &tables, catalog)?;
            if space.join_dedup.seen(&tpl, &mut scratch) {
                return Err(SnapshotError::Malformed("duplicate join in snapshot"));
            }
            joins.push(Part { expr, tpl });
        }
        // Commit exactly as `build_level` does.
        space.stats.parts_kept += parts.len() as u64;
        space.stats.combos = visits_after;
        let mut roots: Vec<Part> = Vec::new();
        let mut roots_by_trs = ByteTrie::new();
        for cand in parts.iter().chain(joins.iter()) {
            if !space.root_dedup.seen(&cand.tpl, &mut space.stats) {
                space.stats.roots_visited += 1;
                let idx = roots.len() as u32;
                roots_by_trs.insert(&scheme_key(&cand.tpl.trs()), idx);
                roots.push(Part {
                    expr: cand.expr.clone(),
                    tpl: cand.tpl.clone(),
                });
            }
        }
        space.levels.push(Level {
            visits_after,
            parts_kept: parts.len(),
            roots,
            roots_by_trs,
            joins,
        });
        space.parts.push(parts);
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed("trailing bytes after last level"));
    }
    space.part_dedup.commit();
    space.join_dedup.commit();
    space.root_dedup.commit();
    // The builder's hit count spans part, join, *and* root dedup; the
    // replay only re-observes the root hits, so restore the recorded
    // total outright.
    space.stats.dedup_hits = dedup_hits;
    let _ = scratch;
    Ok(space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchLimits;
    use std::ops::ControlFlow;

    fn setup() -> (Catalog, Vec<RelId>) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, vec![r, s])
    }

    fn built_space(cat: &Catalog, atoms: &[RelId], max_atoms: usize) -> CandidateSpace {
        let mut space = CandidateSpace::new(atoms, SearchOptions::default());
        space
            .probe(
                cat,
                max_atoms,
                None,
                &SearchLimits::default(),
                &mut |_, _| ControlFlow::Continue(()),
            )
            .unwrap();
        space
    }

    fn roots_of(cat: &Catalog, space: &mut CandidateSpace, max_atoms: usize) -> Vec<String> {
        let mut out = Vec::new();
        space
            .probe(
                cat,
                max_atoms,
                None,
                &SearchLimits::default(),
                &mut |e, _| {
                    out.push(format!("{e:?}"));
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
        out
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let (cat, atoms) = setup();
        let mut original = built_space(&cat, &atoms, 3);
        let bytes = save_space(&original, &cat);
        let mut loaded = load_space(&bytes, &cat, &atoms, SearchOptions::default()).unwrap();
        assert_eq!(loaded.built_levels(), original.built_levels());
        assert_eq!(loaded.stats(), original.stats());
        assert_eq!(
            roots_of(&cat, &mut loaded, 3),
            roots_of(&cat, &mut original, 3)
        );
        // Saving the loaded space is byte-identical: the round trip is a
        // fixed point.
        assert_eq!(save_space(&loaded, &cat), bytes);
    }

    #[test]
    fn loaded_space_extends_identically_to_fresh() {
        let (cat, atoms) = setup();
        let shallow = built_space(&cat, &atoms, 2);
        let bytes = save_space(&shallow, &cat);
        let mut loaded = load_space(&bytes, &cat, &atoms, SearchOptions::default()).unwrap();
        // Extending the loaded space one more level matches a fresh bound-3
        // enumeration exactly.
        let mut fresh = built_space(&cat, &atoms, 3);
        assert_eq!(
            roots_of(&cat, &mut loaded, 3),
            roots_of(&cat, &mut fresh, 3)
        );
        assert_eq!(loaded.stats(), fresh.stats());
    }

    #[test]
    fn digest_ignores_declaration_order_but_not_content() {
        let (cat1, atoms1) = setup();
        // Same relations, permuted declarations.
        let mut cat2 = Catalog::new();
        let s = cat2.relation("S", &["C", "B"]).unwrap();
        let r = cat2.relation("R", &["B", "A"]).unwrap();
        let atoms2 = vec![r, s];
        let opts = SearchOptions::default();
        assert_eq!(
            space_digest(&cat1, &atoms1, opts),
            space_digest(&cat2, &atoms2, opts)
        );
        // Different atom order → different digest.
        let swapped = vec![s, r];
        assert_ne!(
            space_digest(&cat2, &atoms2, opts),
            space_digest(&cat2, &swapped, opts)
        );
        // Different options → different digest.
        assert_ne!(
            space_digest(&cat1, &atoms1, opts),
            space_digest(
                &cat1,
                &atoms1,
                SearchOptions {
                    semantic_dedup: false,
                    reduce_intermediates: true
                }
            )
        );
    }

    #[test]
    fn snapshots_port_across_permuted_catalogs() {
        let (cat1, atoms1) = setup();
        let mut s1 = built_space(&cat1, &atoms1, 3);
        let bytes = save_space(&s1, &cat1);

        let mut cat2 = Catalog::new();
        let s = cat2.relation("S", &["C", "B"]).unwrap();
        let r = cat2.relation("R", &["B", "A"]).unwrap();
        let atoms2 = vec![r, s];
        let mut loaded = load_space(&bytes, &cat2, &atoms2, SearchOptions::default()).unwrap();
        let mut fresh2 = built_space(&cat2, &atoms2, 3);
        // The ported space is exactly what cat2 would have built cold —
        // same witnesses rendered against cat2's names.
        let rendered = |space: &mut CandidateSpace, cat: &Catalog| {
            let mut out = Vec::new();
            space
                .probe(cat, 3, None, &SearchLimits::default(), &mut |e, _| {
                    out.push(viewcap_expr::display::display_expr(e, cat));
                    ControlFlow::Continue(())
                })
                .unwrap();
            out
        };
        assert_eq!(rendered(&mut loaded, &cat2), rendered(&mut fresh2, &cat2));
        assert_eq!(rendered(&mut loaded, &cat2), rendered(&mut s1, &cat1));
        assert_eq!(loaded.stats(), fresh2.stats());
    }

    #[test]
    fn mismatched_spaces_are_rejected() {
        let (cat, atoms) = setup();
        let space = built_space(&cat, &atoms, 2);
        let bytes = save_space(&space, &cat);
        // Wrong options.
        assert!(matches!(
            load_space(
                &bytes,
                &cat,
                &atoms,
                SearchOptions {
                    semantic_dedup: false,
                    reduce_intermediates: true
                }
            ),
            Err(SnapshotError::Mismatch(_))
        ));
        // Wrong atom count.
        assert!(matches!(
            load_space(&bytes, &cat, &atoms[..1], SearchOptions::default()),
            Err(SnapshotError::Mismatch(_))
        ));
        // Swapped atoms → schemes disagree positionally.
        let swapped = vec![atoms[1], atoms[0]];
        assert!(matches!(
            load_space(&bytes, &cat, &swapped, SearchOptions::default()),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let (cat, atoms) = setup();
        let space = built_space(&cat, &atoms, 2);
        let bytes = save_space(&space, &cat);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            load_space(&bad, &cat, &atoms, SearchOptions::default()),
            Err(SnapshotError::BadMagic)
        ));
        // Bad version.
        let mut bad = bytes.clone();
        bad[8] = 0xFF;
        assert!(matches!(
            load_space(&bad, &cat, &atoms, SearchOptions::default()),
            Err(SnapshotError::BadVersion(_))
        ));
        // Flipped payload byte → checksum catches it.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            load_space(&bad, &cat, &atoms, SearchOptions::default()),
            Err(SnapshotError::BadChecksum)
        ));
        // Truncations never panic.
        for len in 0..bytes.len() {
            assert!(load_space(&bytes[..len], &cat, &atoms, SearchOptions::default()).is_err());
        }
    }
}
