//! Tagged tuples and templates (paper, Section 2.1).
//!
//! ## Representation
//!
//! A paper tagged tuple `(t, η)` is a *total* tuple over the universe `U`
//! together with a tag, subject to:
//!
//! 1. distinguished symbols occur only at attributes of `R(η)`;
//! 2. a symbol shared by two distinct tagged tuples occurs only at
//!    attributes of `R(η₁) ∩ R(η₂)`;
//! 3. some tagged tuple carries a distinguished symbol.
//!
//! Conditions (1)–(2) force every entry outside `R(η)` to be a fresh
//! nondistinguished symbol that no embedding constraint ever inspects, so a
//! [`TaggedTuple`] stores only the restriction `t[R(η)]`. That makes
//! conditions (1)–(2) unrepresentable; only (3) needs a runtime check, in
//! [`Template::new`]. Because a [`viewcap_base::Symbol`] carries its
//! attribute, a row is simply the scheme-aligned vector of symbols.
//!
//! Templates are canonical *sets*: construction sorts and deduplicates, so
//! structural equality is set equality and tuple indices are stable.

use crate::error::TemplateError;
use crate::index::TupleIndex;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use viewcap_base::{Catalog, RelId, Scheme, Symbol, SymbolGen};

/// A tagged tuple `(t, η)`: the tag and the row `t[R(η)]`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaggedTuple {
    rel: RelId,
    row: Vec<Symbol>,
}

impl TaggedTuple {
    /// Build a tagged tuple, validating the row against `R(η)`.
    pub fn new(rel: RelId, row: Vec<Symbol>, catalog: &Catalog) -> Result<Self, TemplateError> {
        let scheme = catalog.scheme_of(rel);
        let ok = row.len() == scheme.len()
            && row
                .iter()
                .zip(scheme.iter())
                .all(|(sym, attr)| sym.attr() == attr);
        if !ok {
            return Err(TemplateError::RowMismatch { rel });
        }
        Ok(TaggedTuple { rel, row })
    }

    /// Reassemble a tagged tuple from raw parts **without** catalog
    /// validation.
    ///
    /// Exists for deserialization (the verdict-cache persistence layer):
    /// cached witnesses mention scratch names `λᵢ` that were minted in a
    /// decision procedure's private catalog clone, so no catalog the loader
    /// holds can validate them. Callers outside a deserializer should use
    /// [`TaggedTuple::new`].
    pub fn from_raw_parts(rel: RelId, row: Vec<Symbol>) -> Self {
        TaggedTuple { rel, row }
    }

    /// The all-distinguished tagged tuple for `η` — the template of the
    /// atomic expression `η` (Algorithm 2.1.1(i)).
    pub fn all_distinguished(rel: RelId, catalog: &Catalog) -> Self {
        TaggedTuple {
            rel,
            row: catalog
                .scheme_of(rel)
                .iter()
                .map(Symbol::distinguished)
                .collect(),
        }
    }

    /// The tag `η`.
    #[inline]
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The row `t[R(η)]`, scheme-aligned.
    #[inline]
    pub fn row(&self) -> &[Symbol] {
        &self.row
    }

    /// The symbol at attribute `a`, if `a ∈ R(η)`.
    ///
    /// Linear scan: rows are a handful of symbols wide.
    pub fn symbol_at(&self, a: viewcap_base::AttrId) -> Option<Symbol> {
        self.row.iter().copied().find(|s| s.attr() == a)
    }

    /// Apply a symbol mapping to the row.
    pub fn map_symbols<F: FnMut(Symbol) -> Symbol>(&self, mut f: F) -> TaggedTuple {
        TaggedTuple {
            rel: self.rel,
            row: self.row.iter().map(|&s| f(s)).collect(),
        }
    }

    /// Does any entry hold a distinguished symbol?
    pub fn has_distinguished(&self) -> bool {
        self.row.iter().any(|s| s.is_distinguished())
    }
}

/// A multirelational template: a canonical, nonempty set of tagged tuples
/// containing at least one distinguished symbol.
pub struct Template {
    tuples: Vec<TaggedTuple>,
    /// Byte-trie candidate index over the tuples, built on first
    /// homomorphism search against this template ([`Template::tuple_index`]).
    /// Derived data: invisible to equality/ordering/hashing, shared (not
    /// rebuilt) by clones. Templates are canonical sets, so the index is a
    /// pure function of `tuples`.
    index: OnceLock<Arc<TupleIndex>>,
}

impl Clone for Template {
    fn clone(&self) -> Self {
        let index = OnceLock::new();
        if let Some(built) = self.index.get() {
            let _ = index.set(Arc::clone(built));
        }
        Template {
            tuples: self.tuples.clone(),
            index,
        }
    }
}

impl PartialEq for Template {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for Template {}

impl Hash for Template {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tuples.hash(state);
    }
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Template")
            .field("tuples", &self.tuples)
            .finish()
    }
}

impl Template {
    /// Build a template from tagged tuples (sorted, deduplicated), checking
    /// nonemptiness and condition (iii).
    pub fn new(mut tuples: Vec<TaggedTuple>) -> Result<Self, TemplateError> {
        if tuples.is_empty() {
            return Err(TemplateError::EmptyTemplate);
        }
        tuples.sort();
        tuples.dedup();
        if !tuples.iter().any(TaggedTuple::has_distinguished) {
            return Err(TemplateError::NoDistinguishedSymbol);
        }
        Ok(Template {
            tuples,
            index: OnceLock::new(),
        })
    }

    /// The template of the atomic expression `η`: one all-distinguished row.
    pub fn atom(rel: RelId, catalog: &Catalog) -> Template {
        Template {
            tuples: vec![TaggedTuple::all_distinguished(rel, catalog)],
            index: OnceLock::new(),
        }
    }

    /// The byte-trie candidate index over this template's tuples, built on
    /// first use and shared by clones (see [`crate::index`]).
    pub fn tuple_index(&self) -> &TupleIndex {
        self.index.get_or_init(|| Arc::new(TupleIndex::build(self)))
    }

    /// The tagged tuples, sorted canonically.
    #[inline]
    pub fn tuples(&self) -> &[TaggedTuple] {
        &self.tuples
    }

    /// Number of tagged tuples (`#(T)` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Templates are never empty, but clippy insists.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `TRS(T)`: attributes at which some tuple holds a distinguished
    /// symbol.
    pub fn trs(&self) -> Scheme {
        Scheme::collect(
            self.tuples
                .iter()
                .flat_map(|t| t.row())
                .filter(|s| s.is_distinguished())
                .map(|s| s.attr()),
        )
    }

    /// `RN(T)`: the set of tags.
    pub fn rel_names(&self) -> BTreeSet<RelId> {
        self.tuples.iter().map(TaggedTuple::rel).collect()
    }

    /// All symbols occurring in the template (with repetition).
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.tuples.iter().flat_map(|t| t.row().iter().copied())
    }

    /// The distinct nondistinguished symbols, sorted.
    pub fn nondistinguished_symbols(&self) -> Vec<Symbol> {
        let set: BTreeSet<Symbol> = self.symbols().filter(|s| !s.is_distinguished()).collect();
        set.into_iter().collect()
    }

    /// A [`SymbolGen`] that will never collide with this template.
    pub fn symbol_gen(&self) -> SymbolGen {
        let mut g = SymbolGen::new();
        g.reserve_all(self.symbols());
        g
    }

    /// Index of a tagged tuple within the canonical order.
    pub fn index_of(&self, t: &TaggedTuple) -> Option<usize> {
        self.tuples.binary_search(t).ok()
    }

    /// The subtemplate keeping exactly the given indices.
    ///
    /// Fails (returns the constructor's error) if the selection is empty or
    /// loses every distinguished symbol.
    pub fn subtemplate(&self, keep: &[usize]) -> Result<Template, TemplateError> {
        Template::new(keep.iter().map(|&i| self.tuples[i].clone()).collect())
    }

    /// The template with tuple `i` removed.
    pub fn without(&self, i: usize) -> Result<Template, TemplateError> {
        let mut tuples = self.tuples.clone();
        tuples.remove(i);
        Template::new(tuples)
    }

    /// Relabel every nondistinguished symbol with a fresh one from `gen`
    /// (consistently: equal symbols stay equal). Used to make templates
    /// symbol-disjoint before a join (Algorithm 2.1.1(iii)).
    pub fn relabel_disjoint(&self, gen: &mut SymbolGen) -> Template {
        let mut map = std::collections::HashMap::new();
        let tuples = self
            .tuples
            .iter()
            .map(|t| {
                t.map_symbols(|s| {
                    if s.is_distinguished() {
                        s
                    } else {
                        *map.entry(s).or_insert_with(|| gen.fresh(s.attr()))
                    }
                })
            })
            .collect();
        Template::new(tuples).expect("relabeling preserves validity")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, RelId, RelId) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        (cat, r, s)
    }

    #[test]
    fn atom_template_is_all_distinguished() {
        let (cat, r, _) = setup();
        let t = Template::atom(r, &cat);
        assert_eq!(t.len(), 1);
        assert_eq!(t.trs(), *cat.scheme_of(r));
        assert!(t.rel_names().contains(&r));
    }

    #[test]
    fn tagged_tuple_validates_row() {
        let (cat, r, _) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let b = cat.lookup_attr("B").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        assert!(
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).is_ok()
        );
        // wrong width
        assert!(TaggedTuple::new(r, vec![Symbol::distinguished(a)], &cat).is_err());
        // wrong column
        assert!(
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(c, 1)], &cat).is_err()
        );
    }

    #[test]
    fn template_requires_a_distinguished_symbol() {
        let (cat, r, _) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let b = cat.lookup_attr("B").unwrap();
        let nd = TaggedTuple::new(r, vec![Symbol::new(a, 1), Symbol::new(b, 1)], &cat).unwrap();
        assert_eq!(
            Template::new(vec![nd]).unwrap_err(),
            TemplateError::NoDistinguishedSymbol
        );
        assert_eq!(
            Template::new(vec![]).unwrap_err(),
            TemplateError::EmptyTemplate
        );
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let (cat, r, s) = setup();
        let t1 = TaggedTuple::all_distinguished(r, &cat);
        let t2 = TaggedTuple::all_distinguished(s, &cat);
        let t = Template::new(vec![t2.clone(), t1.clone(), t2.clone()]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.index_of(&t1), Some(0));
        assert_eq!(t.index_of(&t2), Some(1));
    }

    #[test]
    fn trs_collects_distinguished_attrs() {
        let (cat, r, s) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let b = cat.lookup_attr("B").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        // (0_A, b1) tagged R and (b1? no — B column needs B symbols) …
        let t1 =
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap();
        let t2 =
            TaggedTuple::new(s, vec![Symbol::new(b, 1), Symbol::distinguished(c)], &cat).unwrap();
        let t = Template::new(vec![t1, t2]).unwrap();
        assert_eq!(t.trs(), Scheme::new([a, c]).unwrap());
        assert_eq!(t.nondistinguished_symbols(), vec![Symbol::new(b, 1)]);
    }

    #[test]
    fn relabel_disjoint_preserves_sharing_structure() {
        let (cat, r, s) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let b = cat.lookup_attr("B").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        let t1 =
            TaggedTuple::new(r, vec![Symbol::distinguished(a), Symbol::new(b, 1)], &cat).unwrap();
        let t2 =
            TaggedTuple::new(s, vec![Symbol::new(b, 1), Symbol::distinguished(c)], &cat).unwrap();
        let t = Template::new(vec![t1, t2]).unwrap();
        let mut gen = t.symbol_gen();
        let relabeled = t.relabel_disjoint(&mut gen);
        // Still two tuples, b1 became some fresh shared symbol.
        assert_eq!(relabeled.len(), 2);
        let nd = relabeled.nondistinguished_symbols();
        assert_eq!(nd.len(), 1);
        assert_ne!(nd[0], Symbol::new(b, 1));
        assert_eq!(relabeled.trs(), t.trs());
    }

    #[test]
    fn subtemplate_selection() {
        let (cat, r, s) = setup();
        let t = Template::new(vec![
            TaggedTuple::all_distinguished(r, &cat),
            TaggedTuple::all_distinguished(s, &cat),
        ])
        .unwrap();
        let sub = t.subtemplate(&[0]).unwrap();
        assert_eq!(sub.len(), 1);
        assert!(t.subtemplate(&[]).is_err());
        let w = t.without(1).unwrap();
        assert_eq!(w, sub);
    }
}
