//! Template evaluation: `T(α)` (paper, Section 2.1).
//!
//! `T(α) = { f(0_TRS(T)) | f an α-embedding of T }`, where an α-embedding is
//! a valuation with `f(t)[R(η)] ∈ α(η)` for every tagged tuple `(t, η)`.
//!
//! This is conjunctive-query evaluation: template symbols are variables
//! (including the distinguished ones, which form the output row), tagged
//! tuples are atoms, and α provides the extensional database. We run a
//! backtracking join with per-tuple candidate scans; tuples are ordered by
//! the size of their relations so small relations prune first.

use crate::template::Template;
use std::collections::HashMap;
use viewcap_base::{Catalog, Instantiation, RelId, Relation, Symbol};

/// Evaluate `T(α)`.
pub fn eval_template(t: &Template, alpha: &Instantiation, catalog: &Catalog) -> Relation {
    let trs = t.trs();
    let mut out = Relation::empty(trs.clone());

    // Materialize each referenced relation once.
    let mut rels: HashMap<RelId, Relation> = HashMap::new();
    for r in t.rel_names() {
        let rel = alpha.get(r, catalog);
        if rel.is_empty() {
            return out; // some atom can never embed
        }
        rels.insert(r, rel);
    }

    // Search order: most selective (smallest relation) first.
    let mut order: Vec<usize> = (0..t.len()).collect();
    order.sort_by_key(|&i| rels[&t.tuples()[i].rel()].len());

    let mut binding: HashMap<Symbol, Symbol> = HashMap::new();
    let mut trail: Vec<Symbol> = Vec::new();
    search(t, &rels, &order, 0, &mut binding, &mut trail, &mut |b| {
        let row: Vec<Symbol> = trs.iter().map(|a| b[&Symbol::distinguished(a)]).collect();
        let _ = out.insert(row);
    });
    out
}

fn search(
    t: &Template,
    rels: &HashMap<RelId, Relation>,
    order: &[usize],
    depth: usize,
    binding: &mut HashMap<Symbol, Symbol>,
    trail: &mut Vec<Symbol>,
    emit: &mut impl FnMut(&HashMap<Symbol, Symbol>),
) {
    if depth == order.len() {
        emit(binding);
        return;
    }
    let tup = &t.tuples()[order[depth]];
    let rel = &rels[&tup.rel()];
    'rows: for row in rel.rows() {
        let mut pushed = 0;
        for (sym, val) in tup.row().iter().zip(row) {
            match binding.get(sym) {
                Some(&bound) if bound == *val => {}
                Some(_) => {
                    undo(binding, trail, pushed);
                    continue 'rows;
                }
                None => {
                    binding.insert(*sym, *val);
                    trail.push(*sym);
                    pushed += 1;
                }
            }
        }
        search(t, rels, order, depth + 1, binding, trail, emit);
        undo(binding, trail, pushed);
    }
}

fn undo(binding: &mut HashMap<Symbol, Symbol>, trail: &mut Vec<Symbol>, n: usize) {
    for _ in 0..n {
        let s = trail.pop().expect("trail underflow");
        binding.remove(&s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{join_templates, project_template};
    use viewcap_base::Scheme;

    fn setup() -> (Catalog, RelId, RelId, Instantiation) {
        let mut cat = Catalog::new();
        let r = cat.relation("R", &["A", "B"]).unwrap();
        let s = cat.relation("S", &["B", "C"]).unwrap();
        let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
        let mut alpha = Instantiation::new();
        alpha
            .insert_rows(
                r,
                [
                    vec![Symbol::new(a, 1), Symbol::new(b, 10)],
                    vec![Symbol::new(a, 2), Symbol::new(b, 20)],
                ],
                &cat,
            )
            .unwrap();
        alpha
            .insert_rows(
                s,
                [
                    vec![Symbol::new(b, 10), Symbol::new(c, 100)],
                    vec![Symbol::new(b, 10), Symbol::new(c, 101)],
                ],
                &cat,
            )
            .unwrap();
        (cat, r, s, alpha)
    }

    #[test]
    fn atom_template_returns_the_relation() {
        let (cat, r, _, alpha) = setup();
        let t = Template::atom(r, &cat);
        assert_eq!(eval_template(&t, &alpha, &cat), alpha.get(r, &cat));
    }

    #[test]
    fn join_template_matches_relational_join() {
        let (cat, r, s, alpha) = setup();
        let t = join_templates(&Template::atom(r, &cat), &Template::atom(s, &cat));
        let expected = alpha.get(r, &cat).join(&alpha.get(s, &cat));
        assert_eq!(eval_template(&t, &alpha, &cat), expected);
    }

    #[test]
    fn projection_template_matches_relational_projection() {
        let (cat, r, _, alpha) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let x = Scheme::new([a]).unwrap();
        let t = project_template(&Template::atom(r, &cat), &x).unwrap();
        let expected = alpha.get(r, &cat).project(&x).unwrap();
        assert_eq!(eval_template(&t, &alpha, &cat), expected);
    }

    #[test]
    fn composed_pipeline() {
        // π_AC(R ⋈ S)
        let (cat, r, s, alpha) = setup();
        let a = cat.lookup_attr("A").unwrap();
        let c = cat.lookup_attr("C").unwrap();
        let x = Scheme::new([a, c]).unwrap();
        let j = join_templates(&Template::atom(r, &cat), &Template::atom(s, &cat));
        let t = project_template(&j, &x).unwrap();
        let expected = alpha
            .get(r, &cat)
            .join(&alpha.get(s, &cat))
            .project(&x)
            .unwrap();
        let got = eval_template(&t, &alpha, &cat);
        assert_eq!(got, expected);
        assert_eq!(got.len(), 2); // (1,100), (1,101)
    }

    #[test]
    fn empty_relation_short_circuits() {
        let (cat, r, s, _) = setup();
        let alpha = Instantiation::new();
        let t = join_templates(&Template::atom(r, &cat), &Template::atom(s, &cat));
        assert!(eval_template(&t, &alpha, &cat).is_empty());
    }

    #[test]
    fn embeddings_need_not_be_injective() {
        // T = π_B(R) ⋈ π_B(R'): two rows with distinct a-symbols may map to
        // the same data row.
        let (cat, r, _, alpha) = setup();
        let b = cat.lookup_attr("B").unwrap();
        let x = Scheme::new([b]).unwrap();
        let pb = project_template(&Template::atom(r, &cat), &x).unwrap();
        let t = join_templates(&pb, &pb);
        assert_eq!(t.len(), 2);
        let got = eval_template(&t, &alpha, &cat);
        let expected = alpha.get(r, &cat).project(&x).unwrap();
        assert_eq!(got, expected);
    }
}
