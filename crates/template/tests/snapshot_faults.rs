//! Fault injection against the candidate-space snapshot format.
//!
//! A snapshot hydrates enumeration state another process will trust
//! verbatim, so — like the pile (`crates/pile/tests/pile_faults.rs`) —
//! its parser must refuse every damaged input cleanly:
//!
//! * **truncation at every byte offset** — the torn file a crash
//!   mid-write would leave if the atomic rename were ever bypassed;
//! * **single-byte flips at every position** (exhaustive ×3 masks) and
//!   at proptest-chosen positions — magic, version, checksum, length,
//!   and payload corruption alike;
//! * **arbitrary garbage** that was never a snapshot.
//!
//! The invariant under every fault: [`load_space`] never panics and
//! never yields a space — it returns a [`SnapshotError`]. A mismatched
//! but *valid* snapshot (wrong atoms, wrong options) is likewise
//! rejected, as `Mismatch`.

use proptest::prelude::*;
use std::ops::ControlFlow;
use viewcap_base::{Catalog, RelId};
use viewcap_template::{
    load_space, save_space, CandidateSpace, SearchLimits, SearchOptions, SnapshotError,
};

fn setup() -> (Catalog, Vec<RelId>) {
    let mut cat = Catalog::new();
    let r = cat.relation("R", &["A", "B"]).unwrap();
    let s = cat.relation("S", &["B", "C"]).unwrap();
    (cat, vec![r, s])
}

fn built_space(cat: &Catalog, atoms: &[RelId], max_atoms: usize) -> CandidateSpace {
    let mut space = CandidateSpace::new(atoms, SearchOptions::default());
    space
        .probe(
            cat,
            max_atoms,
            None,
            &SearchLimits::default(),
            &mut |_, _| ControlFlow::Continue(()),
        )
        .unwrap();
    space
}

fn snapshot_bytes() -> (Catalog, Vec<RelId>, Vec<u8>) {
    let (cat, atoms) = setup();
    let space = built_space(&cat, &atoms, 3);
    let bytes = save_space(&space, &cat);
    (cat, atoms, bytes)
}

#[test]
fn truncation_at_every_byte_offset_is_rejected() {
    let (cat, atoms, bytes) = snapshot_bytes();
    // Sanity: the untouched snapshot loads.
    load_space(&bytes, &cat, &atoms, SearchOptions::default()).unwrap();
    for cut in 0..bytes.len() {
        let Err(err) = load_space(&bytes[..cut], &cat, &atoms, SearchOptions::default()) else {
            panic!("cut={cut}: every proper prefix must be rejected");
        };
        // A prefix is torn framing or a checksum that cannot match —
        // never a semantic error against the catalog.
        assert!(
            !matches!(err, SnapshotError::Mismatch(_)),
            "cut={cut}: prefix misdiagnosed as {err}"
        );
    }
}

#[test]
fn single_byte_flip_at_every_position_is_rejected() {
    let (cat, atoms, bytes) = snapshot_bytes();
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= flip;
            assert!(
                load_space(&damaged, &cat, &atoms, SearchOptions::default()).is_err(),
                "pos={pos} flip={flip:#x} must be rejected"
            );
        }
    }
}

#[test]
fn mismatched_context_is_rejected_not_misloaded() {
    let (cat, atoms, bytes) = snapshot_bytes();
    // Wrong atom order.
    let swapped = vec![atoms[1], atoms[0]];
    assert!(matches!(
        load_space(&bytes, &cat, &swapped, SearchOptions::default()),
        Err(SnapshotError::Mismatch(_))
    ));
    // Wrong options.
    let other = SearchOptions {
        semantic_dedup: false,
        ..SearchOptions::default()
    };
    assert!(matches!(
        load_space(&bytes, &cat, &atoms, other),
        Err(SnapshotError::Mismatch(_))
    ));
    // A catalog declaring different content under the same names.
    let mut alien = Catalog::new();
    let r = alien.relation("R", &["A", "B", "C"]).unwrap();
    let s = alien.relation("S", &["B", "C"]).unwrap();
    assert!(load_space(&bytes, &alien, &[r, s], SearchOptions::default()).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A flip anywhere is rejected — no random position sneaks a damaged
    /// snapshot past validation.
    #[test]
    fn flips_anywhere_are_rejected(pos_seed in any::<u64>(), flip in 1u8..=255) {
        let (cat, atoms, bytes) = snapshot_bytes();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= flip;
        prop_assert!(
            load_space(&damaged, &cat, &atoms, SearchOptions::default()).is_err()
        );
    }

    /// Arbitrary byte blobs were never snapshots: rejected, never a
    /// panic, never a space.
    #[test]
    fn garbage_is_rejected(blob in proptest::collection::vec(any::<u8>(), 0..512)) {
        let (cat, atoms, _) = snapshot_bytes();
        prop_assert!(
            load_space(&blob, &cat, &atoms, SearchOptions::default()).is_err()
        );
    }

    /// Valid prefix + garbage tail: the trailing junk must fail the
    /// checksum or the exhaustive-consumption check.
    #[test]
    fn garbage_tails_are_rejected(garbage in proptest::collection::vec(any::<u8>(), 1..128)) {
        let (cat, atoms, bytes) = snapshot_bytes();
        let mut damaged = bytes.clone();
        damaged.extend_from_slice(&garbage);
        prop_assert!(
            load_space(&damaged, &cat, &atoms, SearchOptions::default()).is_err()
        );
    }
}
