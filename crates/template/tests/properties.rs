//! Property-based tests for the tableau machinery: Algorithm 2.1.1,
//! reduction, canonical keys, homomorphism semantics (via the frozen
//! instantiation), and Theorem 2.2.3.

use proptest::prelude::*;
use viewcap_base::{Catalog, Instantiation, RelId, Scheme, Symbol};
use viewcap_expr::Expr;
use viewcap_template::{
    apply_assignment, canonical_key, equivalent_templates, eval_template, find_homomorphism,
    is_isomorphic, reduce, substitute, template_of_expr, Assignment, Template,
};

/// Fixed world: R(A,B), S(B,C).
fn world() -> (Catalog, Vec<RelId>) {
    let mut cat = Catalog::new();
    let r = cat.relation("R", &["A", "B"]).unwrap();
    let s = cat.relation("S", &["B", "C"]).unwrap();
    (cat, vec![r, s])
}

/// Deterministic byte-program interpreter (same scheme as the expr crate's
/// property tests — small and local on purpose).
fn interpret(cat: &Catalog, rels: &[RelId], program: &[u8]) -> Expr {
    let mut stack: Vec<Expr> = Vec::new();
    for &op in program {
        match op % 4 {
            0 | 1 => stack.push(Expr::rel(rels[(op as usize / 4) % rels.len()])),
            2 => {
                if stack.len() >= 2 {
                    let b = stack.pop().unwrap();
                    let a = stack.pop().unwrap();
                    stack.push(Expr::join(vec![a, b]).unwrap());
                }
            }
            _ => {
                if let Some(e) = stack.pop() {
                    let trs = e.trs(cat);
                    let mask = op as usize / 4;
                    let keep: Vec<_> = trs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, a)| a)
                        .collect();
                    if keep.is_empty() || keep.len() == trs.len() {
                        stack.push(e);
                    } else {
                        stack.push(Expr::project(e, Scheme::new(keep).unwrap(), cat).unwrap());
                    }
                }
            }
        }
    }
    stack.pop().unwrap_or(Expr::rel(rels[0]))
}

fn instantiation(cat: &Catalog, rels: &[RelId], data: &[(usize, u32, u32)]) -> Instantiation {
    let mut alpha = Instantiation::new();
    for &(rel_idx, x, y) in data {
        let rel = rels[rel_idx % rels.len()];
        let scheme = cat.scheme_of(rel).clone();
        let mut vals = [x % 4 + 1, y % 4 + 1].into_iter();
        let row: Vec<Symbol> = scheme
            .iter()
            .map(|a| Symbol::new(a, vals.next().unwrap()))
            .collect();
        alpha.insert_rows(rel, [row], cat).unwrap();
    }
    alpha
}

proptest! {
    /// Proposition 2.1.2: Algorithm 2.1.1 preserves the mapping.
    #[test]
    fn algorithm_2_1_1_is_semantics_preserving(
        program in proptest::collection::vec(any::<u8>(), 1..20),
        data in proptest::collection::vec((0usize..2, 0u32..4, 0u32..4), 0..10),
    ) {
        let (cat, rels) = world();
        let e = interpret(&cat, &rels, &program);
        let t = template_of_expr(&e, &cat);
        prop_assert_eq!(t.trs(), e.trs(&cat));
        prop_assert_eq!(t.rel_names(), e.rel_names());
        let alpha = instantiation(&cat, &rels, &data);
        prop_assert_eq!(eval_template(&t, &alpha, &cat), e.eval(&alpha, &cat));
    }

    /// Reduction: equivalent, no larger, idempotent.
    #[test]
    fn reduction_invariants(program in proptest::collection::vec(any::<u8>(), 1..20)) {
        let (cat, rels) = world();
        let t = template_of_expr(&interpret(&cat, &rels, &program), &cat);
        let red = reduce(&t);
        prop_assert!(red.len() <= t.len());
        prop_assert!(equivalent_templates(&red, &t));
        prop_assert_eq!(reduce(&red).clone(), red);
    }

    /// Canonical keys are invariant under nondistinguished renaming, and
    /// equal keys imply isomorphism on reduced templates.
    #[test]
    fn canonical_key_invariance(
        program in proptest::collection::vec(any::<u8>(), 1..20),
        shift in 1u32..50,
    ) {
        let (cat, rels) = world();
        let t = reduce(&template_of_expr(&interpret(&cat, &rels, &program), &cat));
        let renamed = Template::new(
            t.tuples()
                .iter()
                .map(|tt| tt.map_symbols(|s| {
                    if s.is_distinguished() { s } else { Symbol::new(s.attr(), s.ord() + shift) }
                }))
                .collect(),
        )
        .unwrap();
        prop_assert_eq!(canonical_key(&t), canonical_key(&renamed));
        prop_assert!(is_isomorphic(&t, &renamed));
    }

    /// Prop 2.4.1 via the frozen instantiation: hom(T→S) iff the identity
    /// row of S's canonical database is in T's output.
    #[test]
    fn hom_iff_frozen_membership(
        p1 in proptest::collection::vec(any::<u8>(), 1..16),
        p2 in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let (cat, rels) = world();
        let t = reduce(&template_of_expr(&interpret(&cat, &rels, &p1), &cat));
        let s = reduce(&template_of_expr(&interpret(&cat, &rels, &p2), &cat));
        prop_assume!(t.trs() == s.trs());
        let mut alpha = Instantiation::new();
        for tup in s.tuples() {
            alpha.insert_rows(tup.rel(), [tup.row().to_vec()], &cat).unwrap();
        }
        let id_row: Vec<Symbol> = s.trs().iter().map(Symbol::distinguished).collect();
        let semantic = eval_template(&t, &alpha, &cat).contains(&id_row);
        prop_assert_eq!(find_homomorphism(&t, &s).is_some(), semantic);
    }

    /// Theorem 2.2.3: [T→β](α) = T(β→α), with β built from generated
    /// queries and T generated over the ν names.
    #[test]
    fn theorem_2_2_3(
        inner1 in proptest::collection::vec(any::<u8>(), 1..10),
        inner2 in proptest::collection::vec(any::<u8>(), 1..10),
        outer in proptest::collection::vec(any::<u8>(), 1..12),
        data in proptest::collection::vec((0usize..2, 0u32..4, 0u32..4), 0..8),
    ) {
        let (mut cat, rels) = world();
        let b1 = reduce(&template_of_expr(&interpret(&cat, &rels, &inner1), &cat));
        let b2 = reduce(&template_of_expr(&interpret(&cat, &rels, &inner2), &cat));
        let n1 = cat.fresh_relation("nu", b1.trs());
        let n2 = cat.fresh_relation("nu", b2.trs());
        let mut beta = Assignment::new();
        beta.set(n1, b1, &cat).unwrap();
        beta.set(n2, b2, &cat).unwrap();

        let t = template_of_expr(&interpret(&cat, &[n1, n2], &outer), &cat);
        let sub = substitute(&t, &beta, &cat).unwrap();
        let alpha = instantiation(&cat, &rels, &data);
        let lhs = eval_template(&sub.result, &alpha, &cat);
        let rhs = eval_template(&t, &apply_assignment(&beta, &alpha, &cat), &cat);
        prop_assert_eq!(lhs, rhs);
    }

    /// Substitution block provenance covers the whole result.
    #[test]
    fn substitution_blocks_cover_result(
        inner in proptest::collection::vec(any::<u8>(), 1..10),
        outer in proptest::collection::vec(any::<u8>(), 1..10),
    ) {
        let (mut cat, rels) = world();
        let b = reduce(&template_of_expr(&interpret(&cat, &rels, &inner), &cat));
        let n = cat.fresh_relation("nu", b.trs());
        let mut beta = Assignment::new();
        beta.set(n, b.clone(), &cat).unwrap();
        let t = template_of_expr(&interpret(&cat, &[n], &outer), &cat);
        let sub = substitute(&t, &beta, &cat).unwrap();
        // Every result tuple belongs to at least one block, and block
        // volumes match #T × #β(η).
        for idx in 0..sub.result.len() {
            prop_assert!(!sub.blocks_containing(idx).is_empty());
        }
        let volume: usize = sub.blocks.iter().map(Vec::len).sum();
        prop_assert_eq!(volume, t.len() * b.len());
    }

    /// Containment is a preorder on same-TRS templates: reflexive and
    /// transitive (via hom composition).
    #[test]
    fn containment_is_a_preorder(
        p1 in proptest::collection::vec(any::<u8>(), 1..12),
        p2 in proptest::collection::vec(any::<u8>(), 1..12),
        p3 in proptest::collection::vec(any::<u8>(), 1..12),
    ) {
        use viewcap_template::template_contains;
        let (cat, rels) = world();
        let a = reduce(&template_of_expr(&interpret(&cat, &rels, &p1), &cat));
        let b = reduce(&template_of_expr(&interpret(&cat, &rels, &p2), &cat));
        let c = reduce(&template_of_expr(&interpret(&cat, &rels, &p3), &cat));
        prop_assert!(template_contains(&a, &a));
        if template_contains(&a, &b) && template_contains(&b, &c) {
            prop_assert!(template_contains(&a, &c));
        }
    }
}
