//! The sharded concurrent verdict cache, optionally bounded.
//!
//! A fixed array of `RwLock<HashMap>` shards keyed by
//! `(kind, fingerprint, fingerprint)`. Reads take a shard read lock;
//! inserts take a shard write lock. Shard choice mixes both fingerprints,
//! so unrelated checks contend on different locks.
//!
//! **Boundedness.** A cache built with [`VerdictCache::bounded`] enforces a
//! *global* entry capacity across all shards. Every hit stamps the entry
//! with a global access clock (an atomic store under the shard's *read*
//! lock, so hits never serialize on writes); when an insert pushes the
//! total past capacity, the globally least-recently-stamped entry is
//! evicted — "sharded LRU-ish": exact LRU victims, approximate only in that
//! concurrent stamping can race the victim scan. Victim selection keeps a
//! lazy min-heap of `(stamp, key)` per shard: inserts push their stamp,
//! hits only touch the entry's atomic stamp, and eviction pops each
//! shard's heap until the top agrees with its entry's current stamp
//! (stale tops are re-pushed at their fresh stamp, tops for removed keys
//! are dropped), then takes the minimum across shards — O(log entries)
//! amortized instead of the old full scan per insert at capacity. All
//! counters ([`CacheStats`]) are exact: hits and misses are counted at
//! lookup, evictions at removal, whatever the capacity.
//!
//! Soundness: equal fingerprints imply isomorphic reduced templates *of
//! equal relation content* (see [`crate::fingerprint`]), and every
//! memoized procedure is invariant under template isomorphism, so a cached
//! verdict is *the* verdict for every request that maps to the same key.
//! Eviction therefore never changes answers — only how often they must be
//! recomputed. Fingerprints are catalog-content-addressed, so one cache
//! serves every catalog declaring the same relations, whatever their
//! declaration order; entries loaded from disk carry their producer's
//! name tables ([`crate::persist::ImportTables`]) and are translated into
//! the consumer's catalog on first hit (see `foreign` on [`Entry`]).

use crate::fingerprint::Fingerprint;
use crate::persist::ImportTables;
use crate::verdict::{CheckKind, Verdict};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use viewcap_obs as obs;

/// Telemetry mirrors of the [`CacheStats`] counters (live only while
/// `viewcap_obs::set_enabled(true)`), plus an instant trace event per
/// eviction so cache pressure is visible on the timeline.
static CACHE_HIT: obs::Counter = obs::Counter::new("engine.cache.hit");
static CACHE_MISS: obs::Counter = obs::Counter::new("engine.cache.miss");
static CACHE_EVICT: obs::Counter = obs::Counter::new("engine.cache.eviction");

/// Number of independent shards (power of two).
pub const SHARD_COUNT: usize = 16;

/// Cache key: procedure plus the canonical fingerprints of its operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Which procedure.
    pub kind: CheckKind,
    /// Left operand (the view; the dominator; the smaller-fingerprint side
    /// for the symmetric equivalence check).
    pub left: Fingerprint,
    /// Right operand (the goal query; the dominated view; the larger side).
    pub right: Fingerprint,
}

impl CacheKey {
    /// Total order used for deterministic persistence output.
    pub(crate) fn sort_key(&self) -> (u8, u128, u128) {
        let kind = match self.kind {
            CheckKind::Member => 0u8,
            CheckKind::Dominates => 1,
            CheckKind::Equivalent => 2,
            CheckKind::Simplify => 3,
            CheckKind::Nonredundant => 4,
        };
        (kind, self.left.as_u128(), self.right.as_u128())
    }
}

/// A cached verdict plus the positional fingerprint table of the view that
/// produced it (for witness-label remapping under query reordering).
#[derive(Clone, Debug)]
pub struct Entry {
    /// The memoized verdict.
    pub verdict: Arc<Verdict>,
    /// Ordered per-query fingerprints of the producing request's left view.
    pub left_query_fps: Arc<[Fingerprint]>,
    /// `true` when the witness ids are still in the *file-local* id space
    /// of a loaded cache (indexes into the cache's
    /// [`ImportTables`]) rather than a live catalog. The engine translates
    /// foreign entries into the consumer catalog on first hit and replaces
    /// them; a foreign witness must never be rendered or evaluated as-is.
    pub foreign: bool,
}

/// An entry plus its last-access stamp from the global clock.
struct Slot {
    entry: Entry,
    stamp: AtomicU64,
}

/// A lazy heap record: the stamp a key had when it was pushed. The
/// authoritative stamp lives in the entry's [`Slot`]; a heap record whose
/// stamp disagrees is stale and is dropped (key gone) or re-pushed at the
/// fresh stamp (key touched since) when it surfaces at the top.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    stamp: u64,
    key: CacheKey,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.stamp, self.key.sort_key()).cmp(&(other.stamp, other.key.sort_key()))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One shard: the entry map plus the lazy eviction heap over it.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
    /// Min-heap (via [`Reverse`]) of possibly stale `(stamp, key)` records.
    heap: BinaryHeap<Reverse<HeapEntry>>,
}

impl Shard {
    /// Pop stale heap tops until the top record agrees with its entry's
    /// current stamp; returns that validated minimum, or `None` for an
    /// empty shard. Requires exclusive access (stamps cannot move under a
    /// write lock, so at most one re-push happens per key).
    fn validated_min(&mut self) -> Option<HeapEntry> {
        // Lazy deletion can leave the heap larger than the map; rebuild it
        // from the authoritative stamps when it has grown too stale.
        if self.heap.len() > 2 * self.map.len() + 64 {
            self.heap = self
                .map
                .iter()
                .map(|(key, slot)| {
                    Reverse(HeapEntry {
                        stamp: slot.stamp.load(Ordering::Relaxed),
                        key: *key,
                    })
                })
                .collect();
        }
        while let Some(&Reverse(top)) = self.heap.peek() {
            match self.map.get(&top.key) {
                // The key was evicted or never re-inserted: drop the record.
                None => {
                    self.heap.pop();
                }
                Some(slot) => {
                    let current = slot.stamp.load(Ordering::Relaxed);
                    if current == top.stamp {
                        return Some(top);
                    }
                    // Touched since it was pushed: re-file under the fresh
                    // stamp and keep looking.
                    self.heap.pop();
                    self.heap.push(Reverse(HeapEntry {
                        stamp: current,
                        key: top.key,
                    }));
                }
            }
        }
        None
    }
}

/// Counters for one cache (monotonic; snapshot via [`VerdictCache::stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries removed to respect the capacity bound.
    pub evictions: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} cached verdict(s), {} eviction(s)",
            self.hits, self.misses, self.entries, self.evictions
        )
    }
}

/// Sharded fingerprint-keyed verdict store with optional capacity bound.
pub struct VerdictCache {
    shards: Vec<RwLock<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Total entries across shards (kept exact under the shard locks).
    len: AtomicUsize,
    /// Global access clock driving the LRU-ish stamps.
    clock: AtomicU64,
    /// `None` = unbounded.
    max_entries: Option<usize>,
    /// Producer name tables of a disk-loaded cache, used to translate
    /// `foreign` entries into a live catalog on first hit. Set once by
    /// [`crate::persist::load_cache`].
    import: std::sync::OnceLock<Arc<ImportTables>>,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

impl VerdictCache {
    /// Empty, unbounded cache.
    pub fn new() -> Self {
        VerdictCache::bounded(None)
    }

    /// Empty cache holding at most `max_entries` verdicts (`None` =
    /// unbounded). A bound of `Some(0)` is treated as `Some(1)`: the cache
    /// type has no "disabled" mode, and a single slot keeps the engine's
    /// bookkeeping uniform.
    pub fn bounded(max_entries: Option<usize>) -> Self {
        VerdictCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            max_entries: max_entries.map(|m| m.max(1)),
            import: std::sync::OnceLock::new(),
        }
    }

    /// Attach the producer name tables of a disk-loaded cache (first call
    /// wins; persistence sets them exactly once, right after loading).
    pub(crate) fn set_import_tables(&self, tables: Arc<ImportTables>) {
        let _ = self.import.set(tables);
    }

    /// The producer name tables, when this cache was loaded from disk.
    pub(crate) fn import_tables(&self) -> Option<&Arc<ImportTables>> {
        self.import.get()
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.max_entries
    }

    fn shard_index(&self, key: &CacheKey) -> usize {
        let mixed = key.left.as_u128() ^ key.right.as_u128().rotate_left(64);
        (mixed as usize) & (SHARD_COUNT - 1)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up a verdict, counting the hit or miss and refreshing the
    /// entry's recency stamp.
    pub fn get(&self, key: &CacheKey) -> Option<Entry> {
        let shard = self.shards[self.shard_index(key)]
            .read()
            .expect("cache lock");
        let found = shard.map.get(key).map(|slot| {
            // The heap record for this key is now stale; eviction re-files
            // it lazily. Hits touch only this atomic, never the heap, so
            // they keep running under the read lock.
            slot.stamp.store(self.tick(), Ordering::Relaxed);
            slot.entry.clone()
        });
        drop(shard);
        match &found {
            Some(_) => {
                CACHE_HIT.add(1);
                self.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                CACHE_MISS.add(1);
                self.misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Store a verdict (first writer wins; verdicts for a key are all
    /// semantically identical, so which one lands is immaterial). If the
    /// cache is bounded and now over capacity, the least-recently-used
    /// entries are evicted until the bound holds again.
    pub fn insert(&self, key: CacheKey, entry: Entry) {
        self.store(key, entry, false);
    }

    /// Store a verdict, overwriting any existing entry for the key. Used
    /// when a `foreign` entry has been translated into the live catalog:
    /// the translated entry must shadow the untranslated one.
    pub(crate) fn replace(&self, key: CacheKey, entry: Entry) {
        self.store(key, entry, true);
    }

    fn store(&self, key: CacheKey, entry: Entry, overwrite: bool) {
        {
            let mut shard = self.shards[self.shard_index(&key)]
                .write()
                .expect("cache lock");
            let stamp = self.tick();
            let mut fresh = false;
            match shard.map.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    if overwrite {
                        slot.get_mut().entry = entry;
                    }
                    slot.get().stamp.store(stamp, Ordering::Relaxed);
                }
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    fresh = true;
                    vacant.insert(Slot {
                        entry,
                        stamp: AtomicU64::new(stamp),
                    });
                }
            }
            if fresh {
                shard.heap.push(Reverse(HeapEntry { stamp, key }));
            }
        }
        if let Some(max) = self.max_entries {
            while self.len.load(Ordering::Relaxed) > max && self.evict_oldest() {}
        }
    }

    /// Remove the globally least-recently-stamped entry. Returns `false`
    /// when nothing could be evicted (empty cache, or lost every race).
    fn evict_oldest(&self) -> bool {
        // Pass 1: each shard's validated heap minimum (popping records made
        // stale by hits or earlier evictions), then the global minimum.
        let mut victim: Option<(usize, HeapEntry)> = None;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.write().expect("cache lock");
            if let Some(min) = shard.validated_min() {
                if victim.is_none_or(|(_, best)| min < best) {
                    victim = Some((i, min));
                }
            }
        }
        // Pass 2: remove it (if a concurrent touch re-stamped it between
        // the passes, evict anyway — "LRU-ish", and the bound is what
        // matters). The victim's heap record stays behind and is dropped
        // lazily the next time it surfaces.
        let Some((i, HeapEntry { key, .. })) = victim else {
            return false;
        };
        let removed = self.shards[i]
            .write()
            .expect("cache lock")
            .map
            .remove(&key)
            .is_some();
        if removed {
            self.len.fetch_sub(1, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            CACHE_EVICT.add(1);
            obs::instant(
                "engine.cache.evict",
                "cache",
                &[("entries", self.len.load(Ordering::Relaxed) as u64)],
            );
        }
        removed
    }

    /// Snapshot every entry, sorted by key — the deterministic iteration
    /// order used by cache persistence ([`crate::persist`]).
    pub fn snapshot(&self) -> Vec<(CacheKey, Entry)> {
        let mut out: Vec<(CacheKey, Entry)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("cache lock")
                    .map
                    .iter()
                    .map(|(k, slot)| (*k, slot.entry.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|(k, _)| k.sort_key());
        out
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        crate::fingerprint::test_fingerprint(n)
    }

    fn key(kind: CheckKind, l: u128, r: u128) -> CacheKey {
        CacheKey {
            kind,
            left: fp(l),
            right: fp(r),
        }
    }

    fn entry() -> Entry {
        Entry {
            verdict: Arc::new(Verdict::Member(None)),
            left_query_fps: Arc::from([] as [Fingerprint; 0]),
            foreign: false,
        }
    }

    #[test]
    fn hit_miss_and_entry_counting() {
        let cache = VerdictCache::new();
        let key = key(CheckKind::Member, 1, 2);
        assert!(cache.get(&key).is_none());
        cache.insert(key, entry());
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.evictions),
            (1, 1, 1, 0)
        );
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let cache = VerdictCache::new();
        let member = key(CheckKind::Member, 7, 9);
        let dominates = CacheKey {
            kind: CheckKind::Dominates,
            ..member
        };
        cache.insert(member, entry());
        assert!(cache.get(&dominates).is_none());
        assert!(cache.get(&member).is_some());
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = VerdictCache::bounded(Some(2));
        let (k1, k2, k3) = (
            key(CheckKind::Member, 1, 10),
            key(CheckKind::Member, 2, 20),
            key(CheckKind::Member, 3, 30),
        );
        cache.insert(k1, entry());
        cache.insert(k2, entry());
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.get(&k1).is_some());
        cache.insert(k3, entry());
        assert!(cache.get(&k1).is_some(), "recently used survives");
        assert!(cache.get(&k2).is_none(), "LRU entry was evicted");
        assert!(cache.get(&k3).is_some());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
    }

    #[test]
    fn capacity_one_holds_exactly_one_entry() {
        let cache = VerdictCache::bounded(Some(1));
        for n in 0..5u128 {
            cache.insert(key(CheckKind::Dominates, n, n), entry());
            assert_eq!(cache.stats().entries, 1);
        }
        assert_eq!(cache.stats().evictions, 4);
        // Only the last key survives.
        assert!(cache.get(&key(CheckKind::Dominates, 4, 4)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_grow_or_evict() {
        let cache = VerdictCache::bounded(Some(1));
        let k = key(CheckKind::Equivalent, 5, 6);
        cache.insert(k, entry());
        cache.insert(k, entry());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (1, 0));
    }

    #[test]
    fn heap_eviction_matches_a_reference_lru_model() {
        // Sequential operations make the access stamps exact, so the lazy
        // per-shard heaps must agree with a literal LRU list at every step.
        let cap = 8usize;
        let cache = VerdictCache::bounded(Some(cap));
        let mut state: u64 = 0x2545_F491_4F6C_DD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        // `model` keeps keys in recency order, most recent last.
        let mut model: Vec<u128> = Vec::new();
        for _ in 0..2000 {
            let n = (next() % 32) as u128;
            let k = key(CheckKind::Member, n, n);
            if next() % 2 == 0 {
                let hit = cache.get(&k).is_some();
                assert_eq!(hit, model.contains(&n), "presence diverged on {n}");
                if hit {
                    model.retain(|&x| x != n);
                    model.push(n);
                }
            } else {
                cache.insert(k, entry());
                model.retain(|&x| x != n);
                model.push(n);
                if model.len() > cap {
                    model.remove(0);
                }
            }
            assert!(cache.stats().entries <= cap);
        }
        let present: std::collections::BTreeSet<u128> = cache
            .snapshot()
            .iter()
            .map(|(k, _)| k.left.as_u128())
            .collect();
        let expected: std::collections::BTreeSet<u128> = model.iter().copied().collect();
        assert_eq!(present, expected, "cache contents diverged from LRU model");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let cache = VerdictCache::new();
        for n in [9u128, 3, 7, 1] {
            cache.insert(key(CheckKind::Member, n, n), entry());
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 4);
        let lefts: Vec<u128> = snap.iter().map(|(k, _)| k.left.as_u128()).collect();
        assert_eq!(lefts, vec![1, 3, 7, 9]);
    }
}
