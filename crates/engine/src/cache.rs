//! The sharded concurrent verdict cache.
//!
//! A fixed array of `RwLock<HashMap>` shards keyed by
//! `(kind, fingerprint, fingerprint)`. Reads take a shard read lock;
//! inserts take a shard write lock. Shard choice mixes both fingerprints,
//! so unrelated checks contend on different locks.
//!
//! Soundness: equal fingerprints imply isomorphic reduced templates (see
//! [`crate::fingerprint`]), and every memoized procedure is invariant under
//! template isomorphism, so a cached verdict is *the* verdict for every
//! request that maps to the same key. One cache therefore serves one
//! catalog: `RelId`s from different catalogs may collide, so use a fresh
//! [`Engine`](crate::Engine) per catalog.

use crate::fingerprint::Fingerprint;
use crate::verdict::{CheckKind, Verdict};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards (power of two).
pub const SHARD_COUNT: usize = 16;

/// Cache key: procedure plus the canonical fingerprints of its operands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Which procedure.
    pub kind: CheckKind,
    /// Left operand (the view; the dominator; the smaller-fingerprint side
    /// for the symmetric equivalence check).
    pub left: Fingerprint,
    /// Right operand (the goal query; the dominated view; the larger side).
    pub right: Fingerprint,
}

/// A cached verdict plus the positional fingerprint table of the view that
/// produced it (for witness-label remapping under query reordering).
#[derive(Clone, Debug)]
pub struct Entry {
    /// The memoized verdict.
    pub verdict: Arc<Verdict>,
    /// Ordered per-query fingerprints of the producing request's left view.
    pub left_query_fps: Arc<[Fingerprint]>,
}

/// Counters for one cache (monotonic; snapshot via [`VerdictCache::stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Verdicts currently stored.
    pub entries: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} cached verdict(s)",
            self.hits, self.misses, self.entries
        )
    }
}

/// Sharded fingerprint-keyed verdict store.
pub struct VerdictCache {
    shards: Vec<RwLock<HashMap<CacheKey, Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for VerdictCache {
    fn default() -> Self {
        VerdictCache::new()
    }
}

impl VerdictCache {
    /// Empty cache.
    pub fn new() -> Self {
        VerdictCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<HashMap<CacheKey, Entry>> {
        let mixed = key.left.as_u128() ^ key.right.as_u128().rotate_left(64);
        &self.shards[(mixed as usize) & (SHARD_COUNT - 1)]
    }

    /// Look up a verdict, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Entry> {
        let found = self
            .shard(key)
            .read()
            .expect("cache lock")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Store a verdict (first writer wins; verdicts for a key are all
    /// semantically identical, so which one lands is immaterial).
    pub fn insert(&self, key: CacheKey, entry: Entry) {
        self.shard(&key)
            .write()
            .expect("cache lock")
            .entry(key)
            .or_insert(entry);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().expect("cache lock").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        // Only equality/ordering matter to the cache; synthesize via the
        // public path would need templates, so transmute through sorting:
        // Fingerprint has no public constructor — use a map of known ones.
        // Simplest: derive from query fingerprints is overkill here; test
        // through the cache API with keys built from real fingerprints in
        // the engine tests instead. Here we just exercise shard/stat logic
        // with default fingerprints obtained from `u128` bit patterns.
        crate::fingerprint::test_fingerprint(n)
    }

    #[test]
    fn hit_miss_and_entry_counting() {
        let cache = VerdictCache::new();
        let key = CacheKey {
            kind: CheckKind::Member,
            left: fp(1),
            right: fp(2),
        };
        assert!(cache.get(&key).is_none());
        cache.insert(
            key,
            Entry {
                verdict: Arc::new(Verdict::Member(None)),
                left_query_fps: Arc::from([] as [Fingerprint; 0]),
            },
        );
        assert!(cache.get(&key).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let cache = VerdictCache::new();
        let member = CacheKey {
            kind: CheckKind::Member,
            left: fp(7),
            right: fp(9),
        };
        let dominates = CacheKey {
            kind: CheckKind::Dominates,
            ..member
        };
        cache.insert(
            member,
            Entry {
                verdict: Arc::new(Verdict::Member(None)),
                left_query_fps: Arc::from([] as [Fingerprint; 0]),
            },
        );
        assert!(cache.get(&dominates).is_none());
        assert!(cache.get(&member).is_some());
    }
}
