//! Persisted library of [`CandidateSpace`](viewcap_template::CandidateSpace)
//! snapshots, keyed by content digest.
//!
//! A [`SpaceLibrary`] maps `space_digest` keys (128-bit content digests of
//! the search options plus the λ-atom schemes — see
//! [`viewcap_template::space_digest`]) to serialized snapshots produced by
//! [`viewcap_template::save_space`]. The engine's context pool stages a
//! matching snapshot into every [`viewcap_core::ClosureContext`] it builds,
//! so fresh processes replay persisted enumeration levels instead of
//! rebuilding them; contexts that extend past the persisted bound are
//! harvested back ([`crate::Engine::harvest_spaces`]) and the grown library
//! re-persisted atomically.
//!
//! The container format mirrors the verdict-cache file: magic, version,
//! FNV-1a checksum over the payload, then a digest-ordered entry table.
//! Entries are opaque here — each snapshot carries its own magic, version,
//! and checksum, and is validated against the loading catalog at hydration
//! time (`load_space`), so a library can ferry snapshots between catalogs
//! that declare the same relations in any order.

use crate::persist::{write_bytes_atomic, PersistError};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use viewcap_obs as obs;

/// First bytes of a space-library file.
pub const SPACE_LIB_MAGIC: &[u8; 8] = b"VCAPSLIB";

/// Version written by this build; anything else is rejected.
pub const SPACE_LIB_VERSION: u32 = 1;

/// Bytes written through [`SpaceLibrary::save`].
static SPACE_PERSIST_BYTES: obs::Counter = obs::Counter::new("space.persist_bytes");
/// Library files persisted.
static SPACE_PERSISTED: obs::Counter = obs::Counter::new("space.persisted");
/// Time spent serializing + atomically writing a library.
static SPACE_SAVE_HIST: obs::Hist = obs::Hist::new("space.save_ns");

/// Why a space-library file was rejected.
#[derive(Debug)]
pub enum SpaceStoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`SPACE_LIB_MAGIC`].
    BadMagic,
    /// The file's version is not [`SPACE_LIB_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// Structurally invalid data (truncation, bad counts).
    Corrupt(&'static str),
}

impl fmt::Display for SpaceStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceStoreError::Io(e) => write!(f, "space library I/O error: {e}"),
            SpaceStoreError::BadMagic => write!(f, "not a viewcap space library (bad magic)"),
            SpaceStoreError::VersionMismatch { found, expected } => write!(
                f,
                "space library version {found} is not the supported version {expected}"
            ),
            SpaceStoreError::ChecksumMismatch => {
                write!(f, "space library checksum mismatch (corrupted file)")
            }
            SpaceStoreError::Corrupt(what) => write!(f, "corrupt space library: {what}"),
        }
    }
}

impl std::error::Error for SpaceStoreError {}

impl From<std::io::Error> for SpaceStoreError {
    fn from(e: std::io::Error) -> Self {
        SpaceStoreError::Io(e)
    }
}

impl From<PersistError> for SpaceStoreError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Io(io) => SpaceStoreError::Io(io),
            // `write_bytes_atomic` only ever surfaces I/O failures.
            other => SpaceStoreError::Io(std::io::Error::other(other.to_string())),
        }
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// A digest-keyed collection of candidate-space snapshots.
///
/// Deterministically ordered (by digest), so `to_bytes` is a pure function
/// of the contents — two processes that harvested the same spaces write
/// byte-identical libraries.
#[derive(Debug, Default)]
pub struct SpaceLibrary {
    entries: BTreeMap<u128, Vec<u8>>,
}

impl SpaceLibrary {
    /// An empty library.
    pub fn new() -> SpaceLibrary {
        SpaceLibrary::default()
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The snapshot for a space key, if any.
    pub fn get(&self, key: u128) -> Option<&[u8]> {
        self.entries.get(&key).map(Vec::as_slice)
    }

    /// Absorb a snapshot. For one space key, a snapshot holding more
    /// enumeration levels strictly extends one holding fewer and serializes
    /// to strictly more bytes, so "keep the longer payload" keeps the most
    /// levels; ties keep the incumbent. Returns whether the library
    /// changed.
    pub fn insert(&mut self, key: u128, bytes: Vec<u8>) -> bool {
        match self.entries.get(&key) {
            Some(existing) if existing.len() >= bytes.len() => false,
            _ => {
                self.entries.insert(key, bytes);
                true
            }
        }
    }

    /// Absorb every snapshot of `other` (same per-key policy as
    /// [`SpaceLibrary::insert`]). Returns how many entries changed.
    pub fn merge(&mut self, other: SpaceLibrary) -> usize {
        other
            .entries
            .into_iter()
            .filter(|(k, v)| self.insert(*k, v.clone()))
            .count()
    }

    /// Iterate `(space key, snapshot bytes)` in digest order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, &[u8])> {
        self.entries.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Serialize to the container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (key, bytes) in &self.entries {
            payload.extend_from_slice(&key.to_le_bytes());
            payload.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            payload.extend_from_slice(bytes);
        }
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(SPACE_LIB_MAGIC);
        out.extend_from_slice(&SPACE_LIB_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parse a library file, rejecting corruption cleanly.
    pub fn from_bytes(bytes: &[u8]) -> Result<SpaceLibrary, SpaceStoreError> {
        if bytes.len() < 20 {
            return Err(SpaceStoreError::Corrupt("shorter than the header"));
        }
        if &bytes[..8] != SPACE_LIB_MAGIC {
            return Err(SpaceStoreError::BadMagic);
        }
        let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if found != SPACE_LIB_VERSION {
            return Err(SpaceStoreError::VersionMismatch {
                found,
                expected: SPACE_LIB_VERSION,
            });
        }
        let checksum = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload = &bytes[20..];
        if fnv1a64(payload) != checksum {
            return Err(SpaceStoreError::ChecksumMismatch);
        }
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SpaceStoreError> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= payload.len())
                .ok_or(SpaceStoreError::Corrupt("truncated entry"))?;
            let slice = &payload[*pos..end];
            *pos = end;
            Ok(slice)
        };
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        // Each entry needs at least its digest + length fields.
        if count > payload.len() / 20 {
            return Err(SpaceStoreError::Corrupt("entry count exceeds payload"));
        }
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let key = u128::from_le_bytes(take(&mut pos, 16)?.try_into().expect("16 bytes"));
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
            let snapshot = take(&mut pos, len)?.to_vec();
            if entries.insert(key, snapshot).is_some() {
                return Err(SpaceStoreError::Corrupt("duplicate space key"));
            }
        }
        if pos != payload.len() {
            return Err(SpaceStoreError::Corrupt("trailing bytes after entries"));
        }
        Ok(SpaceLibrary { entries })
    }

    /// Read a library from disk. A missing file is an empty library — the
    /// warm-start path must degrade to a cold start, never fail.
    pub fn load(path: &Path) -> Result<SpaceLibrary, SpaceStoreError> {
        match std::fs::read(path) {
            Ok(bytes) => SpaceLibrary::from_bytes(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SpaceLibrary::new()),
            Err(e) => Err(SpaceStoreError::Io(e)),
        }
    }

    /// Atomically persist the library (tmp + rename, like the verdict
    /// cache).
    pub fn save(&self, path: &Path) -> Result<(), SpaceStoreError> {
        let t0 = obs::now_ns();
        let bytes = self.to_bytes();
        write_bytes_atomic(path, &bytes)?;
        SPACE_PERSISTED.add(1);
        SPACE_PERSIST_BYTES.add(bytes.len() as u64);
        if obs::enabled() {
            SPACE_SAVE_HIST.record(obs::now_ns().saturating_sub(t0));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_orders_by_digest() {
        let mut lib = SpaceLibrary::new();
        assert!(lib.insert(7, vec![1, 2, 3]));
        assert!(lib.insert(3, vec![9]));
        let bytes = lib.to_bytes();
        let back = SpaceLibrary::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(7), Some(&[1, 2, 3][..]));
        assert_eq!(back.get(3), Some(&[9][..]));
        // Serialization is a pure function of contents, whatever the
        // insertion order.
        let mut relib = SpaceLibrary::new();
        relib.insert(3, vec![9]);
        relib.insert(7, vec![1, 2, 3]);
        assert_eq!(relib.to_bytes(), bytes);
    }

    #[test]
    fn insert_keeps_the_most_levels() {
        let mut lib = SpaceLibrary::new();
        assert!(lib.insert(1, vec![0; 10]));
        assert!(!lib.insert(1, vec![0; 5]), "shorter snapshot ignored");
        assert_eq!(lib.get(1).unwrap().len(), 10);
        assert!(lib.insert(1, vec![0; 20]), "longer snapshot replaces");
        assert_eq!(lib.get(1).unwrap().len(), 20);

        let mut other = SpaceLibrary::new();
        other.insert(1, vec![0; 15]);
        other.insert(2, vec![0; 1]);
        assert_eq!(lib.merge(other), 1, "only the new key lands");
        assert_eq!(lib.get(1).unwrap().len(), 20);
        assert!(lib.get(2).is_some());
    }

    #[test]
    fn corruption_is_rejected_cleanly() {
        let mut lib = SpaceLibrary::new();
        lib.insert(42, vec![5; 33]);
        let good = lib.to_bytes();
        assert!(matches!(
            SpaceLibrary::from_bytes(b"not a library"),
            Err(SpaceStoreError::Corrupt(_))
        ));
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            SpaceLibrary::from_bytes(&bad),
            Err(SpaceStoreError::BadMagic)
        ));
        let mut bad = good.clone();
        bad[8] = 0xEE;
        assert!(matches!(
            SpaceLibrary::from_bytes(&bad),
            Err(SpaceStoreError::VersionMismatch { .. })
        ));
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            SpaceLibrary::from_bytes(&bad),
            Err(SpaceStoreError::ChecksumMismatch)
        ));
        // Every truncation is caught by the header or checksum guards.
        for cut in 0..good.len() {
            assert!(SpaceLibrary::from_bytes(&good[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn missing_file_loads_empty() {
        let path = std::env::temp_dir().join(format!(
            "viewcap-spacelib-missing-{}.bin",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let lib = SpaceLibrary::load(&path).unwrap();
        assert!(lib.is_empty());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let path = std::env::temp_dir().join(format!(
            "viewcap-spacelib-roundtrip-{}.bin",
            std::process::id()
        ));
        let mut lib = SpaceLibrary::new();
        lib.insert(11, vec![1, 2, 3, 4]);
        lib.save(&path).unwrap();
        let back = SpaceLibrary::load(&path).unwrap();
        assert_eq!(back.get(11), Some(&[1, 2, 3, 4][..]));
        let _ = std::fs::remove_file(&path);
    }
}
