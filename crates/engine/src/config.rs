//! One front door for building engines: [`EngineConfig`] + [`Session`].
//!
//! Five PRs of growth left engine construction scattered across an ad-hoc
//! constructor zoo (`with_budget`, `with_cache`, `with_shared_cache`, a
//! `with_space_library` builder tail) plus per-caller file plumbing: the
//! CLI loaded `--cache-file`/`--pile`/`--space-file` by hand, `serve`
//! assembled warm shared caches its own way, and every test picked a
//! different spelling. A stream driver cannot be written cleanly against
//! that surface, so it is gone.
//!
//! [`EngineConfig`] is the single description of an engine: search budget,
//! cache source (bound, file, pile, or a shared handle), candidate-space
//! library (file or shared handle), and the worker count batches should
//! run under. Two ways to consume it:
//!
//! * [`Engine::from_config`] — build the engine and discard the
//!   provenance. File- and pile-backed sources load eagerly (a corrupt
//!   file is an error, never a silent cold start); the handles are
//!   dropped, so this is the read-only spelling.
//! * [`Session::open`] — build the engine *and keep the persistence
//!   handles*: [`Session::persist`] saves the cache file back, appends
//!   the run's verdicts to the pile, and harvests grown candidate spaces
//!   into the space file, exactly as the CLI always did by hand.
//!
//! ```
//! use viewcap_engine::{Engine, EngineConfig};
//! # use viewcap_core::SearchBudget;
//! let engine = Engine::from_config(EngineConfig::new().jobs(4)).unwrap();
//! assert_eq!(engine.cache_stats().entries, 0);
//! ```

use crate::cache::VerdictCache;
use crate::engine::Engine;
use crate::persist::{load_cache_from_path, save_cache_to_path, PersistError};
use crate::pilestore::{PileStore, PileStoreError};
use crate::spacestore::{SpaceLibrary, SpaceStoreError};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use viewcap_base::Catalog;
use viewcap_core::SearchBudget;

/// Everything an [`Engine`] can be built from, in one builder.
///
/// At most one *cache source* may be set: [`EngineConfig::cache`] (an
/// owned, pre-built cache), [`EngineConfig::shared_cache`] (a handle
/// shared with other engines), [`EngineConfig::cache_file`] (load from /
/// save to a `.vcapcache` file), or [`EngineConfig::pile`] (load from /
/// append to a crash-safe pile). [`EngineConfig::cache_max`] composes
/// with the file/pile sources and with no source at all (a fresh bounded
/// cache); it conflicts with pre-built caches, whose bound is fixed at
/// construction.
#[derive(Default)]
pub struct EngineConfig {
    budget: SearchBudget,
    cache_max: Option<usize>,
    cache_file: Option<PathBuf>,
    pile: Option<PathBuf>,
    space_file: Option<PathBuf>,
    owned_cache: Option<VerdictCache>,
    shared_cache: Option<Arc<VerdictCache>>,
    shared_spaces: Option<Arc<Mutex<SpaceLibrary>>>,
    jobs: usize,
}

impl EngineConfig {
    /// An empty configuration: default budget, fresh unbounded cache, no
    /// persistence, `jobs = 0` (available parallelism).
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// The search budget every check runs under.
    pub fn budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Bound the verdict cache to `max` entries with LRU-ish eviction
    /// (`None` = unbounded). Applies to fresh, file-loaded, and
    /// pile-loaded caches.
    pub fn cache_max(mut self, max: Option<usize>) -> Self {
        self.cache_max = max;
        self
    }

    /// Load the verdict cache from `path` (when it exists; a missing file
    /// starts cold) and, under [`Session::persist`], save it back.
    pub fn cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_file = Some(path.into());
        self
    }

    /// Load the verdict cache from a pile's merged verdict set and, under
    /// [`Session::persist`], append the run's verdicts as one record.
    pub fn pile(mut self, path: impl Into<PathBuf>) -> Self {
        self.pile = Some(path.into());
        self
    }

    /// Load the candidate-space library from `path` (a missing file
    /// starts empty) and, under [`Session::persist`], harvest grown
    /// spaces and save it back.
    pub fn space_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.space_file = Some(path.into());
        self
    }

    /// Use a pre-built cache — one warmed by [`crate::persist::load_cache`]
    /// or bounded by [`VerdictCache::bounded`].
    pub fn cache(mut self, cache: VerdictCache) -> Self {
        self.owned_cache = Some(cache);
        self
    }

    /// Share a verdict cache with other engines (or other holders — a
    /// resident daemon keeping one warm cache per catalog). All sharing
    /// engines see each other's verdicts immediately.
    pub fn shared_cache(mut self, cache: Arc<VerdictCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Share a candidate-space library: contexts stage matching snapshots
    /// from it (hydrated lazily on first probe) and grown spaces are
    /// harvested back by [`Engine::harvest_spaces`] / context retirement.
    pub fn shared_spaces(mut self, spaces: Arc<Mutex<SpaceLibrary>>) -> Self {
        self.shared_spaces = Some(spaces);
        self
    }

    /// Worker threads for batch execution (`0` = available parallelism).
    /// Carried by the [`Session`] so drivers have one place to read it;
    /// results are byte-identical for every setting.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    fn conflict(&self) -> Option<&'static str> {
        let sources = [
            self.owned_cache.is_some(),
            self.shared_cache.is_some(),
            self.cache_file.is_some(),
            self.pile.is_some(),
        ];
        if sources.iter().filter(|&&s| s).count() > 1 {
            return Some("at most one cache source (cache / shared_cache / cache_file / pile)");
        }
        if self.cache_max.is_some() && (self.owned_cache.is_some() || self.shared_cache.is_some()) {
            return Some("cache_max conflicts with a pre-built cache (bound it at construction)");
        }
        None
    }
}

impl fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineConfig")
            .field("cache_max", &self.cache_max)
            .field("cache_file", &self.cache_file)
            .field("pile", &self.pile)
            .field("space_file", &self.space_file)
            .field("owned_cache", &self.owned_cache.is_some())
            .field("shared_cache", &self.shared_cache.is_some())
            .field("shared_spaces", &self.shared_spaces.is_some())
            .field("jobs", &self.jobs)
            .finish_non_exhaustive()
    }
}

/// Why a configuration could not be opened or persisted.
#[derive(Debug)]
pub enum ConfigError {
    /// Mutually exclusive options were combined.
    Conflict(&'static str),
    /// A configured file could not be read or written.
    Io(PathBuf, std::io::Error),
    /// A configured cache or space file failed to parse or save.
    Format(PathBuf, String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Conflict(msg) => write!(f, "conflicting engine config: {msg}"),
            ConfigError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            ConfigError::Format(path, msg) => write!(f, "{}: {msg}", path.display()),
        }
    }
}

impl std::error::Error for ConfigError {}

fn persist_err(path: &Path, e: PersistError) -> ConfigError {
    ConfigError::Format(path.to_owned(), e.to_string())
}

fn pile_err(path: &Path, e: PileStoreError) -> ConfigError {
    ConfigError::Format(path.to_owned(), e.to_string())
}

fn space_err(path: &Path, e: SpaceStoreError) -> ConfigError {
    ConfigError::Format(path.to_owned(), e.to_string())
}

/// What one [`Session::persist`] call wrote back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistSummary {
    /// Bytes appended to the pile (0 without a pile, or when the cache
    /// snapshot was empty).
    pub pile_bytes: usize,
    /// Candidate-space snapshots harvested into the library.
    pub spaces_harvested: usize,
    /// Whether the cache file was rewritten.
    pub cache_saved: bool,
    /// Whether the space file was rewritten.
    pub spaces_saved: bool,
}

/// An [`Engine`] together with the persistence handles its configuration
/// named — the pile store, the cache file path, the space file path — so
/// one [`Session::persist`] call writes everything back the way the
/// configuration promised.
pub struct Session {
    engine: Engine,
    jobs: usize,
    cache_file: Option<PathBuf>,
    space_file: Option<PathBuf>,
    pile: Option<PileStore>,
}

impl Session {
    /// Build the configured engine, loading every configured file
    /// eagerly: a corrupt or version-skewed cache, pile, or space file is
    /// an error here, never a silent cold start.
    pub fn open(config: EngineConfig) -> Result<Session, ConfigError> {
        if let Some(msg) = config.conflict() {
            return Err(ConfigError::Conflict(msg));
        }
        let EngineConfig {
            budget,
            cache_max,
            cache_file,
            pile,
            space_file,
            owned_cache,
            shared_cache,
            shared_spaces,
            jobs,
        } = config;
        let mut pile_store = match &pile {
            Some(path) => Some(PileStore::open(path).map_err(|e| pile_err(path, e))?),
            None => None,
        };
        let cache: Arc<VerdictCache> = if let Some(shared) = shared_cache {
            shared
        } else if let Some(owned) = owned_cache {
            Arc::new(owned)
        } else if let Some(path) = &cache_file {
            if path.exists() {
                Arc::new(load_cache_from_path(path, cache_max).map_err(|e| persist_err(path, e))?)
            } else {
                Arc::new(VerdictCache::bounded(cache_max))
            }
        } else if let Some(store) = &mut pile_store {
            let path = pile.as_deref().expect("pile store implies a pile path");
            Arc::new(store.load(cache_max).map_err(|e| pile_err(path, e))?)
        } else {
            Arc::new(VerdictCache::bounded(cache_max))
        };
        let spaces = if let Some(shared) = shared_spaces {
            Some(shared)
        } else if let Some(path) = &space_file {
            let library = SpaceLibrary::load(path).map_err(|e| space_err(path, e))?;
            Some(Arc::new(Mutex::new(library)))
        } else {
            None
        };
        Ok(Session {
            engine: Engine::assemble(budget, cache, spaces),
            jobs,
            cache_file,
            space_file,
            pile: pile_store,
        })
    }

    /// The configured engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The configured batch worker count (`0` = available parallelism).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Drop the persistence handles and keep the engine.
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Write everything the configuration promised back out: save the
    /// cache file, append the run's verdicts to the pile, and harvest
    /// grown candidate spaces into the space file (rewritten only when
    /// something grew or the file does not exist yet; all file writes are
    /// atomic). `catalog` resolves natively computed witnesses to names —
    /// pass the catalog the run finished with. A configuration that named
    /// no files is a no-op.
    pub fn persist(&mut self, catalog: &Catalog) -> Result<PersistSummary, ConfigError> {
        let mut summary = PersistSummary::default();
        if let Some(path) = &self.cache_file {
            save_cache_to_path(self.engine.cache(), catalog, path)
                .map_err(|e| persist_err(path, e))?;
            summary.cache_saved = true;
        }
        if let Some(store) = &mut self.pile {
            let path = store.path().to_owned();
            summary.pile_bytes = store
                .append_cache(self.engine.cache(), catalog)
                .map_err(|e| pile_err(&path, e))?;
        }
        if let Some(path) = &self.space_file {
            summary.spaces_harvested = self.engine.harvest_spaces();
            if summary.spaces_harvested > 0 || !path.exists() {
                let spaces = self
                    .engine
                    .shared_spaces()
                    .expect("space_file config attaches a library");
                let library = spaces.lock().expect("space library lock");
                library.save(path).map_err(|e| space_err(path, e))?;
                summary.spaces_saved = true;
            }
        }
        Ok(summary)
    }
}

impl Engine {
    /// Build an engine from a configuration, discarding the persistence
    /// handles — the read-only spelling of [`Session::open`]. For a
    /// configuration with no file sources this cannot fail.
    pub fn from_config(config: EngineConfig) -> Result<Engine, ConfigError> {
        Ok(Session::open(config)?.into_engine())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Check;
    use viewcap_core::{Query, View};
    use viewcap_expr::parse_expr;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("viewcap-config-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn setup() -> (Catalog, View) {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let v1 = cat.fresh_relation("v1", ab);
        let view =
            View::from_exprs(vec![(parse_expr("pi{A,B}(R)", &cat).unwrap(), v1)], &cat).unwrap();
        (cat, view)
    }

    fn decide(engine: &Engine, cat: &Catalog, view: &View, goal: &str) {
        let goal = Query::from_expr(parse_expr(goal, cat).unwrap(), cat);
        engine
            .decide(
                &Check::Member {
                    view: view.clone(),
                    goal,
                },
                cat,
            )
            .unwrap();
    }

    #[test]
    fn conflicting_cache_sources_are_rejected() {
        let config = EngineConfig::new()
            .cache_file("/tmp/a.vcapcache")
            .pile("/tmp/a.vcappile");
        assert!(matches!(
            Engine::from_config(config),
            Err(ConfigError::Conflict(_))
        ));
        let config = EngineConfig::new()
            .cache(VerdictCache::new())
            .cache_max(Some(10));
        assert!(matches!(
            Engine::from_config(config),
            Err(ConfigError::Conflict(_))
        ));
    }

    #[test]
    fn cache_max_bounds_a_fresh_cache() {
        let engine = Engine::from_config(EngineConfig::new().cache_max(Some(7))).unwrap();
        assert_eq!(engine.cache().capacity(), Some(7));
    }

    #[test]
    fn session_round_trips_a_cache_file() {
        let (cat, view) = setup();
        let path = tmp("roundtrip.vcapcache");

        let mut session = Session::open(EngineConfig::new().cache_file(&path).jobs(1)).unwrap();
        decide(session.engine(), &cat, &view, "pi{A}(R)");
        let summary = session.persist(&cat).unwrap();
        assert!(summary.cache_saved);

        // A second session warms from the saved file.
        let warm = Session::open(EngineConfig::new().cache_file(&path)).unwrap();
        decide(warm.engine(), &cat, &view, "pi{A}(R)");
        assert_eq!(warm.engine().cache_stats().hits, 1);
    }

    #[test]
    fn session_round_trips_a_pile() {
        let (cat, view) = setup();
        let path = tmp("roundtrip.vcappile");

        let mut session = Session::open(EngineConfig::new().pile(&path)).unwrap();
        decide(session.engine(), &cat, &view, "pi{A}(R)");
        let summary = session.persist(&cat).unwrap();
        assert!(summary.pile_bytes > 0);

        let warm = Session::open(EngineConfig::new().pile(&path)).unwrap();
        decide(warm.engine(), &cat, &view, "pi{A}(R)");
        assert_eq!(warm.engine().cache_stats().hits, 1);
    }

    #[test]
    fn session_harvests_spaces_into_the_space_file() {
        let (cat, view) = setup();
        let path = tmp("harvest.vcapspaces");

        let mut session = Session::open(EngineConfig::new().space_file(&path)).unwrap();
        decide(session.engine(), &cat, &view, "pi{A}(R)");
        let summary = session.persist(&cat).unwrap();
        assert!(summary.spaces_saved);
        assert!(path.exists());

        // The warm session hydrates instead of rebuilding.
        let warm = Session::open(EngineConfig::new().space_file(&path)).unwrap();
        decide(warm.engine(), &cat, &view, "pi{A}(R)");
        assert_eq!(warm.engine().enum_stats().levels_rebuilt, 0);
    }

    #[test]
    fn corrupt_cache_files_error_instead_of_cold_starting() {
        let path = tmp("corrupt.vcapcache");
        std::fs::write(&path, b"not a cache file").unwrap();
        assert!(matches!(
            Session::open(EngineConfig::new().cache_file(&path)),
            Err(ConfigError::Format(..))
        ));
    }

    #[test]
    fn shared_cache_is_shared() {
        let (cat, view) = setup();
        let shared = Arc::new(VerdictCache::new());
        let a = Engine::from_config(EngineConfig::new().shared_cache(Arc::clone(&shared))).unwrap();
        decide(&a, &cat, &view, "pi{A}(R)");
        let b = Engine::from_config(EngineConfig::new().shared_cache(shared)).unwrap();
        decide(&b, &cat, &view, "pi{A}(R)");
        assert_eq!(b.cache_stats().hits, 1);
    }
}
