//! Verdict-cache persistence: a versioned, checksummed on-disk format.
//!
//! The cache is content-addressed — keys are canonical fingerprints, and a
//! fingerprint never changes meaning — so a saved cache can warm any later
//! process working against the *same catalog construction* (fingerprints
//! embed `RelId`s, which are only stable within one catalog's minting
//! order; a scenario file re-run is the canonical use).
//!
//! ## Format (version 1)
//!
//! ```text
//! magic      8  bytes  b"VCAPCACH"
//! version    u32 LE
//! checksum   u64 LE    FNV-1a over the payload bytes
//! payload:
//!   entry_count u64 LE
//!   entries, sorted by (kind, left, right):
//!     key        kind u8, left u128 LE, right u128 LE
//!     fps        u32 count, u128 LE each    (left_query_fps)
//!     verdict    tag u8, then the witness when the answer was YES
//! ```
//!
//! Witnesses serialize structurally ([`ClosureProof`]: skeleton expression,
//! λ table, both templates). Everything is integers; no strings, no
//! catalogs. Loading is strictly bounds-checked and returns
//! [`PersistError`] — never panics — on truncation, corruption (checksum),
//! version skew, or structurally invalid witnesses ([`Template::new`]
//! re-validates template invariants on the way in).

use crate::cache::{CacheKey, Entry, VerdictCache};
use crate::fingerprint::Fingerprint;
use crate::verdict::{CheckKind, Verdict};
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use viewcap_base::{AttrId, RelId, Scheme, Symbol};
use viewcap_core::capacity::ClosureProof;
use viewcap_core::equivalence::{DominanceWitness, EquivalenceWitness};
use viewcap_expr::Expr;
use viewcap_template::{TaggedTuple, Template};

/// Leading magic of every cache file.
pub const MAGIC: &[u8; 8] = b"VCAPCACH";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Why a cache file was rejected.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// Structurally invalid data (truncation, bad tags, bad invariants).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a viewcap cache file (bad magic)"),
            PersistError::VersionMismatch { found, expected } => write!(
                f,
                "cache file version {found} is not the supported version {expected}"
            ),
            PersistError::ChecksumMismatch => {
                write!(f, "cache file checksum mismatch (corrupted file)")
            }
            PersistError::Corrupt(what) => write!(f, "corrupt cache file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Rel(r) => {
                self.u8(0);
                self.u32(r.0);
            }
            Expr::Project(child, scheme) => {
                self.u8(1);
                self.expr(child);
                self.scheme(scheme);
            }
            Expr::Join(children) => {
                self.u8(2);
                self.u32(children.len() as u32);
                for c in children {
                    self.expr(c);
                }
            }
        }
    }

    fn scheme(&mut self, s: &Scheme) {
        self.u32(s.len() as u32);
        for a in s.iter() {
            self.u32(a.0);
        }
    }

    fn template(&mut self, t: &Template) {
        self.u32(t.len() as u32);
        for tuple in t.tuples() {
            self.u32(tuple.rel().0);
            self.u32(tuple.row().len() as u32);
            for sym in tuple.row() {
                self.u32(sym.attr().0);
                self.u32(sym.ord());
            }
        }
    }

    fn proof(&mut self, p: &ClosureProof) {
        self.expr(&p.skeleton);
        self.u32(p.lambda_queries.len() as u32);
        for &(lam, idx) in &p.lambda_queries {
            self.u32(lam.0);
            self.u32(idx as u32);
        }
        self.template(&p.skeleton_template);
        self.template(&p.substituted);
    }

    fn dominance(&mut self, w: &DominanceWitness) {
        self.u32(w.proofs.len() as u32);
        for p in &w.proofs {
            self.proof(p);
        }
    }

    fn verdict(&mut self, v: &Verdict) {
        match v {
            Verdict::Member(None) => self.u8(0),
            Verdict::Member(Some(p)) => {
                self.u8(1);
                self.proof(p);
            }
            Verdict::Dominates(None) => self.u8(2),
            Verdict::Dominates(Some(w)) => {
                self.u8(3);
                self.dominance(w);
            }
            Verdict::Equivalent(None) => self.u8(4),
            Verdict::Equivalent(Some(w)) => {
                self.u8(5);
                self.dominance(&w.v_dominates_w);
                self.dominance(&w.w_dominates_v);
            }
        }
    }
}

/// Serialize a cache to bytes (deterministic: entries sorted by key).
pub fn save_cache(cache: &VerdictCache) -> Vec<u8> {
    let snapshot = cache.snapshot();
    let mut w = Writer { buf: Vec::new() };
    w.u64(snapshot.len() as u64);
    for (key, entry) in &snapshot {
        w.u8(match key.kind {
            CheckKind::Member => 0,
            CheckKind::Dominates => 1,
            CheckKind::Equivalent => 2,
        });
        w.u128(key.left.as_u128());
        w.u128(key.right.as_u128());
        w.u32(entry.left_query_fps.len() as u32);
        for fp in entry.left_query_fps.iter() {
            w.u128(fp.as_u128());
        }
        w.verdict(&entry.verdict);
    }
    let payload = w.buf;
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serialize a cache into a file (written atomically via a sibling
/// temporary, so a crash never leaves a half-written cache behind). The
/// temporary *appends* a pid-qualified suffix to the full file name, so
/// distinct cache files in one directory — or concurrent processes —
/// never share a temporary.
pub fn save_cache_to_path(cache: &VerdictCache, path: &Path) -> Result<(), PersistError> {
    let bytes = save_cache(cache);
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt<T>(what: &str) -> Result<T, PersistError> {
        Err(PersistError::Corrupt(what.to_owned()))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() - self.pos < n {
            return Reader::corrupt("unexpected end of payload");
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A count that must be realizable within the remaining payload
    /// (`min_bytes` per element) — rejects absurd lengths before allocating.
    fn count(&mut self, min_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.bytes.len() - self.pos {
            return Reader::corrupt("length prefix exceeds payload");
        }
        Ok(n)
    }

    fn expr(&mut self, depth: usize) -> Result<Expr, PersistError> {
        if depth > 64 {
            return Reader::corrupt("expression nesting too deep");
        }
        match self.u8()? {
            0 => Ok(Expr::Rel(RelId(self.u32()?))),
            1 => {
                let child = self.expr(depth + 1)?;
                let scheme = self.scheme()?;
                if scheme.is_empty() {
                    return Reader::corrupt("empty projection scheme");
                }
                // Direct construction: the validating `Expr::project` needs
                // a catalog that knows the scratch λ names, which no loader
                // has. `Template::new` below still checks witness shape.
                Ok(Expr::Project(Box::new(child), scheme))
            }
            2 => {
                let n = self.count(2)?;
                if n < 2 {
                    return Reader::corrupt("join with fewer than two operands");
                }
                let children = (0..n)
                    .map(|_| self.expr(depth + 1))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::Join(children))
            }
            _ => Reader::corrupt("unknown expression tag"),
        }
    }

    fn scheme(&mut self) -> Result<Scheme, PersistError> {
        let n = self.count(4)?;
        let attrs = (0..n)
            .map(|_| self.u32().map(AttrId))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scheme::collect(attrs))
    }

    fn template(&mut self) -> Result<Template, PersistError> {
        let n = self.count(8)?;
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = RelId(self.u32()?);
            let width = self.count(8)?;
            let row = (0..width)
                .map(|_| {
                    let attr = AttrId(self.u32()?);
                    let ord = self.u32()?;
                    Ok(Symbol::new(attr, ord))
                })
                .collect::<Result<Vec<_>, PersistError>>()?;
            tuples.push(TaggedTuple::from_raw_parts(rel, row));
        }
        Template::new(tuples).map_err(|e| PersistError::Corrupt(format!("invalid template: {e}")))
    }

    fn proof(&mut self) -> Result<ClosureProof, PersistError> {
        let skeleton = self.expr(0)?;
        let n = self.count(8)?;
        let lambda_queries = (0..n)
            .map(|_| Ok((RelId(self.u32()?), self.u32()? as usize)))
            .collect::<Result<Vec<_>, PersistError>>()?;
        let skeleton_template = self.template()?;
        let substituted = self.template()?;
        Ok(ClosureProof {
            skeleton,
            lambda_queries,
            skeleton_template,
            substituted,
        })
    }

    fn dominance(&mut self) -> Result<DominanceWitness, PersistError> {
        let n = self.count(1)?;
        let proofs = (0..n)
            .map(|_| self.proof())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DominanceWitness { proofs })
    }

    fn verdict(&mut self) -> Result<Verdict, PersistError> {
        Ok(match self.u8()? {
            0 => Verdict::Member(None),
            1 => Verdict::Member(Some(self.proof()?)),
            2 => Verdict::Dominates(None),
            3 => Verdict::Dominates(Some(self.dominance()?)),
            4 => Verdict::Equivalent(None),
            5 => Verdict::Equivalent(Some(EquivalenceWitness {
                v_dominates_w: self.dominance()?,
                w_dominates_v: self.dominance()?,
            })),
            _ => return Reader::corrupt("unknown verdict tag"),
        })
    }
}

/// Deserialize a cache from bytes into a cache bounded by `max_entries`
/// (`None` = unbounded). If the saved cache is larger than the bound, only
/// the final `max_entries` entries are kept: the excess is decoded (the
/// whole payload is still integrity-checked) but never inserted, avoiding
/// one full eviction scan per surplus entry. Stamps do not persist, so no
/// entry is more deserving than another; skipping the front of the sorted
/// stream is as good as any policy and keeps loading linear.
pub fn load_cache(bytes: &[u8], max_entries: Option<usize>) -> Result<VerdictCache, PersistError> {
    if bytes.len() < 20 || &bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let checksum = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[20..];
    if fnv1a64(payload) != checksum {
        return Err(PersistError::ChecksumMismatch);
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let count = r.u64()?;
    // Every entry is at least 38 bytes (key + fp-table length + tag).
    if count.saturating_mul(38) > payload.len() as u64 {
        return Reader::corrupt("entry count exceeds payload");
    }
    let cache = VerdictCache::bounded(max_entries);
    let keep_from = match max_entries {
        Some(m) => count.saturating_sub(m.max(1) as u64),
        None => 0,
    };
    for i in 0..count {
        let kind = match r.u8()? {
            0 => CheckKind::Member,
            1 => CheckKind::Dominates,
            2 => CheckKind::Equivalent,
            _ => return Reader::corrupt("unknown check kind"),
        };
        let key = CacheKey {
            kind,
            left: Fingerprint::from_raw(r.u128()?),
            right: Fingerprint::from_raw(r.u128()?),
        };
        let n = r.count(16)?;
        let fps = (0..n)
            .map(|_| r.u128().map(Fingerprint::from_raw))
            .collect::<Result<Vec<_>, _>>()?;
        let verdict = r.verdict()?;
        if verdict.kind() != kind {
            return Reader::corrupt("verdict kind disagrees with its key");
        }
        if i >= keep_from {
            cache.insert(
                key,
                Entry {
                    verdict: Arc::new(verdict),
                    left_query_fps: Arc::from(fps.as_slice()),
                },
            );
        }
    }
    if r.pos != payload.len() {
        return Reader::corrupt("trailing bytes after final entry");
    }
    Ok(cache)
}

/// Load a cache file. A missing file is an [`PersistError::Io`] error;
/// callers that want "missing = start cold" should check existence first.
pub fn load_cache_from_path(
    path: &Path,
    max_entries: Option<usize>,
) -> Result<VerdictCache, PersistError> {
    let bytes = std::fs::read(path)?;
    load_cache(&bytes, max_entries)
}
