//! Verdict-cache persistence: a versioned, checksummed, *name-addressed*
//! on-disk format, plus fleet operations (merge, compact) over cache
//! files.
//!
//! The cache is content-addressed — keys are canonical fingerprints
//! computed over relation content digests, and a fingerprint never changes
//! meaning — so a saved cache can warm any later process whose catalog
//! declares the same relations, in *any* declaration order. To make the
//! memoized witnesses equally portable, the file never stores raw catalog
//! ids: every attribute and relation reference is an index into per-file
//! *name tables*, and scratch `λᵢ` names are stored positionally. Loading
//! keeps witnesses in that file-local id space (entries are marked
//! `foreign`); the engine translates them into the live catalog on first
//! hit via [`translate_entry`].
//!
//! ## Format (version 2)
//!
//! ```text
//! magic      8  bytes  b"VCAPCACH"
//! version    u32 LE
//! checksum   u64 LE    FNV-1a over the payload bytes
//! payload:
//!   attr_table  u32 count, then per attribute: u32 len + UTF-8 bytes
//!   rel_table   u32 count, then per relation:  u32 len + UTF-8 bytes
//!   entry_count u64 LE
//!   entries, sorted by (kind, left, right):
//!     key        kind u8, left u128 LE, right u128 LE
//!     fps        u32 count, u128 LE each    (left_query_fps)
//!     verdict    tag u8, then the witness when the answer was YES
//! ```
//!
//! Normalization verdicts ride the same stream: kind bytes 3 (`simplify`)
//! and 4 (`nonredundant`), verdict tags 6 (a scheme list — the simplified
//! equivalent's TRSs) and 7 (a `u32` list — kept pair indices).
//!
//! Witness encoding: attribute references are attr-table indexes; relation
//! references are rel-table indexes, except scratch `λᵢ` references, which
//! set the high bit ([`LAMBDA_BIT`]) and carry the λ's position in its
//! proof's λ list. Each proof stores its λ list first (one query index per
//! λ), so λ references validate against a known count. Everything is
//! integers and length-prefixed strings; loading is strictly
//! bounds-checked and returns [`PersistError`] — never panics — on
//! truncation, corruption (checksum), version skew, or structurally
//! invalid witnesses ([`Template::new`] re-validates template invariants
//! on the way in).
//!
//! ## Fleet operations
//!
//! [`merge_cache_bytes`] folds N workers' cache files into one (union of
//! verdict sets, last input wins on shared fingerprints, name tables
//! re-interned); [`compact_cache_bytes`] rewrites one file in canonical
//! form, garbage-collecting unreferenced table names and optionally
//! truncating to the newest `max` entries. Both parse every input fully
//! before producing a single output byte, so a corrupt input can never
//! poison an output file.

use crate::cache::{CacheKey, Entry, VerdictCache};
use crate::fingerprint::Fingerprint;
use crate::verdict::{CheckKind, Verdict};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use viewcap_base::{AttrId, Catalog, RelId, Scheme, Symbol};
use viewcap_core::capacity::ClosureProof;
use viewcap_core::equivalence::{DominanceWitness, EquivalenceWitness};
use viewcap_obs as obs;

/// Bytes serialized out of / parsed into the verdict cache (telemetry;
/// live only while enabled). Spans cover the (de)serialization work.
static PERSIST_OUT: obs::Counter = obs::Counter::new("engine.cache.persist_bytes_out");
static PERSIST_IN: obs::Counter = obs::Counter::new("engine.cache.persist_bytes_in");
static SAVE_SPAN: obs::SpanDef =
    obs::SpanDef::new("engine.cache.save", "cache", "span.engine.cache.save");
static LOAD_SPAN: obs::SpanDef =
    obs::SpanDef::new("engine.cache.load", "cache", "span.engine.cache.load");
use viewcap_expr::Expr;
use viewcap_template::{TaggedTuple, Template};

/// Leading magic of every cache file.
pub const MAGIC: &[u8; 8] = b"VCAPCACH";
/// Current format version.
pub const FORMAT_VERSION: u32 = 2;
/// High bit marking a relation reference as a scratch `λ` position. The
/// same bit marks the synthetic in-memory `RelId`s of loaded witnesses:
/// they exist in no catalog, are only ever compared against each other
/// (via the proof's λ list), and survive translation unchanged.
pub const LAMBDA_BIT: u32 = 0x8000_0000;

/// The producer's name tables of a loaded cache file: `attrs[i]` is the
/// name behind file-local `AttrId(i)`, `rels[i]` behind file-local
/// `RelId(i)`. Used to translate `foreign` entries into a live catalog
/// ([`translate_entry`]) and to re-intern names when a loaded cache is
/// saved or merged without ever constructing that catalog.
#[derive(Debug)]
pub struct ImportTables {
    /// File-local attribute names.
    pub attrs: Vec<String>,
    /// File-local relation names.
    pub rels: Vec<String>,
}

/// Why a cache file was rejected.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`FORMAT_VERSION`].
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The payload checksum does not match.
    ChecksumMismatch,
    /// Structurally invalid data (truncation, bad tags, bad invariants).
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file I/O error: {e}"),
            PersistError::BadMagic => write!(f, "not a viewcap cache file (bad magic)"),
            PersistError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "cache file version {found} is not the supported version {expected}"
                )?;
                if *found < *expected {
                    write!(
                        f,
                        " (caches up to version 1 were keyed by catalog declaration \
                         order and cannot be migrated in place: delete the file and \
                         re-run to regenerate it as a content-addressed version-\
                         {expected} cache)"
                    )?;
                }
                Ok(())
            }
            PersistError::ChecksumMismatch => {
                write!(f, "cache file checksum mismatch (corrupted file)")
            }
            PersistError::Corrupt(what) => write!(f, "corrupt cache file: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------- writing

/// Where an entry's ids resolve to names: a live catalog (native entries)
/// or the tables of the file the entry was loaded from (`foreign`
/// entries, saved or merged without ever touching a catalog).
#[derive(Clone, Copy)]
enum NameSource<'a> {
    Catalog(&'a Catalog),
    Tables(&'a ImportTables),
}

impl NameSource<'_> {
    fn attr_name(&self, a: AttrId) -> Option<&str> {
        match self {
            NameSource::Catalog(cat) => (a.index() < cat.attr_count()).then(|| cat.attr_name(a)),
            NameSource::Tables(t) => t.attrs.get(a.index()).map(String::as_str),
        }
    }

    fn rel_name(&self, r: RelId) -> Option<&str> {
        match self {
            NameSource::Catalog(cat) => (r.index() < cat.rel_count()).then(|| cat.rel_name(r)),
            NameSource::Tables(t) => t.rels.get(r.index()).map(String::as_str),
        }
    }
}

/// Interner assigning file-local indexes to names, first encounter first.
#[derive(Default)]
struct TableBuilder {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl TableBuilder {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        i
    }
}

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u128(buf: &mut Vec<u8>, v: u128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encoder for one entry: resolves ids to names via `names`, interning
/// them into the shared output tables. Any unresolvable id aborts the
/// entry (`None`), leaving the output buffer for this entry unused.
struct EntryWriter<'a> {
    buf: Vec<u8>,
    attrs: &'a mut TableBuilder,
    rels: &'a mut TableBuilder,
    names: NameSource<'a>,
    /// λ → position for the proof currently being encoded.
    lambda: HashMap<RelId, u32>,
}

impl EntryWriter<'_> {
    fn attr_ref(&mut self, a: AttrId) -> Option<()> {
        let name = self.names.attr_name(a)?;
        let i = self.attrs.intern(name);
        put_u32(&mut self.buf, i);
        Some(())
    }

    fn rel_ref(&mut self, r: RelId) -> Option<()> {
        if let Some(&pos) = self.lambda.get(&r) {
            put_u32(&mut self.buf, LAMBDA_BIT | pos);
            return Some(());
        }
        let name = self.names.rel_name(r)?;
        let i = self.rels.intern(name);
        if i & LAMBDA_BIT != 0 {
            return None; // 2^31 relation names: not a real catalog
        }
        put_u32(&mut self.buf, i);
        Some(())
    }

    fn expr(&mut self, e: &Expr) -> Option<()> {
        match e {
            Expr::Rel(r) => {
                put_u8(&mut self.buf, 0);
                self.rel_ref(*r)?;
            }
            Expr::Project(child, scheme) => {
                put_u8(&mut self.buf, 1);
                self.expr(child)?;
                self.scheme(scheme)?;
            }
            Expr::Join(children) => {
                put_u8(&mut self.buf, 2);
                put_u32(&mut self.buf, children.len() as u32);
                for c in children {
                    self.expr(c)?;
                }
            }
        }
        Some(())
    }

    fn scheme(&mut self, s: &Scheme) -> Option<()> {
        put_u32(&mut self.buf, s.len() as u32);
        for a in s.iter() {
            self.attr_ref(a)?;
        }
        Some(())
    }

    fn template(&mut self, t: &Template) -> Option<()> {
        put_u32(&mut self.buf, t.len() as u32);
        for tuple in t.tuples() {
            self.rel_ref(tuple.rel())?;
            put_u32(&mut self.buf, tuple.row().len() as u32);
            for sym in tuple.row() {
                self.attr_ref(sym.attr())?;
                put_u32(&mut self.buf, sym.ord());
            }
        }
        Some(())
    }

    fn proof(&mut self, p: &ClosureProof) -> Option<()> {
        // λ list first, so references below validate against its length.
        self.lambda = p
            .lambda_queries
            .iter()
            .enumerate()
            .map(|(pos, &(lam, _))| (lam, pos as u32))
            .collect();
        put_u32(&mut self.buf, p.lambda_queries.len() as u32);
        for &(_, idx) in &p.lambda_queries {
            put_u32(&mut self.buf, idx as u32);
        }
        self.expr(&p.skeleton)?;
        self.template(&p.skeleton_template)?;
        self.template(&p.substituted)?;
        self.lambda.clear();
        Some(())
    }

    fn dominance(&mut self, w: &DominanceWitness) -> Option<()> {
        put_u32(&mut self.buf, w.proofs.len() as u32);
        for p in &w.proofs {
            self.proof(p)?;
        }
        Some(())
    }

    fn verdict(&mut self, v: &Verdict) -> Option<()> {
        match v {
            Verdict::Member(None) => put_u8(&mut self.buf, 0),
            Verdict::Member(Some(p)) => {
                put_u8(&mut self.buf, 1);
                self.proof(p)?;
            }
            Verdict::Dominates(None) => put_u8(&mut self.buf, 2),
            Verdict::Dominates(Some(w)) => {
                put_u8(&mut self.buf, 3);
                self.dominance(w)?;
            }
            Verdict::Equivalent(None) => put_u8(&mut self.buf, 4),
            Verdict::Equivalent(Some(w)) => {
                put_u8(&mut self.buf, 5);
                self.dominance(&w.v_dominates_w)?;
                self.dominance(&w.w_dominates_v)?;
            }
            Verdict::Simplified(schemes) => {
                put_u8(&mut self.buf, 6);
                put_u32(&mut self.buf, schemes.len() as u32);
                for s in schemes {
                    self.scheme(s)?;
                }
            }
            Verdict::Nonredundant(kept) => {
                put_u8(&mut self.buf, 7);
                put_u32(&mut self.buf, kept.len() as u32);
                for &i in kept {
                    put_u32(&mut self.buf, i);
                }
            }
        }
        Some(())
    }

    fn entry(&mut self, key: &CacheKey, entry: &Entry) -> Option<()> {
        put_u8(
            &mut self.buf,
            match key.kind {
                CheckKind::Member => 0,
                CheckKind::Dominates => 1,
                CheckKind::Equivalent => 2,
                CheckKind::Simplify => 3,
                CheckKind::Nonredundant => 4,
            },
        );
        put_u128(&mut self.buf, key.left.as_u128());
        put_u128(&mut self.buf, key.right.as_u128());
        put_u32(&mut self.buf, entry.left_query_fps.len() as u32);
        for fp in entry.left_query_fps.iter() {
            put_u128(&mut self.buf, fp.as_u128());
        }
        self.verdict(&entry.verdict)
    }
}

/// Assemble a finished file from the tables and the encoded entry stream.
fn assemble(attrs: &TableBuilder, rels: &TableBuilder, count: u64, entries: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(entries.len() + 256);
    for table in [attrs, rels] {
        put_u32(&mut payload, table.names.len() as u32);
        for name in &table.names {
            put_u32(&mut payload, name.len() as u32);
            payload.extend_from_slice(name.as_bytes());
        }
    }
    put_u64(&mut payload, count);
    payload.extend_from_slice(entries);

    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Serialize a cache to bytes (deterministic: entries sorted by key, table
/// names interned in first-encounter order over that sorted stream).
///
/// `catalog` resolves the ids of natively computed entries; entries still
/// `foreign` (loaded from disk and never hit) resolve through the cache's
/// own import tables, so merged-in verdicts about relations this catalog
/// never declared survive a save/load cycle losslessly. An entry whose ids
/// resolve nowhere (possible only through API misuse — a witness computed
/// against some *other* catalog) is skipped rather than corrupting the
/// file.
pub fn save_cache(cache: &VerdictCache, catalog: &Catalog) -> Vec<u8> {
    let mut span = SAVE_SPAN.start();
    let snapshot = cache.snapshot();
    let mut attrs = TableBuilder::default();
    let mut rels = TableBuilder::default();
    let mut entries = Vec::new();
    let mut count = 0u64;
    for (key, entry) in &snapshot {
        let names = if entry.foreign {
            match cache.import_tables() {
                Some(tables) => NameSource::Tables(tables),
                None => continue, // foreign entries always come with tables
            }
        } else {
            NameSource::Catalog(catalog)
        };
        let mut w = EntryWriter {
            buf: Vec::new(),
            attrs: &mut attrs,
            rels: &mut rels,
            names,
            lambda: HashMap::new(),
        };
        if w.entry(key, entry).is_some() {
            entries.extend_from_slice(&w.buf);
            count += 1;
        }
    }
    let bytes = assemble(&attrs, &rels, count, &entries);
    span.arg("bytes", bytes.len() as u64);
    span.arg("entries", count);
    PERSIST_OUT.add(bytes.len() as u64);
    bytes
}

/// Write bytes to `path` atomically via a sibling temporary (the
/// temporary *appends* a pid-qualified suffix to the full file name, so
/// distinct files in one directory — or concurrent processes — never
/// share a temporary). A crash or error never leaves a half-written file
/// behind, and the previous contents of `path` survive any failure.
pub fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp_name);
    // Clean the temporary up on *either* failure: a full disk (write) must
    // not leave a stray partial temporary behind any more than a rename
    // failure may.
    if let Err(e) = std::fs::write(&tmp, bytes) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    Ok(())
}

/// Serialize a cache into a file (atomically; see [`write_bytes_atomic`]).
pub fn save_cache_to_path(
    cache: &VerdictCache,
    catalog: &Catalog,
    path: &Path,
) -> Result<(), PersistError> {
    write_bytes_atomic(path, &save_cache(cache, catalog))
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt<T>(what: &str) -> Result<T, PersistError> {
        Err(PersistError::Corrupt(what.to_owned()))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() - self.pos < n {
            return Reader::corrupt("unexpected end of payload");
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A count that must be realizable within the remaining payload
    /// (`min_bytes` per element) — rejects absurd lengths before allocating.
    fn count(&mut self, min_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_bytes) > self.bytes.len() - self.pos {
            return Reader::corrupt("length prefix exceeds payload");
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("table name is not UTF-8".to_owned()))
    }

    fn table(&mut self) -> Result<Vec<String>, PersistError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.string()).collect()
    }

    /// An attribute reference: a validated attr-table index, surfaced as a
    /// file-local [`AttrId`].
    fn attr_ref(&mut self, attrs: usize) -> Result<AttrId, PersistError> {
        let i = self.u32()?;
        if (i as usize) < attrs {
            Ok(AttrId(i))
        } else {
            Reader::corrupt("attribute reference beyond table")
        }
    }

    /// A relation reference: a validated rel-table index (file-local
    /// [`RelId`]) or a λ position (high bit kept).
    fn rel_ref(&mut self, rels: usize, lambdas: usize) -> Result<RelId, PersistError> {
        let i = self.u32()?;
        if i & LAMBDA_BIT != 0 {
            if ((i & !LAMBDA_BIT) as usize) < lambdas {
                Ok(RelId(i))
            } else {
                Reader::corrupt("lambda reference beyond the proof's lambda list")
            }
        } else if (i as usize) < rels {
            Ok(RelId(i))
        } else {
            Reader::corrupt("relation reference beyond table")
        }
    }

    fn expr(
        &mut self,
        depth: usize,
        attrs: usize,
        rels: usize,
        lambdas: usize,
    ) -> Result<Expr, PersistError> {
        if depth > 64 {
            return Reader::corrupt("expression nesting too deep");
        }
        match self.u8()? {
            0 => Ok(Expr::Rel(self.rel_ref(rels, lambdas)?)),
            1 => {
                let child = self.expr(depth + 1, attrs, rels, lambdas)?;
                let scheme = self.scheme(attrs)?;
                if scheme.is_empty() {
                    return Reader::corrupt("empty projection scheme");
                }
                // Direct construction: the validating `Expr::project` needs
                // a catalog that knows the scratch λ names, which no loader
                // has. `Template::new` below still checks witness shape.
                Ok(Expr::Project(Box::new(child), scheme))
            }
            2 => {
                let n = self.count(2)?;
                if n < 2 {
                    return Reader::corrupt("join with fewer than two operands");
                }
                let children = (0..n)
                    .map(|_| self.expr(depth + 1, attrs, rels, lambdas))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::Join(children))
            }
            _ => Reader::corrupt("unknown expression tag"),
        }
    }

    fn scheme(&mut self, attrs: usize) -> Result<Scheme, PersistError> {
        let n = self.count(4)?;
        let ids = (0..n)
            .map(|_| self.attr_ref(attrs))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Scheme::collect(ids))
    }

    fn template(
        &mut self,
        attrs: usize,
        rels: usize,
        lambdas: usize,
    ) -> Result<Template, PersistError> {
        let n = self.count(8)?;
        let mut tuples = Vec::with_capacity(n);
        for _ in 0..n {
            let rel = self.rel_ref(rels, lambdas)?;
            let width = self.count(8)?;
            let row = (0..width)
                .map(|_| {
                    let attr = self.attr_ref(attrs)?;
                    let ord = self.u32()?;
                    Ok(Symbol::new(attr, ord))
                })
                .collect::<Result<Vec<_>, PersistError>>()?;
            tuples.push(TaggedTuple::from_raw_parts(rel, row));
        }
        Template::new(tuples).map_err(|e| PersistError::Corrupt(format!("invalid template: {e}")))
    }

    fn proof(&mut self, attrs: usize, rels: usize) -> Result<ClosureProof, PersistError> {
        let n = self.count(4)?;
        let lambda_queries = (0..n)
            .enumerate()
            .map(|(pos, _)| Ok((RelId(LAMBDA_BIT | pos as u32), self.u32()? as usize)))
            .collect::<Result<Vec<_>, PersistError>>()?;
        let skeleton = self.expr(0, attrs, rels, n)?;
        let skeleton_template = self.template(attrs, rels, n)?;
        let substituted = self.template(attrs, rels, n)?;
        Ok(ClosureProof {
            skeleton,
            lambda_queries,
            skeleton_template,
            substituted,
        })
    }

    fn dominance(&mut self, attrs: usize, rels: usize) -> Result<DominanceWitness, PersistError> {
        let n = self.count(1)?;
        let proofs = (0..n)
            .map(|_| self.proof(attrs, rels))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DominanceWitness { proofs })
    }

    fn verdict(&mut self, attrs: usize, rels: usize) -> Result<Verdict, PersistError> {
        Ok(match self.u8()? {
            0 => Verdict::Member(None),
            1 => Verdict::Member(Some(self.proof(attrs, rels)?)),
            2 => Verdict::Dominates(None),
            3 => Verdict::Dominates(Some(self.dominance(attrs, rels)?)),
            4 => Verdict::Equivalent(None),
            5 => Verdict::Equivalent(Some(EquivalenceWitness {
                v_dominates_w: self.dominance(attrs, rels)?,
                w_dominates_v: self.dominance(attrs, rels)?,
            })),
            6 => {
                let n = self.count(4)?;
                let schemes = (0..n)
                    .map(|_| {
                        let s = self.scheme(attrs)?;
                        if s.is_empty() {
                            return Reader::corrupt("empty simplified scheme");
                        }
                        Ok(s)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Verdict::Simplified(schemes)
            }
            7 => {
                let n = self.count(4)?;
                let kept = (0..n).map(|_| self.u32()).collect::<Result<Vec<_>, _>>()?;
                Verdict::Nonredundant(kept)
            }
            _ => return Reader::corrupt("unknown verdict tag"),
        })
    }
}

/// A fully parsed, integrity-checked cache file, entries still in
/// file-local id space.
struct ParsedCache {
    tables: ImportTables,
    entries: Vec<(CacheKey, Entry)>,
}

fn parse_cache(bytes: &[u8]) -> Result<ParsedCache, PersistError> {
    if bytes.len() < 20 || &bytes[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let checksum = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[20..];
    if fnv1a64(payload) != checksum {
        return Err(PersistError::ChecksumMismatch);
    }

    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let attrs = r.table()?;
    let rels = r.table()?;
    let count = r.u64()?;
    // Every entry is at least 38 bytes (key + fp-table length + tag).
    if count.saturating_mul(38) > (payload.len() - r.pos) as u64 {
        return Reader::corrupt("entry count exceeds payload");
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let kind = match r.u8()? {
            0 => CheckKind::Member,
            1 => CheckKind::Dominates,
            2 => CheckKind::Equivalent,
            3 => CheckKind::Simplify,
            4 => CheckKind::Nonredundant,
            _ => return Reader::corrupt("unknown check kind"),
        };
        let key = CacheKey {
            kind,
            left: Fingerprint::from_raw(r.u128()?),
            right: Fingerprint::from_raw(r.u128()?),
        };
        let n = r.count(16)?;
        let fps = (0..n)
            .map(|_| r.u128().map(Fingerprint::from_raw))
            .collect::<Result<Vec<_>, _>>()?;
        let verdict = r.verdict(attrs.len(), rels.len())?;
        if verdict.kind() != kind {
            return Reader::corrupt("verdict kind disagrees with its key");
        }
        entries.push((
            key,
            Entry {
                verdict: Arc::new(verdict),
                left_query_fps: Arc::from(fps.as_slice()),
                foreign: true,
            },
        ));
    }
    if r.pos != payload.len() {
        return Reader::corrupt("trailing bytes after final entry");
    }
    Ok(ParsedCache {
        tables: ImportTables { attrs, rels },
        entries,
    })
}

/// Deserialize a cache from bytes into a cache bounded by `max_entries`
/// (`None` = unbounded). If the saved cache is larger than the bound, only
/// the final `max_entries` entries are kept: the excess is decoded (the
/// whole payload is still integrity-checked) but never inserted, avoiding
/// one full eviction scan per surplus entry. Stamps do not persist, so no
/// entry is more deserving than another; skipping the front of the sorted
/// stream is as good as any policy and keeps loading linear.
///
/// Loaded entries are `foreign` (witnesses in file-local id space); the
/// engine translates them on first hit. Use against any catalog declaring
/// the relations the producing runs declared — fingerprints are
/// content-addressed, so declaration order is immaterial.
pub fn load_cache(bytes: &[u8], max_entries: Option<usize>) -> Result<VerdictCache, PersistError> {
    let mut span = LOAD_SPAN.start();
    span.arg("bytes", bytes.len() as u64);
    PERSIST_IN.add(bytes.len() as u64);
    let parsed = parse_cache(bytes)?;
    let cache = VerdictCache::bounded(max_entries);
    cache.set_import_tables(Arc::new(parsed.tables));
    let keep_from = match max_entries {
        Some(m) => parsed.entries.len().saturating_sub(m.max(1)),
        None => 0,
    };
    for (key, entry) in parsed.entries.into_iter().skip(keep_from) {
        cache.insert(key, entry);
    }
    Ok(cache)
}

/// Load a cache file. A missing file is an [`PersistError::Io`] error;
/// callers that want "missing = start cold" should check existence first.
pub fn load_cache_from_path(
    path: &Path,
    max_entries: Option<usize>,
) -> Result<VerdictCache, PersistError> {
    let bytes = std::fs::read(path)?;
    load_cache(&bytes, max_entries)
}

/// Fully parse and integrity-check `bytes` as a version-2 cache file
/// without building a cache; returns the entry count. The admission check
/// of [`crate::pilestore`]'s import bridge — a pile may only ever contain
/// records that parse, so corruption can always be localized to record
/// framing, never to record content.
pub fn validate_cache_bytes(bytes: &[u8]) -> Result<usize, PersistError> {
    parse_cache(bytes).map(|parsed| parsed.entries.len())
}

// ----------------------------------------------------------- translation

/// Maps from file-local ids to a live catalog's ids, built once per
/// translated entry.
struct IdMaps {
    attrs: Vec<Option<AttrId>>,
    rels: Vec<Option<RelId>>,
}

impl IdMaps {
    fn new(tables: &ImportTables, catalog: &Catalog) -> IdMaps {
        IdMaps {
            attrs: tables
                .attrs
                .iter()
                .map(|n| catalog.lookup_attr(n).ok())
                .collect(),
            rels: tables
                .rels
                .iter()
                .map(|n| catalog.lookup_rel(n).ok())
                .collect(),
        }
    }

    fn attr(&self, a: AttrId) -> Option<AttrId> {
        self.attrs.get(a.index()).copied().flatten()
    }

    fn rel(&self, r: RelId) -> Option<RelId> {
        if r.0 & LAMBDA_BIT != 0 {
            return Some(r); // synthetic λ ids survive translation
        }
        self.rels.get(r.index()).copied().flatten()
    }

    fn expr(&self, e: &Expr) -> Option<Expr> {
        Some(match e {
            Expr::Rel(r) => Expr::Rel(self.rel(*r)?),
            Expr::Project(child, scheme) => Expr::Project(
                Box::new(self.expr(child)?),
                Scheme::collect(
                    scheme
                        .iter()
                        .map(|a| self.attr(a))
                        .collect::<Option<Vec<_>>>()?,
                ),
            ),
            Expr::Join(children) => Expr::Join(
                children
                    .iter()
                    .map(|c| self.expr(c))
                    .collect::<Option<Vec<_>>>()?,
            ),
        })
    }

    fn template(&self, t: &Template) -> Option<Template> {
        let tuples = t
            .tuples()
            .iter()
            .map(|tup| {
                let rel = self.rel(tup.rel())?;
                let row = tup
                    .row()
                    .iter()
                    .map(|s| Some(Symbol::new(self.attr(s.attr())?, s.ord())))
                    .collect::<Option<Vec<_>>>()?;
                Some(TaggedTuple::from_raw_parts(rel, row))
            })
            .collect::<Option<Vec<_>>>()?;
        Template::new(tuples).ok()
    }

    fn proof(&self, p: &ClosureProof) -> Option<ClosureProof> {
        Some(ClosureProof {
            skeleton: self.expr(&p.skeleton)?,
            lambda_queries: p.lambda_queries.clone(),
            skeleton_template: self.template(&p.skeleton_template)?,
            substituted: self.template(&p.substituted)?,
        })
    }

    fn dominance(&self, w: &DominanceWitness) -> Option<DominanceWitness> {
        Some(DominanceWitness {
            proofs: w
                .proofs
                .iter()
                .map(|p| self.proof(p))
                .collect::<Option<Vec<_>>>()?,
        })
    }

    fn verdict(&self, v: &Verdict) -> Option<Verdict> {
        Some(match v {
            Verdict::Member(None) => Verdict::Member(None),
            Verdict::Member(Some(p)) => Verdict::Member(Some(self.proof(p)?)),
            Verdict::Dominates(None) => Verdict::Dominates(None),
            Verdict::Dominates(Some(w)) => Verdict::Dominates(Some(self.dominance(w)?)),
            Verdict::Equivalent(None) => Verdict::Equivalent(None),
            Verdict::Equivalent(Some(w)) => Verdict::Equivalent(Some(EquivalenceWitness {
                v_dominates_w: self.dominance(&w.v_dominates_w)?,
                w_dominates_v: self.dominance(&w.w_dominates_v)?,
            })),
            Verdict::Simplified(schemes) => Verdict::Simplified(
                schemes
                    .iter()
                    .map(|s| {
                        Some(Scheme::collect(
                            s.iter().map(|a| self.attr(a)).collect::<Option<Vec<_>>>()?,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()?,
            ),
            Verdict::Nonredundant(kept) => Verdict::Nonredundant(kept.clone()),
        })
    }
}

/// Translate a `foreign` entry's witnesses from the file-local id space of
/// `tables` into `catalog`'s ids (names are the bridge). Returns `None`
/// when some referenced name is not declared in `catalog` — the caller
/// should then treat the lookup as a miss and recompute. Scratch λ ids
/// (high bit set) pass through unchanged; they exist in no catalog and are
/// only ever matched structurally against the proof's own λ list.
pub(crate) fn translate_entry(
    entry: &Entry,
    tables: &ImportTables,
    catalog: &Catalog,
) -> Option<Entry> {
    let maps = IdMaps::new(tables, catalog);
    Some(Entry {
        verdict: Arc::new(maps.verdict(&entry.verdict)?),
        left_query_fps: Arc::clone(&entry.left_query_fps),
        foreign: false,
    })
}

// ------------------------------------------------------ merge & compact

/// Outcome of [`merge_cache_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeReport {
    /// Input files merged.
    pub inputs: usize,
    /// Entries across all inputs (before deduplication).
    pub entries_in: usize,
    /// Entries in the merged output.
    pub entries_out: usize,
    /// Entries where a later input overrode an earlier one's verdict for
    /// the same fingerprint key (the verdicts are semantically identical;
    /// last writer wins on the attached stats/witness bytes).
    pub replaced: usize,
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} file(s), {} entrie(s) in, {} out, {} replaced",
            self.inputs, self.entries_in, self.entries_out, self.replaced
        )
    }
}

/// Merge N cache files into one: the union of their verdict sets, keyed by
/// fingerprint. When two inputs hold the same key, the *last* input wins
/// (the verdicts are semantically identical — equal fingerprints mean the
/// same question — so this only picks whose witness bytes persist);
/// witnesses are deduplicated by fingerprint key as a consequence. Name
/// tables are re-interned, so the output references exactly the names its
/// surviving entries use.
///
/// Every input is fully parsed and integrity-checked before any output is
/// produced: a corrupt or version-skewed input yields `Err` and no bytes.
pub fn merge_cache_bytes(inputs: &[Vec<u8>]) -> Result<(Vec<u8>, MergeReport), PersistError> {
    let parsed = inputs
        .iter()
        .map(|bytes| parse_cache(bytes))
        .collect::<Result<Vec<_>, _>>()?;

    // Last-writer-wins union, iterated in input order.
    let mut union: std::collections::BTreeMap<(u8, u128, u128), (usize, &Entry)> =
        std::collections::BTreeMap::new();
    let mut entries_in = 0usize;
    let mut replaced = 0usize;
    for (file_idx, file) in parsed.iter().enumerate() {
        for (key, entry) in &file.entries {
            entries_in += 1;
            if union.insert(key.sort_key(), (file_idx, entry)).is_some() {
                replaced += 1;
            }
        }
    }

    let mut attrs = TableBuilder::default();
    let mut rels = TableBuilder::default();
    let mut encoded = Vec::new();
    let mut count = 0u64;
    for ((kind, left, right), (file_idx, entry)) in &union {
        let key = CacheKey {
            kind: match kind {
                0 => CheckKind::Member,
                1 => CheckKind::Dominates,
                2 => CheckKind::Equivalent,
                3 => CheckKind::Simplify,
                _ => CheckKind::Nonredundant,
            },
            left: Fingerprint::from_raw(*left),
            right: Fingerprint::from_raw(*right),
        };
        let mut w = EntryWriter {
            buf: Vec::new(),
            attrs: &mut attrs,
            rels: &mut rels,
            names: NameSource::Tables(&parsed[*file_idx].tables),
            lambda: HashMap::new(),
        };
        if w.entry(&key, entry).is_some() {
            encoded.extend_from_slice(&w.buf);
            count += 1;
        }
    }
    let out = assemble(&attrs, &rels, count, &encoded);
    let report = MergeReport {
        inputs: inputs.len(),
        entries_in,
        entries_out: count as usize,
        replaced,
    };
    Ok((out, report))
}

/// Outcome of [`compact_cache_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Entries in the input file.
    pub entries_in: usize,
    /// Entries kept.
    pub entries_out: usize,
    /// Input size in bytes.
    pub bytes_in: usize,
    /// Output size in bytes.
    pub bytes_out: usize,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} entrie(s), {} -> {} byte(s)",
            self.entries_in, self.entries_out, self.bytes_in, self.bytes_out
        )
    }
}

/// Rewrite one cache file in canonical form: entries stay sorted,
/// optionally truncated to the *last* `max_entries` of the sorted stream
/// (mirroring [`load_cache`]'s bound semantics), and the name tables are
/// re-interned so names no surviving entry references are dropped —
/// the table garbage a long merge lineage accumulates.
pub fn compact_cache_bytes(
    bytes: &[u8],
    max_entries: Option<usize>,
) -> Result<(Vec<u8>, CompactReport), PersistError> {
    let parsed = parse_cache(bytes)?;
    let entries_in = parsed.entries.len();
    let keep_from = match max_entries {
        Some(m) => entries_in.saturating_sub(m.max(1)),
        None => 0,
    };
    let mut attrs = TableBuilder::default();
    let mut rels = TableBuilder::default();
    let mut encoded = Vec::new();
    let mut count = 0u64;
    for (key, entry) in &parsed.entries[keep_from..] {
        let mut w = EntryWriter {
            buf: Vec::new(),
            attrs: &mut attrs,
            rels: &mut rels,
            names: NameSource::Tables(&parsed.tables),
            lambda: HashMap::new(),
        };
        if w.entry(key, entry).is_some() {
            encoded.extend_from_slice(&w.buf);
            count += 1;
        }
    }
    let out = assemble(&attrs, &rels, count, &encoded);
    let report = CompactReport {
        entries_in,
        entries_out: count as usize,
        bytes_in: bytes.len(),
        bytes_out: out.len(),
    };
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "viewcap-persist-atomic-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The `.tmp-*` siblings of `path` (the atomic write's temporaries).
    fn stray_temporaries(path: &Path) -> Vec<std::path::PathBuf> {
        let dir = path.parent().unwrap();
        std::fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.to_string_lossy().contains(".tmp-"))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn write_bytes_atomic_cleans_up_when_the_rename_fails() {
        let dir = scratch_dir("rename-fail");
        let target = dir.join("cache.vcapcache");
        std::fs::write(&target, b"previous contents").unwrap();
        // Renaming a file over a non-empty directory fails on every
        // platform we build on — a deterministic rename failure.
        let blocked = dir.join("blocked");
        std::fs::create_dir(&blocked).unwrap();
        std::fs::write(blocked.join("nonempty"), b"x").unwrap();
        let err = write_bytes_atomic(&blocked, b"new bytes").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        assert!(
            stray_temporaries(&target).is_empty(),
            "rename failure must remove the temporary"
        );
        assert_eq!(
            std::fs::read(&target).unwrap(),
            b"previous contents",
            "unrelated files survive untouched"
        );
    }

    #[test]
    fn write_bytes_atomic_cleans_up_when_the_write_fails() {
        let dir = scratch_dir("write-fail");
        // A target inside a missing directory: creating the temporary
        // itself fails, and no `.tmp-*` file may be left anywhere.
        let target = dir.join("missing-subdir").join("cache.vcapcache");
        let err = write_bytes_atomic(&target, b"bytes").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
        assert!(
            stray_temporaries(&dir.join("anything")).is_empty(),
            "write failure must not leave temporaries in the parent"
        );
        assert!(!dir.join("missing-subdir").exists());
    }

    #[test]
    fn write_bytes_atomic_overwrites_and_leaves_no_temporaries_on_success() {
        let dir = scratch_dir("success");
        let target = dir.join("cache.vcapcache");
        std::fs::write(&target, b"old").unwrap();
        write_bytes_atomic(&target, b"new").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"new");
        assert!(stray_temporaries(&target).is_empty());
    }
}
