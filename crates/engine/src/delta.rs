//! Incremental re-checking: delta workloads over an evolving catalog.
//!
//! The decision procedures are one-shot, but real catalogs evolve: one
//! view's defining query is edited and everything else stands. A
//! [`DeltaWorkload`] keeps a *standing* workload of checks together with
//! their last decisions and, per request, the canonical fingerprints of the
//! views it touches. When a view is edited
//! ([`DeltaWorkload::replace_view`]), only the requests whose dependency
//! set contains the edited view are invalidated; [`DeltaWorkload::run`]
//! re-poses exactly those to the engine (where the content-addressed
//! verdict cache may *still* answer some of them — e.g. an edit that was
//! reverted) and reuses every retained decision verbatim.
//!
//! **Correctness.** Fingerprints are content hashes, so a retained decision
//! can only be wrong if an unedited request's answer changed — impossible,
//! since its operand views (and hence the capacity questions they pose) are
//! untouched. Two distinct views may share a fingerprint (equivalent
//! defining-query multisets); replacement therefore matches operands by
//! fingerprint *and* view schema, so editing one of two equivalent views
//! never rewrites checks against the other. The differential conformance
//! suite (`tests/delta_conformance.rs`) asserts byte-identical agreement
//! with cold full re-runs across randomized edit sequences.

use crate::cache::CacheKey;
use crate::engine::{Decision, Engine};
use crate::fingerprint::{view_fingerprint, Fingerprint};
use crate::workload::{Check, Request, Workload};
use std::collections::HashMap;
use viewcap_base::Catalog;
use viewcap_core::View;
use viewcap_obs as obs;
use viewcap_template::SearchOverflow;

/// Standing checks invalidated by view edits (telemetry; live only
/// while enabled).
static DELTA_INVALIDATED: obs::Counter = obs::Counter::new("engine.delta.invalidated");

/// One standing request: the labeled check, its cache key, the fingerprints
/// of the views it touches, and its retained decision (`None` = dirty).
struct Standing {
    request: Request,
    key: CacheKey,
    view_deps: Vec<Fingerprint>,
    decision: Option<Result<Decision, SearchOverflow>>,
}

/// Summary of one [`DeltaWorkload::run`].
#[derive(Debug)]
pub struct DeltaOutcome {
    /// Per-request outcomes, positionally aligned with the standing
    /// workload. `Err` means the bounded search overflowed.
    pub results: Vec<Result<Decision, SearchOverflow>>,
    /// Standing requests.
    pub total: usize,
    /// Requests whose retained decision was reused without re-posing.
    pub reused: usize,
    /// Requests re-posed to the engine (dirty or never decided).
    pub recomputed: usize,
    /// Of the re-posed distinct classes, how many the verdict cache still
    /// answered (e.g. a reverted edit, or cross-view sharing).
    pub cache_hits: usize,
    /// Distinct classes the engine actually computed.
    pub executed: usize,
}

/// A standing workload with fingerprint-tracked dependencies and retained
/// decisions, supporting catalog edits at the view level.
#[derive(Default)]
pub struct DeltaWorkload {
    standing: Vec<Standing>,
    /// `(cache key, label)` → standing indices, so `push_decided` upserts
    /// in O(1) instead of scanning the workload (which would make feeding
    /// an n-check batch O(n²)). Multiple indices under one key only when
    /// fingerprint-equal but distinct views share a label — disambiguated
    /// by operand schemas at lookup.
    index: HashMap<(CacheKey, String), Vec<usize>>,
}

/// The fingerprints of every view a check touches (its dependency set).
fn view_deps(check: &Check, catalog: &Catalog) -> Vec<Fingerprint> {
    match check {
        Check::Member { view, .. } => vec![view_fingerprint(view, catalog)],
        Check::Dominates {
            dominator,
            dominated,
        } => vec![
            view_fingerprint(dominator, catalog),
            view_fingerprint(dominated, catalog),
        ],
        Check::Equivalent { left, right } => {
            vec![
                view_fingerprint(left, catalog),
                view_fingerprint(right, catalog),
            ]
        }
    }
}

/// Does `operand` denote exactly the view `target`? Fingerprint equality
/// pins the defining-query multiset; schema equality pins *which* view.
fn same_view(operand: &View, target_fp: Fingerprint, target: &View, catalog: &Catalog) -> bool {
    view_fingerprint(operand, catalog) == target_fp && operand.schema() == target.schema()
}

/// Same-kind checks over the same concrete views (by schema; the shared
/// cache key already pins the semantic content). Equivalence is matched in
/// either orientation, mirroring its orientation-free key.
fn same_operands(a: &Check, b: &Check) -> bool {
    match (a, b) {
        (Check::Member { view: v1, .. }, Check::Member { view: v2, .. }) => {
            v1.schema() == v2.schema()
        }
        (
            Check::Dominates {
                dominator: d1,
                dominated: e1,
            },
            Check::Dominates {
                dominator: d2,
                dominated: e2,
            },
        ) => d1.schema() == d2.schema() && e1.schema() == e2.schema(),
        (
            Check::Equivalent {
                left: l1,
                right: r1,
            },
            Check::Equivalent {
                left: l2,
                right: r2,
            },
        ) => {
            (l1.schema() == l2.schema() && r1.schema() == r2.schema())
                || (l1.schema() == r2.schema() && r1.schema() == l2.schema())
        }
        _ => false,
    }
}

impl DeltaWorkload {
    /// Empty standing workload.
    pub fn new() -> Self {
        DeltaWorkload::default()
    }

    /// Number of standing requests.
    pub fn len(&self) -> usize {
        self.standing.len()
    }

    /// Is the standing workload empty?
    pub fn is_empty(&self) -> bool {
        self.standing.is_empty()
    }

    /// The standing requests, in submission order.
    pub fn requests(&self) -> impl ExactSizeIterator<Item = &Request> + '_ {
        self.standing.iter().map(|s| &s.request)
    }

    /// Clone the standing requests into a plain [`Workload`] — what a cold
    /// engine would be asked; the conformance baseline.
    pub fn to_workload(&self) -> Workload {
        Workload {
            requests: self.requests().cloned().collect(),
        }
    }

    /// Index of the standing request that poses *the same question the
    /// same way*: equal cache key, equal operand views (by schema — a
    /// fingerprint-equal but distinct view is a different question for
    /// editing purposes), and equal label. Anything looser would silently
    /// drop user-posed checks from the standing workload.
    fn position_of(&self, key: &CacheKey, check: &Check, label: &str) -> Option<usize> {
        self.index
            .get(&(*key, label.to_owned()))?
            .iter()
            .copied()
            .find(|&i| same_operands(&self.standing[i].request.check, check))
    }

    fn index_insert(&mut self, key: CacheKey, label: &str, i: usize) {
        self.index
            .entry((key, label.to_owned()))
            .or_default()
            .push(i);
    }

    fn index_remove(&mut self, key: CacheKey, label: &str, i: usize) {
        if let Some(slots) = self.index.get_mut(&(key, label.to_owned())) {
            slots.retain(|&j| j != i);
        }
    }

    /// Append an undecided check; it will compute on the next
    /// [`DeltaWorkload::run`]. Returns its index.
    pub fn push(&mut self, label: impl Into<String>, check: Check, catalog: &Catalog) -> usize {
        self.push_inner(label.into(), check, None, catalog)
    }

    /// Append a check that was already decided (e.g. by
    /// [`Engine::decide`]), seeding its retained decision so `run` will not
    /// re-pose it. If an *identical* standing request exists (same key,
    /// same operand views, same label), its decision is refreshed in place
    /// instead. Returns the index.
    pub fn push_decided(
        &mut self,
        label: impl Into<String>,
        check: Check,
        decision: Decision,
        catalog: &Catalog,
    ) -> usize {
        let label = label.into();
        let key = Engine::cache_key(&check, catalog);
        if let Some(i) = self.position_of(&key, &check, &label) {
            self.standing[i].decision = Some(Ok(decision));
            return i;
        }
        self.push_inner(label, check, Some(Ok(decision)), catalog)
    }

    fn push_inner(
        &mut self,
        label: String,
        check: Check,
        decision: Option<Result<Decision, SearchOverflow>>,
        catalog: &Catalog,
    ) -> usize {
        let key = Engine::cache_key(&check, catalog);
        let deps = view_deps(&check, catalog);
        let i = self.standing.len();
        self.index_insert(key, &label, i);
        self.standing.push(Standing {
            request: Request { label, check },
            key,
            view_deps: deps,
            decision,
        });
        i
    }

    /// Apply a catalog edit: the view `old` (typically with one defining
    /// query added, removed, or replaced) becomes `new`. Every standing
    /// request that touches `old` — found by fingerprint dependency
    /// tracking, confirmed by schema — has that operand swapped for `new`
    /// and its retained decision invalidated. Returns how many requests
    /// were invalidated.
    pub fn replace_view(&mut self, old: &View, new: &View, catalog: &Catalog) -> usize {
        let old_fp = view_fingerprint(old, catalog);
        let mut invalidated = 0;
        for i in 0..self.standing.len() {
            let s = &mut self.standing[i];
            // Fast path: fingerprint dependency tracking.
            if !s.view_deps.contains(&old_fp) {
                continue;
            }
            let swap = |v: &View| -> Option<View> {
                same_view(v, old_fp, old, catalog).then(|| new.clone())
            };
            let touched = match &mut s.request.check {
                Check::Member { view, .. } => match swap(view) {
                    Some(n) => {
                        *view = n;
                        true
                    }
                    None => false,
                },
                Check::Dominates {
                    dominator,
                    dominated,
                } => {
                    let mut t = false;
                    for v in [dominator, dominated] {
                        if let Some(n) = swap(v) {
                            *v = n;
                            t = true;
                        }
                    }
                    t
                }
                Check::Equivalent { left, right } => {
                    let mut t = false;
                    for v in [left, right] {
                        if let Some(n) = swap(v) {
                            *v = n;
                            t = true;
                        }
                    }
                    t
                }
            };
            if touched {
                let old_key = s.key;
                let new_key = Engine::cache_key(&s.request.check, catalog);
                let label = s.request.label.clone();
                s.key = new_key;
                s.view_deps = view_deps(&s.request.check, catalog);
                s.decision = None;
                invalidated += 1;
                if new_key != old_key {
                    self.index_remove(old_key, &label, i);
                    self.index_insert(new_key, &label, i);
                }
            }
        }
        DELTA_INVALIDATED.add(invalidated as u64);
        obs::instant(
            "engine.delta.replace_view",
            "engine",
            &[("invalidated", invalidated as u64)],
        );
        invalidated
    }

    /// Apply a multi-edit transaction: every `(old, new)` pair in `edits`
    /// becomes one sweep over the standing workload, invalidating each
    /// touched request once even when several edits hit it. Per request the
    /// pairs apply *in order* — an edit whose `old` is a previous edit's
    /// `new` composes exactly as sequential [`DeltaWorkload::replace_view`]
    /// calls would — so verdicts and witnesses after the next run are
    /// byte-identical to the sequential path (the txn differential suite
    /// pins this); only the invalidation accounting is batched. Returns how
    /// many requests were invalidated.
    pub fn replace_views(&mut self, edits: &[(View, View)], catalog: &Catalog) -> usize {
        if edits.is_empty() {
            return 0;
        }
        let fps: Vec<Fingerprint> = edits
            .iter()
            .map(|(old, _)| view_fingerprint(old, catalog))
            .collect();
        let mut invalidated = 0;
        for i in 0..self.standing.len() {
            let s = &mut self.standing[i];
            let mut touched = false;
            for ((old, new), &old_fp) in edits.iter().zip(&fps) {
                // Fast path: fingerprint dependency tracking (recomputed
                // after a hit, since an earlier pair may have swapped an
                // operand this pair's `old` now matches).
                if !s.view_deps.contains(&old_fp) {
                    continue;
                }
                let swap = |v: &View| -> Option<View> {
                    same_view(v, old_fp, old, catalog).then(|| new.clone())
                };
                let mut hit = false;
                match &mut s.request.check {
                    Check::Member { view, .. } => {
                        if let Some(n) = swap(view) {
                            *view = n;
                            hit = true;
                        }
                    }
                    Check::Dominates {
                        dominator,
                        dominated,
                    } => {
                        for v in [dominator, dominated] {
                            if let Some(n) = swap(v) {
                                *v = n;
                                hit = true;
                            }
                        }
                    }
                    Check::Equivalent { left, right } => {
                        for v in [left, right] {
                            if let Some(n) = swap(v) {
                                *v = n;
                                hit = true;
                            }
                        }
                    }
                }
                if hit {
                    s.view_deps = view_deps(&s.request.check, catalog);
                    touched = true;
                }
            }
            if touched {
                let old_key = s.key;
                let new_key = Engine::cache_key(&s.request.check, catalog);
                let label = s.request.label.clone();
                s.key = new_key;
                s.decision = None;
                invalidated += 1;
                if new_key != old_key {
                    self.index_remove(old_key, &label, i);
                    self.index_insert(new_key, &label, i);
                }
            }
        }
        DELTA_INVALIDATED.add(invalidated as u64);
        obs::instant(
            "engine.delta.replace_views",
            "engine",
            &[
                ("edits", edits.len() as u64),
                ("invalidated", invalidated as u64),
            ],
        );
        invalidated
    }

    /// Remove every standing request that touches `view` (a view being
    /// dropped from the catalog). Returns how many were removed.
    pub fn remove_view(&mut self, view: &View, catalog: &Catalog) -> usize {
        let fp = view_fingerprint(view, catalog);
        let before = self.standing.len();
        self.standing.retain(|s| {
            !(s.view_deps.contains(&fp)
                && match &s.request.check {
                    Check::Member { view: v, .. } => same_view(v, fp, view, catalog),
                    Check::Dominates {
                        dominator,
                        dominated,
                    } => {
                        same_view(dominator, fp, view, catalog)
                            || same_view(dominated, fp, view, catalog)
                    }
                    Check::Equivalent { left, right } => {
                        same_view(left, fp, view, catalog) || same_view(right, fp, view, catalog)
                    }
                })
        });
        // Removal shifts indices; rebuild the upsert index.
        let mut index: HashMap<(CacheKey, String), Vec<usize>> = HashMap::new();
        for (i, s) in self.standing.iter().enumerate() {
            index
                .entry((s.key, s.request.label.clone()))
                .or_default()
                .push(i);
        }
        self.index = index;
        before - self.standing.len()
    }

    /// Decide the standing workload: re-pose only the dirty requests as one
    /// batch (deduplicated, cache-resolved, parallel across `jobs`
    /// workers), reuse every retained decision, and return the full
    /// positionally-aligned picture.
    pub fn run(&mut self, engine: &Engine, catalog: &Catalog, jobs: usize) -> DeltaOutcome {
        let dirty: Vec<usize> = (0..self.standing.len())
            .filter(|&i| self.standing[i].decision.is_none())
            .collect();

        let mut sub = Workload::new();
        for &i in &dirty {
            let r = &self.standing[i].request;
            sub.push(r.label.clone(), r.check.clone());
        }
        let batch = engine.run_batch(&sub, catalog, jobs);
        for (&i, result) in dirty.iter().zip(batch.results) {
            self.standing[i].decision = Some(result);
        }

        let results = self
            .standing
            .iter()
            .map(|s| s.decision.clone().expect("every request decided by run"))
            .collect();
        DeltaOutcome {
            results,
            total: self.standing.len(),
            reused: self.standing.len() - dirty.len(),
            recomputed: dirty.len(),
            cache_hits: batch.cache_hits,
            executed: batch.executed,
        }
    }
}
