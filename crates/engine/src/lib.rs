//! # viewcap-engine
//!
//! A concurrent batch decision engine over the Connors decision procedures
//! (capacity membership, view dominance, view equivalence).
//!
//! The paper's procedures are one-shot: every call re-derives template
//! homomorphisms from scratch. Real workloads ask many related questions —
//! audits sweep one view against many goals, equivalence maintenance
//! rechecks the same pairs — so this crate adds the memoization layer that
//! symbolic equivalence checkers (e.g. EQUITAS) use to scale: normalize to
//! a canonical form *first*, then decide per canonical class.
//!
//! * [`fingerprint`] — stable 128-bit keys from reduced canonical
//!   templates, catalog-content-addressed: invariant under catalog
//!   declaration order and defining-query reordering, keyed by relation
//!   content (name + scheme);
//! * [`cache`] — a sharded `RwLock` verdict cache memoizing outcomes
//!   *with their constructive witnesses*, optionally bounded by a sharded
//!   LRU-ish eviction policy;
//! * [`workload`] / [`engine`] — batches of labeled checks, deduplicated
//!   by fingerprint and executed across `std::thread::scope` workers with
//!   deterministic, submission-ordered reassembly;
//! * [`delta`] — incremental re-checking: a standing workload that, after
//!   a catalog edit (one view's defining query added / removed /
//!   replaced), invalidates exactly the affected decisions via fingerprint
//!   dependency tracking and re-poses only those;
//! * [`persist`] — a versioned, checksummed, name-addressed on-disk format
//!   for the verdict cache, witnesses included, so warm caches survive
//!   across batches, processes, and catalog declaration orders — plus
//!   fleet operations: merging N workers' cache files into one and
//!   compacting merge lineages.
//!
//! ```
//! use viewcap_base::Catalog;
//! use viewcap_core::{Query, View};
//! use viewcap_engine::{Check, Engine, Workload};
//! use viewcap_expr::parse_expr;
//!
//! let mut cat = Catalog::new();
//! cat.relation("R", &["A", "B", "C"]).unwrap();
//! let ab = cat.scheme(&["A", "B"]).unwrap();
//! let bc = cat.scheme(&["B", "C"]).unwrap();
//! let (l1, l2) = (cat.fresh_relation("l1", ab), cat.fresh_relation("l2", bc));
//! let view = View::from_exprs(
//!     vec![
//!         (parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
//!         (parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
//!     ],
//!     &cat,
//! )
//! .unwrap();
//!
//! let mut workload = Workload::new();
//! for goal in ["pi{A}(R)", "pi{A,B}(R) * pi{B,C}(R)", "R", "pi{A}(R)"] {
//!     workload.push(
//!         goal,
//!         Check::Member {
//!             view: view.clone(),
//!             goal: Query::from_expr(parse_expr(goal, &cat).unwrap(), &cat),
//!         },
//!     );
//! }
//!
//! let engine = Engine::new();
//! let outcome = engine.run_batch(&workload, &cat, 4);
//! let yes: Vec<bool> = outcome
//!     .results
//!     .iter()
//!     .map(|r| r.as_ref().unwrap().verdict.is_yes())
//!     .collect();
//! assert_eq!(yes, [true, true, false, true]);
//! assert_eq!(outcome.distinct, 3); // the repeated goal deduplicated
//! assert!(engine.run_batch(&workload, &cat, 4).executed == 0); // warm
//! ```

pub mod cache;
pub mod config;
pub mod delta;
pub mod engine;
pub mod fingerprint;
pub mod persist;
pub mod pilestore;
pub mod spacestore;
pub mod verdict;
pub mod workload;

pub use cache::{CacheKey, CacheStats, VerdictCache};
pub use config::{ConfigError, EngineConfig, PersistSummary, Session};
pub use delta::{DeltaOutcome, DeltaWorkload};
pub use engine::{effective_jobs, BatchOutcome, Decision, Engine, EnumStats};
pub use fingerprint::{
    ordered_view_fingerprint, query_fingerprint, view_fingerprint, view_query_fingerprints,
    Fingerprint,
};
pub use persist::{
    compact_cache_bytes, load_cache, load_cache_from_path, merge_cache_bytes, save_cache,
    save_cache_to_path, validate_cache_bytes, write_bytes_atomic, CompactReport, ImportTables,
    MergeReport, PersistError,
};
pub use pilestore::{PileStore, PileStoreError, CACHE_RECORD_KIND, SPACE_RECORD_KIND};
pub use spacestore::{SpaceLibrary, SpaceStoreError, SPACE_LIB_MAGIC, SPACE_LIB_VERSION};
pub use verdict::{CheckKind, Verdict};
pub use workload::{Check, Request, Workload};
