//! Verdicts: decision outcomes with their constructive witnesses.

use std::fmt;
use viewcap_base::Scheme;
use viewcap_core::capacity::ClosureProof;
use viewcap_core::equivalence::{DominanceWitness, EquivalenceWitness};

/// The decision procedures the engine memoizes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// Capacity membership: `Q ∈ Cap(𝒱)` (Theorem 2.4.11).
    Member,
    /// View dominance: `Cap(𝒲) ⊆ Cap(𝒱)` (Lemma 1.5.4).
    Dominates,
    /// View equivalence: dominance both ways (Theorem 2.4.12).
    Equivalent,
    /// Simplification: the view's simplified normal form (Theorem 4.1.3).
    Simplify,
    /// Greedy nonredundant subset of the defining queries (Theorem 3.1.4).
    Nonredundant,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckKind::Member => "member",
            CheckKind::Dominates => "dominates",
            CheckKind::Equivalent => "equivalent",
            CheckKind::Simplify => "simplify",
            CheckKind::Nonredundant => "nonredundant",
        })
    }
}

/// A decided check, witness included.
///
/// Witnesses are the paper's constructions: a [`ClosureProof`] per derived
/// defining query. They stay valid for every request that maps to the same
/// cache key, because equal fingerprints mean isomorphic reduced templates
/// — only positional *labels* may need remapping
/// (see [`Decision::member_witness_names`](crate::Decision::member_witness_names)).
// Verdicts live behind `Arc` in the cache and in every `Decision`, so the
// variant-size imbalance never gets copied around.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Membership outcome.
    Member(Option<ClosureProof>),
    /// Dominance outcome.
    Dominates(Option<DominanceWitness>),
    /// Equivalence outcome.
    Equivalent(Option<EquivalenceWitness>),
    /// Simplification outcome: the TRSs of the simplified equivalent's
    /// defining queries, in result order. The schemes alone reproduce the
    /// simplified view's *shape* (Theorem 4.2.2 makes the queries behind
    /// them unique up to equivalence, and each is a projection of an
    /// original defining query — Theorem 4.2.1 — so they need not be
    /// stored to re-mint view-schema relations or render reports).
    Simplified(Vec<Scheme>),
    /// Nonredundant outcome: indices of the kept defining pairs, in the
    /// producing view's pair order (the cache key pins that order, so the
    /// indices are positional for every request that hits this entry).
    Nonredundant(Vec<u32>),
}

impl Verdict {
    /// Which procedure produced this verdict.
    pub fn kind(&self) -> CheckKind {
        match self {
            Verdict::Member(_) => CheckKind::Member,
            Verdict::Dominates(_) => CheckKind::Dominates,
            Verdict::Equivalent(_) => CheckKind::Equivalent,
            Verdict::Simplified(_) => CheckKind::Simplify,
            Verdict::Nonredundant(_) => CheckKind::Nonredundant,
        }
    }

    /// Did the check answer "yes"? Normalization verdicts are
    /// constructions, not predicates; they always count as "yes".
    pub fn is_yes(&self) -> bool {
        match self {
            Verdict::Member(w) => w.is_some(),
            Verdict::Dominates(w) => w.is_some(),
            Verdict::Equivalent(w) => w.is_some(),
            Verdict::Simplified(_) | Verdict::Nonredundant(_) => true,
        }
    }

    /// Total atom count across the witness's construction skeletons, if the
    /// answer was "yes". Symmetric in both directions for equivalence, so
    /// it is safe to report for cache hits of either orientation.
    pub fn witness_atoms(&self) -> Option<usize> {
        fn dom_atoms(w: &DominanceWitness) -> usize {
            w.proofs.iter().map(|p| p.skeleton.atom_count()).sum()
        }
        match self {
            Verdict::Member(w) => w.as_ref().map(|p| p.skeleton.atom_count()),
            Verdict::Dominates(w) => w.as_ref().map(dom_atoms),
            Verdict::Equivalent(w) => w
                .as_ref()
                .map(|e| dom_atoms(&e.v_dominates_w) + dom_atoms(&e.w_dominates_v)),
            Verdict::Simplified(_) | Verdict::Nonredundant(_) => None,
        }
    }
}
