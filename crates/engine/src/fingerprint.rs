//! Canonical fingerprints for queries and views.
//!
//! A [`Fingerprint`] is a stable 128-bit key derived from the word encoding
//! of the reduced template's canonical key ([`viewcap_template::CanonKey`]).
//! Because equal canonical-key encodings imply isomorphic templates, equal
//! fingerprints imply equivalent queries (up to the negligible chance of a
//! 128-bit hash collision) — the soundness direction the verdict cache
//! relies on. The converse may fail (equivalent queries can fingerprint
//! differently when the canonical key degrades to its inexact form), which
//! only costs cache hits, never correctness.
//!
//! Invariances:
//!
//! * **relation renaming** — relation *names* never enter the key; only
//!   the stable [`RelId`](viewcap_base::RelId)s and template structure do;
//! * **nondistinguished symbol renaming** — inherited from the canonical
//!   key;
//! * **defining-query reordering** — [`view_fingerprint`] hashes the
//!   *sorted* multiset of per-query fingerprints, so a view's fingerprint
//!   does not depend on the order of its defining pairs.

use std::fmt;
use viewcap_core::{Query, View};

/// A 128-bit canonical fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuild a fingerprint from its raw value. Crate-internal: only the
    /// persistence layer ([`crate::persist`]) may resurrect fingerprints,
    /// and only ones that were produced by this module and saved verbatim.
    pub(crate) fn from_raw(bits: u128) -> Fingerprint {
        Fingerprint(bits)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// SplitMix64 finalizer — a strong 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a word stream into 128 bits with two independently seeded lanes.
fn fold(words: impl Iterator<Item = u64>) -> Fingerprint {
    let mut lo: u64 = 0x243F_6A88_85A3_08D3; // pi
    let mut hi: u64 = 0xB7E1_5162_8AED_2A6A; // e
    let mut len: u64 = 0;
    for w in words {
        len += 1;
        lo = mix(lo ^ w.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(len)));
        hi = mix(hi.rotate_left(23) ^ w ^ 0xA5A5_A5A5_A5A5_A5A5);
    }
    lo = mix(lo ^ len);
    hi = mix(hi ^ len.rotate_left(32));
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

/// Test-only: a fingerprint with a chosen bit pattern.
#[cfg(test)]
pub(crate) fn test_fingerprint(n: u128) -> Fingerprint {
    Fingerprint::from_raw(n)
}

/// Fingerprint of a query: hash of its reduced template's canonical key.
pub fn query_fingerprint(q: &Query) -> Fingerprint {
    fold(q.canonical_key().words().iter().copied())
}

/// Ordered per-defining-query fingerprints of a view.
///
/// This *does* depend on pair order — it is the positional table used to
/// remap cached witness indices onto a requesting view's schema.
pub fn view_query_fingerprints(v: &View) -> Vec<Fingerprint> {
    v.pairs()
        .iter()
        .map(|(q, _)| query_fingerprint(q))
        .collect()
}

/// Fingerprint of a view: hash of the sorted multiset of its defining
/// queries' fingerprints. Invariant under pair reordering and under
/// renaming of the view-schema relations.
pub fn view_fingerprint(v: &View) -> Fingerprint {
    let mut fps: Vec<u128> = view_query_fingerprints(v)
        .into_iter()
        .map(Fingerprint::as_u128)
        .collect();
    fps.sort_unstable();
    fold(
        fps.into_iter()
            .flat_map(|fp| [fp as u64, (fp >> 64) as u64]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::Catalog;
    use viewcap_core::View;
    use viewcap_expr::parse_expr;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        cat
    }

    fn q(cat: &Catalog, src: &str) -> Query {
        Query::from_expr(parse_expr(src, cat).unwrap(), cat)
    }

    #[test]
    fn equivalent_realizations_share_a_fingerprint() {
        let cat = setup();
        // R ⋈ π_AB(R) reduces to R's template.
        assert_eq!(
            query_fingerprint(&q(&cat, "R * pi{A,B}(R)")),
            query_fingerprint(&q(&cat, "R"))
        );
        assert_ne!(
            query_fingerprint(&q(&cat, "pi{A,B}(R)")),
            query_fingerprint(&q(&cat, "pi{B,C}(R)"))
        );
    }

    #[test]
    fn view_fingerprint_ignores_pair_order_and_names() {
        let mut cat = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let (q1, q2) = (q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)"));
        let n1 = cat.fresh_relation("x", ab.clone());
        let n2 = cat.fresh_relation("y", bc.clone());
        let n3 = cat.fresh_relation("z", ab);
        let n4 = cat.fresh_relation("w", bc);
        let v = View::new(vec![(q1.clone(), n1), (q2.clone(), n2)], &cat).unwrap();
        let w = View::new(vec![(q2, n4), (q1, n3)], &cat).unwrap();
        assert_eq!(view_fingerprint(&v), view_fingerprint(&w));
        // The positional table still sees the order.
        assert_ne!(view_query_fingerprints(&v), view_query_fingerprints(&w));
    }

    #[test]
    fn different_views_differ() {
        let mut cat = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let abc = cat.scheme(&["A", "B", "C"]).unwrap();
        let n1 = cat.fresh_relation("x", ab);
        let n2 = cat.fresh_relation("y", abc);
        let v = View::new(vec![(q(&cat, "pi{A,B}(R)"), n1)], &cat).unwrap();
        let w = View::new(vec![(q(&cat, "R"), n2)], &cat).unwrap();
        assert_ne!(view_fingerprint(&v), view_fingerprint(&w));
    }
}
