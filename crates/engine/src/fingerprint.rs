//! Canonical fingerprints for queries and views.
//!
//! A [`Fingerprint`] is a stable 128-bit key derived from the word encoding
//! of the reduced template's *content* canonical key
//! ([`viewcap_core::Query::content_key`]): tuples are labeled by relation
//! content digests ([`viewcap_base::Catalog::rel_digest`]) and rows are
//! traversed in attribute-name order, never by raw ids. Because equal
//! canonical-key encodings imply isomorphic templates *with the same
//! relation content*, equal fingerprints imply equivalent queries (up to
//! the negligible chance of a 128-bit hash collision) — the soundness
//! direction the verdict cache relies on. The converse may fail
//! (equivalent queries can fingerprint differently when the canonical key
//! degrades to its inexact form), which only costs cache hits, never
//! correctness.
//!
//! Invariances:
//!
//! * **catalog declaration order** — neither the order relations were
//!   declared nor the order attributes were interned enters the key; two
//!   catalogs declaring the same relations in any order assign every query
//!   the same fingerprint, which is what lets one persisted cache serve a
//!   whole fleet of workers (see [`crate::persist`]);
//! * **nondistinguished symbol renaming** — inherited from the canonical
//!   key;
//! * **defining-query reordering** — [`view_fingerprint`] hashes the
//!   *sorted* multiset of per-query fingerprints, so a view's fingerprint
//!   does not depend on the order of its defining pairs.
//!
//! Relation *names* are the cross-catalog identity: renaming a relation
//! (same structure, new name) changes its digest and therefore every
//! fingerprint mentioning it. That is deliberate — content addressing
//! trades the old within-catalog renaming invariance for order
//! independence, exactly as content-addressed stores key blobs by what
//! they contain.

use std::fmt;
use viewcap_base::Catalog;
use viewcap_core::{Query, View};

/// A 128-bit canonical fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuild a fingerprint from its raw value. Crate-internal: only the
    /// persistence layer ([`crate::persist`]) may resurrect fingerprints,
    /// and only ones that were produced by this module and saved verbatim.
    pub(crate) fn from_raw(bits: u128) -> Fingerprint {
        Fingerprint(bits)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Fold a word stream into 128 bits. The mixing itself lives in
/// [`viewcap_pile::hash`] — the workspace's one 128-bit content-hash
/// construction, shared between fingerprints and pile record hashes — and
/// moved there verbatim, so every persisted fingerprint keeps its value.
fn fold(words: impl Iterator<Item = u64>) -> Fingerprint {
    Fingerprint(viewcap_pile::hash::fold_words(words))
}

/// Test-only: a fingerprint with a chosen bit pattern.
#[cfg(test)]
pub(crate) fn test_fingerprint(n: u128) -> Fingerprint {
    Fingerprint::from_raw(n)
}

/// Fingerprint of a query: hash of its reduced template's content key
/// against `catalog` (the catalog the query was built from).
pub fn query_fingerprint(q: &Query, catalog: &Catalog) -> Fingerprint {
    fold(q.content_key(catalog).words().iter().copied())
}

/// Ordered per-defining-query fingerprints of a view.
///
/// This *does* depend on pair order — it is the positional table used to
/// remap cached witness indices onto a requesting view's schema.
pub fn view_query_fingerprints(v: &View, catalog: &Catalog) -> Vec<Fingerprint> {
    v.pairs()
        .iter()
        .map(|(q, _)| query_fingerprint(q, catalog))
        .collect()
}

/// Fingerprint of a view: hash of the sorted multiset of its defining
/// queries' fingerprints. Invariant under pair reordering and under
/// renaming of the view-schema relations (the schema names never enter
/// the defining queries' templates).
pub fn view_fingerprint(v: &View, catalog: &Catalog) -> Fingerprint {
    let mut fps: Vec<u128> = view_query_fingerprints(v, catalog)
        .into_iter()
        .map(Fingerprint::as_u128)
        .collect();
    fps.sort_unstable();
    fold(
        fps.into_iter()
            .flat_map(|fp| [fp as u64, (fp >> 64) as u64]),
    )
}

/// Fingerprint of a view's *ordered* defining-query table. Unlike
/// [`view_fingerprint`] this depends on pair order — it keys verdicts
/// whose payload is positional (the kept-index sets of `nonredundant`, the
/// result sequence of `simplify`), so fingerprint-equal but reordered
/// views never share such an entry.
pub fn ordered_view_fingerprint(v: &View, catalog: &Catalog) -> Fingerprint {
    fold(
        view_query_fingerprints(v, catalog)
            .into_iter()
            .flat_map(|fp| {
                let raw = fp.as_u128();
                [raw as u64, (raw >> 64) as u64]
            }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::Catalog;
    use viewcap_core::View;
    use viewcap_expr::parse_expr;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        cat
    }

    fn q(cat: &Catalog, src: &str) -> Query {
        Query::from_expr(parse_expr(src, cat).unwrap(), cat)
    }

    #[test]
    fn equivalent_realizations_share_a_fingerprint() {
        let cat = setup();
        // R ⋈ π_AB(R) reduces to R's template.
        assert_eq!(
            query_fingerprint(&q(&cat, "R * pi{A,B}(R)"), &cat),
            query_fingerprint(&q(&cat, "R"), &cat)
        );
        assert_ne!(
            query_fingerprint(&q(&cat, "pi{A,B}(R)"), &cat),
            query_fingerprint(&q(&cat, "pi{B,C}(R)"), &cat)
        );
    }

    #[test]
    fn view_fingerprint_ignores_pair_order_and_names() {
        let mut cat = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let (q1, q2) = (q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)"));
        let n1 = cat.fresh_relation("x", ab.clone());
        let n2 = cat.fresh_relation("y", bc.clone());
        let n3 = cat.fresh_relation("z", ab);
        let n4 = cat.fresh_relation("w", bc);
        let v = View::new(vec![(q1.clone(), n1), (q2.clone(), n2)], &cat).unwrap();
        let w = View::new(vec![(q2, n4), (q1, n3)], &cat).unwrap();
        assert_eq!(view_fingerprint(&v, &cat), view_fingerprint(&w, &cat));
        // The positional table still sees the order.
        assert_ne!(
            view_query_fingerprints(&v, &cat),
            view_query_fingerprints(&w, &cat)
        );
    }

    #[test]
    fn different_views_differ() {
        let mut cat = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let abc = cat.scheme(&["A", "B", "C"]).unwrap();
        let n1 = cat.fresh_relation("x", ab);
        let n2 = cat.fresh_relation("y", abc);
        let v = View::new(vec![(q(&cat, "pi{A,B}(R)"), n1)], &cat).unwrap();
        let w = View::new(vec![(q(&cat, "R"), n2)], &cat).unwrap();
        assert_ne!(view_fingerprint(&v, &cat), view_fingerprint(&w, &cat));
    }

    #[test]
    fn fingerprints_ignore_catalog_declaration_order() {
        // The same queries built against catalogs declaring the same
        // relations in opposite orders — with attribute interning order
        // permuted too — fingerprint identically.
        let build = |flip: bool| {
            let mut cat = Catalog::new();
            if flip {
                cat.relation("S", &["D", "C"]).unwrap();
                cat.relation("R", &["C", "B", "A"]).unwrap();
            } else {
                cat.relation("R", &["A", "B", "C"]).unwrap();
                cat.relation("S", &["C", "D"]).unwrap();
            }
            cat
        };
        let cat1 = build(false);
        let cat2 = build(true);
        for src in [
            "R",
            "pi{A,B}(R)",
            "pi{B,C}(R) * pi{C,D}(S)",
            "pi{A,D}(R * S)",
            "pi{A}(R) * pi{B}(R) * pi{D}(S)",
        ] {
            assert_eq!(
                query_fingerprint(&q(&cat1, src), &cat1),
                query_fingerprint(&q(&cat2, src), &cat2),
                "{src} fingerprints diverged across declaration orders"
            );
        }
        // Renaming a relation is a *content* change: fingerprints differ.
        let mut cat3 = Catalog::new();
        cat3.relation("R2", &["A", "B", "C"]).unwrap();
        assert_ne!(
            query_fingerprint(&q(&cat1, "pi{A,B}(R)"), &cat1),
            query_fingerprint(&q(&cat3, "pi{A,B}(R2)"), &cat3)
        );
    }
}
