//! The batch decision engine.
//!
//! [`Engine::run_batch`] takes a [`Workload`], deduplicates requests by
//! canonical fingerprint, resolves what it can from the verdict cache, runs
//! the remaining distinct checks across `std::thread::scope` workers, and
//! reassembles per-request results in submission order.
//!
//! **Determinism.** Parallel execution returns results identical to
//! sequential execution: the fingerprint pass, deduplication, and shared
//! [`ClosureContext`] creation are sequential, exactly one
//! (order-determined) representative per fingerprint class computes, every
//! decision procedure is itself deterministic (context probes included —
//! the candidate space is a deterministic function of the query set,
//! whichever probe builds it), and reassembly is positional. Thread
//! scheduling can only change *when* a verdict is computed, never *which*
//! verdict a request receives.

use crate::cache::{CacheKey, CacheStats, Entry, VerdictCache};
use crate::fingerprint::{
    ordered_view_fingerprint, query_fingerprint, view_fingerprint, view_query_fingerprints,
    Fingerprint,
};
use crate::spacestore::SpaceLibrary;
use crate::verdict::{CheckKind, Verdict};
use crate::workload::{Check, Workload};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use viewcap_base::{Catalog, RelId};
use viewcap_core::equivalence::{dominates_via, EquivalenceWitness};
use viewcap_core::{ClosureContext, NormContext, SearchBudget, View};
use viewcap_obs as obs;
use viewcap_template::SearchOverflow;

/// Telemetry handles (all no-ops until `viewcap_obs::set_enabled(true)`).
/// Span/counter values are work counts, deterministic for a workload
/// whatever `--jobs` is — the executor's dedup, prewarm, and
/// representative election are sequential. Only the `*_ns` histograms
/// carry timing.
static CHECK_SPAN: obs::SpanDef = obs::SpanDef::new("engine.check", "engine", "span.engine.check");
static BATCH_SPAN: obs::SpanDef = obs::SpanDef::new("engine.batch", "engine", "span.engine.batch");
static NORMALIZE_SPAN: obs::SpanDef =
    obs::SpanDef::new("engine.normalize", "norm", "span.engine.normalize");
static CHECK_NS: obs::Hist = obs::Hist::new("engine.check_ns");
static NORMALIZE_NS: obs::Hist = obs::Hist::new("engine.normalize_ns");
static CTX_BUILD: obs::Counter = obs::Counter::new("engine.ctx.build");
static CTX_REUSE: obs::Counter = obs::Counter::new("engine.ctx.reuse");
static CTX_RETIRE: obs::Counter = obs::Counter::new("engine.ctx.retire");
static CTX_STAGE: obs::Counter = obs::Counter::new("engine.ctx.stage");
static NORM_CTX_BUILD: obs::Counter = obs::Counter::new("engine.norm_ctx.build");
static NORM_CTX_REUSE: obs::Counter = obs::Counter::new("engine.norm_ctx.reuse");
static NORM_CTX_RETIRE: obs::Counter = obs::Counter::new("engine.norm_ctx.retire");
static CACHE_RESOLVE_SPAN: obs::SpanDef =
    obs::SpanDef::new("engine.cache.resolve", "cache", "span.engine.cache.resolve");

/// The outcome of deciding one request.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The (possibly shared) verdict.
    pub verdict: Arc<Verdict>,
    /// Whether this verdict was served from the cache (or from another
    /// request of the same batch via deduplication).
    pub from_cache: bool,
    /// Ordered per-query fingerprints of the view that computed the
    /// verdict's witness (its "left" view; for equivalence, the
    /// canonical-orientation left — see [`Decision::flipped`]).
    pub left_query_fps: Arc<[Fingerprint]>,
    /// For [`CheckKind::Equivalent`] only: equivalence verdicts are stored
    /// in *canonical* orientation (the smaller-fingerprint view as "v"),
    /// so one cache entry serves both orientations. `flipped` is `true`
    /// when this request's `left`/`right` are the reverse of the stored
    /// witness — its `v_dominates_w` then proves `right` dominates `left`.
    /// Always `false` for membership and dominance checks.
    pub flipped: bool,
}

impl Decision {
    /// View-schema names aligned with the witness's query indices.
    ///
    /// A cached membership proof indexes the *producer's* defining-query
    /// positions. When the requesting `view` lists equivalent queries in a
    /// different order, this remaps so `names[i]` is the requester's name
    /// for the producer's `i`-th query. Returns `None` if the views'
    /// query multisets don't line up (they always do on a genuine cache
    /// hit, barring a fingerprint collision).
    pub fn member_witness_names(&self, view: &View, catalog: &Catalog) -> Option<Vec<RelId>> {
        let theirs = view_query_fingerprints(view, catalog);
        let schema = view.schema();
        if theirs.len() != self.left_query_fps.len() {
            return None;
        }
        let mut used = vec![false; theirs.len()];
        let mut names = Vec::with_capacity(theirs.len());
        for fp in self.left_query_fps.iter() {
            let j = theirs
                .iter()
                .enumerate()
                .position(|(j, t)| !used[j] && t == fp)?;
            used[j] = true;
            names.push(schema[j]);
        }
        Some(names)
    }
}

/// Summary of one [`Engine::run_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, positionally aligned with the workload.
    /// `Err` means the bounded search overflowed — unknown, not "no".
    pub results: Vec<Result<Decision, SearchOverflow>>,
    /// Requests submitted.
    pub total: usize,
    /// Distinct fingerprint classes after deduplication.
    pub distinct: usize,
    /// Distinct classes answered from the pre-batch cache.
    pub cache_hits: usize,
    /// Distinct classes actually computed by this batch.
    pub executed: usize,
}

/// Cumulative candidate-space reuse counters across an engine's
/// [`ClosureContext`] pool *and* its normalization ([`NormContext`]) pool
/// (see [`Engine::enum_stats`]).
///
/// `probes - contexts` is roughly how many membership questions were
/// answered without re-deriving the bounded enumeration; `combos` is the
/// total enumeration work actually paid. A batch of N checks against one
/// view shows `contexts == 1, probes >= N` where the uncached engine paid
/// the enumeration N times over. Normalization runs (`simplify`,
/// `nonredundant`) contribute their class-space enumeration to the same
/// counters, so a scenario that only normalizes still reports its work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Contexts built (closure contexts: one per distinct ordered
    /// defining-query fingerprint table; normalization contexts: one per
    /// distinct defining-query multiset).
    pub contexts: u64,
    /// Goal probes served across all contexts.
    pub probes: u64,
    /// Join combinations examined across all shared candidate spaces.
    pub combos: u64,
    /// Candidate roots kept across all shared candidate spaces.
    pub roots: u64,
    /// Enumeration levels supplied by hydrated snapshots (the persisted
    /// cold-start path) across all closure contexts.
    pub levels_hydrated: u64,
    /// Enumeration levels built by in-process enumeration — 0 on a fully
    /// snapshot-served run, which is what the CI cold-start job asserts.
    pub levels_rebuilt: u64,
}

impl EnumStats {
    /// Fieldwise sum — used to combine the two pools' counters.
    /// Saturating: a long-lived engine (a future `viewcap-serve` daemon)
    /// must pin at `u64::MAX` rather than wrap.
    fn plus(self, other: EnumStats) -> EnumStats {
        EnumStats {
            contexts: self.contexts.saturating_add(other.contexts),
            probes: self.probes.saturating_add(other.probes),
            combos: self.combos.saturating_add(other.combos),
            roots: self.roots.saturating_add(other.roots),
            levels_hydrated: self.levels_hydrated.saturating_add(other.levels_hydrated),
            levels_rebuilt: self.levels_rebuilt.saturating_add(other.levels_rebuilt),
        }
    }
}

impl fmt::Display for EnumStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} context(s), {} probe(s), {} combination(s) examined, {} root(s) kept, \
             {} level(s) hydrated, {} level(s) rebuilt",
            self.contexts,
            self.probes,
            self.combos,
            self.roots,
            self.levels_hydrated,
            self.levels_rebuilt
        )
    }
}

/// Most contexts the pool retains. Contexts are pure caches (dropping one
/// only costs re-enumeration), so a bound keeps long-lived engines — e.g.
/// a [`crate::DeltaWorkload`] cycling through many view versions — from
/// accumulating one fully built candidate space per version forever.
const MAX_CONTEXTS: usize = 64;

/// A pooled context plus its last-use stamp (for LRU retirement).
struct PooledContext {
    context: Arc<Mutex<ClosureContext>>,
    last_used: u64,
}

struct PoolInner {
    map: HashMap<Vec<Fingerprint>, PooledContext>,
    clock: u64,
    /// Counters harvested from retired contexts, so [`EnumStats`] stays
    /// cumulative across evictions.
    retired: EnumStats,
}

/// The engine's pool of [`ClosureContext`]s, one per *ordered* table of
/// defining-query fingerprints.
///
/// Keying by the ordered table (not the order-free view fingerprint) keeps
/// witness λ indices positional: two views listing equivalent queries in
/// different orders get separate contexts, while re-posed checks against
/// the same view — across batches and [`crate::DeltaWorkload`] re-checks —
/// share one lazily extended enumeration. Fingerprint-equal views with
/// *isomorphic but non-identical* defining templates share a context, so
/// their witnesses carry the creator's λ templates — the same
/// representative-per-class semantics the verdict cache already applies on
/// hits; rendered output ([`crate::Decision::member_witness_names`]) is
/// unaffected. [`Engine::run_batch`] pre-creates the contexts a batch
/// needs sequentially, so which view defines a shared context never
/// depends on worker scheduling.
struct ContextPool {
    inner: Mutex<PoolInner>,
}

impl ContextPool {
    fn new() -> Self {
        ContextPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                clock: 0,
                retired: EnumStats::default(),
            }),
        }
    }

    /// The context for `view`'s defining query set, created on first use.
    ///
    /// Creation is cheap (no enumeration runs until the first probe): when
    /// a space library holds a snapshot for the new context's space key,
    /// the *bytes* are staged now but parsed only on the first probe. Past
    /// [`MAX_CONTEXTS`] the least-recently-used other context is retired,
    /// its counters folded into the pool's totals and any enumeration
    /// levels it grew harvested back into the library.
    fn for_view(
        &self,
        view: &View,
        catalog: &Catalog,
        budget: &SearchBudget,
        spaces: Option<&Mutex<SpaceLibrary>>,
    ) -> Arc<Mutex<ClosureContext>> {
        let key = view_query_fingerprints(view, catalog);
        let mut inner = self.inner.lock().expect("context pool lock");
        inner.clock += 1;
        let stamp = inner.clock;
        let context = match inner.map.get_mut(&key) {
            Some(pooled) => {
                pooled.last_used = stamp;
                CTX_REUSE.add(1);
                Arc::clone(&pooled.context)
            }
            None => {
                CTX_BUILD.add(1);
                obs::instant(
                    "engine.ctx.build",
                    "engine",
                    &[("queries", key.len() as u64)],
                );
                let mut fresh = ClosureContext::new(view.query_set().queries(), catalog, budget);
                if let Some(spaces) = spaces {
                    let library = spaces.lock().expect("space library lock");
                    if let Some(bytes) = library.get(fresh.space_key()) {
                        fresh.stage_snapshot(bytes.to_vec());
                        CTX_STAGE.add(1);
                    }
                }
                let context = Arc::new(Mutex::new(fresh));
                inner.map.insert(
                    key,
                    PooledContext {
                        context: Arc::clone(&context),
                        last_used: stamp,
                    },
                );
                context
            }
        };
        while inner.map.len() > MAX_CONTEXTS {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let Some(retiree) = inner.map.remove(&victim) else {
                break;
            };
            // Harvest the retiree's counters — and any enumeration levels
            // it grew, so retirement never loses persisted-space progress.
            // Safe to lock here: workers never hold a context lock while
            // touching the pool.
            let retiree = retiree.context.lock().expect("context lock");
            let s = retiree.search_stats();
            CTX_RETIRE.add(1);
            obs::instant(
                "engine.ctx.retire",
                "engine",
                &[("probes", retiree.probes())],
            );
            inner.retired.contexts += 1;
            inner.retired.probes += retiree.probes();
            inner.retired.combos += s.combos;
            inner.retired.roots += s.roots_visited;
            inner.retired.levels_hydrated += retiree.hydrated_levels() as u64;
            inner.retired.levels_rebuilt += retiree.rebuilt_levels() as u64;
            if let Some(spaces) = spaces {
                if let Some((key, bytes)) = retiree.export_space() {
                    spaces
                        .lock()
                        .expect("space library lock")
                        .insert(key, bytes);
                }
            }
        }
        context
    }

    /// Create (or touch) the contexts `check` will probe. Called
    /// sequentially for a batch's cache misses before workers start, so
    /// context creation order — and therefore which fingerprint-equal view
    /// defines a shared context — is submission-order-deterministic.
    fn prewarm(
        &self,
        check: &Check,
        flipped: bool,
        catalog: &Catalog,
        budget: &SearchBudget,
        spaces: Option<&Mutex<SpaceLibrary>>,
    ) {
        match check {
            Check::Member { view, .. } => {
                self.for_view(view, catalog, budget, spaces);
            }
            Check::Dominates { dominator, .. } => {
                self.for_view(dominator, catalog, budget, spaces);
            }
            Check::Equivalent { left, right } => {
                let (v, w) = if flipped {
                    (right, left)
                } else {
                    (left, right)
                };
                self.for_view(v, catalog, budget, spaces);
                self.for_view(w, catalog, budget, spaces);
            }
        }
    }

    /// Export every live context's grown space into `spaces` (retired
    /// contexts already exported on the way out). Returns how many
    /// snapshots changed the library.
    fn harvest(&self, spaces: &Mutex<SpaceLibrary>) -> usize {
        let inner = self.inner.lock().expect("context pool lock");
        let mut harvested = 0;
        for pooled in inner.map.values() {
            let context = pooled.context.lock().expect("context lock");
            if let Some((key, bytes)) = context.export_space() {
                if spaces
                    .lock()
                    .expect("space library lock")
                    .insert(key, bytes)
                {
                    harvested += 1;
                }
            }
        }
        harvested
    }

    fn stats(&self) -> EnumStats {
        let inner = self.inner.lock().expect("context pool lock");
        let mut out = inner.retired;
        out.contexts += inner.map.len() as u64;
        for pooled in inner.map.values() {
            let context = pooled.context.lock().expect("context lock");
            let s = context.search_stats();
            out.probes += context.probes();
            out.combos += s.combos;
            out.roots += s.roots_visited;
            out.levels_hydrated += context.hydrated_levels() as u64;
            out.levels_rebuilt += context.rebuilt_levels() as u64;
        }
        out
    }
}

/// A pooled normalization context plus its last-use stamp.
struct PooledNorm {
    context: Arc<Mutex<NormContext>>,
    last_used: u64,
}

struct NormPoolInner {
    map: HashMap<Vec<Fingerprint>, PooledNorm>,
    clock: u64,
    retired: EnumStats,
}

/// The engine's pool of [`NormContext`]s, one per *sorted* multiset of
/// defining-query fingerprints.
///
/// Normalization verdicts are class-based (a `NormContext`'s universe is
/// the *set* of originals and their proper projections — Theorem 4.2.1),
/// so unlike [`ContextPool`] the key can ignore pair order: reordered or
/// fingerprint-equal views share one lazily built class space, and
/// `simplify` plus `nonredundant` against the same view share it too.
/// Positional results stay correct because the context maps the caller's
/// ordered query slice to classes at probe time.
struct NormPool {
    inner: Mutex<NormPoolInner>,
}

impl NormPool {
    fn new() -> Self {
        NormPool {
            inner: Mutex::new(NormPoolInner {
                map: HashMap::new(),
                clock: 0,
                retired: EnumStats::default(),
            }),
        }
    }

    /// The normalization context for `view`'s defining query set, created
    /// on first use; LRU-retired past [`MAX_CONTEXTS`] with its counters
    /// folded into the pool's totals (the same policy as [`ContextPool`]).
    fn for_view(
        &self,
        view: &View,
        catalog: &Catalog,
        budget: &SearchBudget,
    ) -> Arc<Mutex<NormContext>> {
        let mut key = view_query_fingerprints(view, catalog);
        key.sort_unstable();
        let mut inner = self.inner.lock().expect("norm pool lock");
        inner.clock += 1;
        let stamp = inner.clock;
        let context = match inner.map.get_mut(&key) {
            Some(pooled) => {
                pooled.last_used = stamp;
                NORM_CTX_REUSE.add(1);
                Arc::clone(&pooled.context)
            }
            None => {
                NORM_CTX_BUILD.add(1);
                obs::instant(
                    "engine.norm_ctx.build",
                    "norm",
                    &[("queries", key.len() as u64)],
                );
                let context = Arc::new(Mutex::new(NormContext::new(
                    view.query_set().queries(),
                    catalog,
                    budget,
                )));
                inner.map.insert(
                    key,
                    PooledNorm {
                        context: Arc::clone(&context),
                        last_used: stamp,
                    },
                );
                context
            }
        };
        while inner.map.len() > MAX_CONTEXTS {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let Some(retiree) = inner.map.remove(&victim) else {
                break;
            };
            let retiree = retiree.context.lock().expect("norm context lock");
            let s = retiree.search_stats();
            NORM_CTX_RETIRE.add(1);
            obs::instant(
                "engine.norm_ctx.retire",
                "norm",
                &[("probes", retiree.probes())],
            );
            inner.retired.contexts += 1;
            inner.retired.probes += retiree.probes();
            inner.retired.combos += s.combos;
            inner.retired.roots += s.roots_visited;
        }
        context
    }

    fn stats(&self) -> EnumStats {
        let inner = self.inner.lock().expect("norm pool lock");
        let mut out = inner.retired;
        out.contexts += inner.map.len() as u64;
        for pooled in inner.map.values() {
            let context = pooled.context.lock().expect("norm context lock");
            let s = context.search_stats();
            out.probes += context.probes();
            out.combos += s.combos;
            out.roots += s.roots_visited;
        }
        out
    }
}

/// The concurrent batch decision engine.
///
/// Holds the verdict cache, the search budget, and a pool of shared
/// [`ClosureContext`]s (one per view fingerprint table), so a batch of N
/// checks against one view — and every delta re-check touching it — pays
/// the bounded enumeration once. The verdict cache is
/// catalog-content-addressed (fingerprints hash relation *content*, never
/// raw ids), so a cache persisted by one process warms any catalog
/// declaring the same relations, whatever the declaration order; the
/// *context pool*, by contrast, holds live `Catalog`-bound state, so keep
/// one engine per running catalog.
pub struct Engine {
    /// Shared so many engines — e.g. a `viewcap serve` daemon's
    /// per-request engines over one warm per-catalog cache — can decide
    /// through one verdict store. The cache is the only cross-catalog-safe
    /// state an engine holds (content-addressed keys); the context pools
    /// stay per-engine because they hold catalog-bound ids.
    cache: Arc<VerdictCache>,
    budget: SearchBudget,
    contexts: ContextPool,
    norms: NormPool,
    /// Optional persisted-snapshot library: new contexts stage a matching
    /// snapshot from it (hydrated lazily on first probe), and grown spaces
    /// are harvested back into it. Shareable across engines the same way
    /// the verdict cache is — snapshots are content-addressed and validated
    /// against the loading catalog at hydration time.
    spaces: Option<Arc<Mutex<SpaceLibrary>>>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine with the default search budget and a fresh unbounded cache —
    /// shorthand for [`crate::EngineConfig::default`]. Every other shape
    /// (bounded / file-loaded / shared caches, space libraries, piles)
    /// goes through [`Engine::from_config`] or [`crate::Session::open`].
    pub fn new() -> Self {
        Engine::assemble(SearchBudget::default(), Arc::new(VerdictCache::new()), None)
    }

    /// Assemble an engine from resolved parts. The only constructor;
    /// callers outside the crate go through [`crate::EngineConfig`].
    pub(crate) fn assemble(
        budget: SearchBudget,
        cache: Arc<VerdictCache>,
        spaces: Option<Arc<Mutex<SpaceLibrary>>>,
    ) -> Self {
        Engine {
            cache,
            budget,
            contexts: ContextPool::new(),
            norms: NormPool::new(),
            spaces,
        }
    }

    /// A shared handle on the engine's space library, if one is attached.
    pub fn shared_spaces(&self) -> Option<Arc<Mutex<SpaceLibrary>>> {
        self.spaces.clone()
    }

    /// Export every live context's space grown past its hydrated bound
    /// into the attached library. Returns how many snapshots changed the
    /// library (0 when no library is attached or nothing grew).
    pub fn harvest_spaces(&self) -> usize {
        match &self.spaces {
            Some(spaces) => self.contexts.harvest(spaces),
            None => 0,
        }
    }

    /// Snapshot the candidate-space reuse counters across the engine's
    /// two pools: the per-view closure contexts and the normalization
    /// contexts.
    pub fn enum_stats(&self) -> EnumStats {
        self.contexts.stats().plus(self.norms.stats())
    }

    /// Contexts currently retained (test hook for the pool bound).
    #[cfg(test)]
    fn live_contexts(&self) -> usize {
        self.contexts
            .inner
            .lock()
            .expect("context pool lock")
            .map
            .len()
    }

    /// The engine's verdict cache (e.g. for persistence via
    /// [`crate::persist::save_cache`]).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// A shared handle on the engine's verdict cache, for building further
    /// engines over the same store ([`crate::EngineConfig::shared_cache`]).
    pub fn shared_cache(&self) -> Arc<VerdictCache> {
        Arc::clone(&self.cache)
    }

    /// The engine's search budget, so callers driving non-engine
    /// procedures alongside the engine can stay budget-consistent.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Snapshot the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cache lookup that resolves `foreign` entries (loaded from disk with
    /// witnesses in file-local id space) into `catalog`'s ids on first
    /// hit, replacing the stored entry so translation is paid once. A
    /// foreign entry whose names are not (yet) declared in `catalog`
    /// counts as a miss: the check recomputes and the fresh native entry
    /// shadows it (publication goes through [`VerdictCache::replace`]).
    /// The preceding `get` already counted a hit in that pathological
    /// case, so [`CacheStats`] may over-report hits by the handful of
    /// untranslatable lookups — never verdicts.
    fn cached(&self, key: &CacheKey, catalog: &Catalog) -> Option<Entry> {
        let entry = self.cache.get(key)?;
        if !entry.foreign {
            return Some(entry);
        }
        let tables = self.cache.import_tables()?;
        let native = crate::persist::translate_entry(&entry, tables, catalog)?;
        self.cache.replace(*key, native.clone());
        Some(native)
    }

    /// The cache key of a check (equivalence keys are orientation-free).
    pub fn cache_key(check: &Check, catalog: &Catalog) -> CacheKey {
        Engine::key_and_orientation(check, catalog).0
    }

    /// Cache key plus whether the request's orientation is flipped
    /// relative to the canonical (stored) orientation.
    fn key_and_orientation(check: &Check, catalog: &Catalog) -> (CacheKey, bool) {
        match check {
            Check::Member { view, goal } => (
                CacheKey {
                    kind: CheckKind::Member,
                    left: view_fingerprint(view, catalog),
                    right: query_fingerprint(goal, catalog),
                },
                false,
            ),
            Check::Dominates {
                dominator,
                dominated,
            } => (
                CacheKey {
                    kind: CheckKind::Dominates,
                    left: view_fingerprint(dominator, catalog),
                    right: view_fingerprint(dominated, catalog),
                },
                false,
            ),
            Check::Equivalent { left, right } => {
                let (a, b) = (
                    view_fingerprint(left, catalog),
                    view_fingerprint(right, catalog),
                );
                (
                    CacheKey {
                        kind: CheckKind::Equivalent,
                        left: a.min(b),
                        right: a.max(b),
                    },
                    a > b,
                )
            }
        }
    }

    /// Run the underlying decision procedure (no cache involvement),
    /// probing the shared per-view [`ClosureContext`]s so repeated checks
    /// against one view amortize the bounded enumeration. `flipped` is the
    /// check's orientation as computed by [`Engine::key_and_orientation`],
    /// threaded through so equivalence checks need not re-derive it from
    /// the fingerprints.
    ///
    /// At most one context lock is held at a time (equivalence probes its
    /// two sides sequentially), so concurrent workers cannot deadlock.
    fn compute(
        &self,
        check: &Check,
        flipped: bool,
        catalog: &Catalog,
    ) -> Result<Entry, SearchOverflow> {
        let t0 = if obs::enabled() {
            Some(obs::now_ns())
        } else {
            None
        };
        let _span = CHECK_SPAN.start();
        let (verdict, left_view) = match check {
            Check::Member { view, goal } => {
                let context =
                    self.contexts
                        .for_view(view, catalog, &self.budget, self.spaces.as_deref());
                let proof = context.lock().expect("context lock").contains(goal)?;
                (Verdict::Member(proof), view)
            }
            Check::Dominates {
                dominator,
                dominated,
            } => {
                let context = self.contexts.for_view(
                    dominator,
                    catalog,
                    &self.budget,
                    self.spaces.as_deref(),
                );
                let witness = dominates_via(&mut context.lock().expect("context lock"), dominated)?;
                (Verdict::Dominates(witness), dominator)
            }
            Check::Equivalent { left, right } => {
                // Compute in canonical (fingerprint-ordered) orientation so
                // the stored witness means the same thing for every request
                // that maps to this key, whichever way it was posed.
                let (v, w) = if flipped {
                    (right, left)
                } else {
                    (left, right)
                };
                let context =
                    self.contexts
                        .for_view(v, catalog, &self.budget, self.spaces.as_deref());
                let v_dominates_w = dominates_via(&mut context.lock().expect("context lock"), w)?;
                let witness = match v_dominates_w {
                    None => None,
                    Some(v_dominates_w) => {
                        let context = self.contexts.for_view(
                            w,
                            catalog,
                            &self.budget,
                            self.spaces.as_deref(),
                        );
                        let w_dominates_v =
                            dominates_via(&mut context.lock().expect("context lock"), v)?;
                        w_dominates_v.map(|w_dominates_v| EquivalenceWitness {
                            v_dominates_w,
                            w_dominates_v,
                        })
                    }
                };
                (Verdict::Equivalent(witness), v)
            }
        };
        if let Some(t0) = t0 {
            CHECK_NS.record(obs::now_ns().saturating_sub(t0));
        }
        Ok(Entry {
            verdict: Arc::new(verdict),
            foreign: false,
            left_query_fps: Arc::from(view_query_fingerprints(left_view, catalog).as_slice()),
        })
    }

    /// Decide one check through the cache.
    pub fn decide(&self, check: &Check, catalog: &Catalog) -> Result<Decision, SearchOverflow> {
        let (key, flipped) = Engine::key_and_orientation(check, catalog);
        let cached = {
            let mut span = CACHE_RESOLVE_SPAN.start();
            let cached = self.cached(&key, catalog);
            span.arg("hits", cached.is_some() as u64);
            cached
        };
        if let Some(entry) = cached {
            return Ok(Decision {
                verdict: entry.verdict,
                from_cache: true,
                left_query_fps: entry.left_query_fps,
                flipped,
            });
        }
        let entry = self.compute(check, flipped, catalog)?;
        // `replace`, not `insert`: if an untranslatable foreign entry
        // occupies this key, the fresh native entry must shadow it.
        self.cache.replace(key, entry.clone());
        Ok(Decision {
            verdict: entry.verdict,
            from_cache: false,
            left_query_fps: entry.left_query_fps,
            flipped,
        })
    }

    /// Simplify `view`'s defining query set (Section 4 normal form)
    /// through the verdict cache: the result is a
    /// [`Verdict::Simplified`] listing the simplified equivalent's TRSs
    /// in result order.
    pub fn simplify(&self, view: &View, catalog: &Catalog) -> Result<Decision, SearchOverflow> {
        self.normalize(CheckKind::Simplify, view, catalog)
    }

    /// Greedy nonredundant subset of `view`'s defining pairs through the
    /// verdict cache: the result is a [`Verdict::Nonredundant`] listing
    /// the kept pair indices in the view's order.
    pub fn nonredundant(&self, view: &View, catalog: &Catalog) -> Result<Decision, SearchOverflow> {
        self.normalize(CheckKind::Nonredundant, view, catalog)
    }

    /// Shared normalization path: a cache probe keyed by the view's
    /// *ordered* query-fingerprint table (both verdicts carry positional
    /// payloads, so reordered but fingerprint-equal views must not share
    /// an entry), then on a miss the pooled [`NormContext`] for the
    /// view's query set — shared across `simplify`, `nonredundant`, and
    /// any reordering of the same set.
    fn normalize(
        &self,
        kind: CheckKind,
        view: &View,
        catalog: &Catalog,
    ) -> Result<Decision, SearchOverflow> {
        let key = CacheKey {
            kind,
            left: view_fingerprint(view, catalog),
            right: ordered_view_fingerprint(view, catalog),
        };
        let cached = {
            let mut span = CACHE_RESOLVE_SPAN.start();
            let cached = self.cached(&key, catalog);
            span.arg("hits", cached.is_some() as u64);
            cached
        };
        if let Some(entry) = cached {
            return Ok(Decision {
                verdict: entry.verdict,
                from_cache: true,
                left_query_fps: entry.left_query_fps,
                flipped: false,
            });
        }
        let t0 = if obs::enabled() {
            Some(obs::now_ns())
        } else {
            None
        };
        let _span = NORMALIZE_SPAN.start();
        let context = self.norms.for_view(view, catalog, &self.budget);
        let queries = view.query_set();
        let verdict = {
            let mut ctx = context.lock().expect("norm context lock");
            match kind {
                CheckKind::Simplify => Verdict::Simplified(
                    ctx.simplify_queries(queries.queries())?
                        .iter()
                        .map(|q| q.trs())
                        .collect(),
                ),
                CheckKind::Nonredundant => Verdict::Nonredundant(
                    ctx.nonredundant_indices(queries.queries())?
                        .into_iter()
                        .map(|i| i as u32)
                        .collect(),
                ),
                _ => unreachable!("normalize only serves Simplify/Nonredundant"),
            }
        };
        if let Some(t0) = t0 {
            NORMALIZE_NS.record(obs::now_ns().saturating_sub(t0));
        }
        let entry = Entry {
            verdict: Arc::new(verdict),
            foreign: false,
            left_query_fps: Arc::from(view_query_fingerprints(view, catalog).as_slice()),
        };
        self.cache.replace(key, entry.clone());
        Ok(Decision {
            verdict: entry.verdict,
            from_cache: false,
            left_query_fps: entry.left_query_fps,
            flipped: false,
        })
    }

    /// Decide a whole workload: dedup → cache → parallel compute →
    /// positional reassembly. `jobs == 0` means "use available
    /// parallelism"; results are identical for every `jobs` value.
    pub fn run_batch(&self, workload: &Workload, catalog: &Catalog, jobs: usize) -> BatchOutcome {
        let total = workload.len();
        let mut batch_span = BATCH_SPAN.start();
        batch_span.arg("checks", total as u64);

        // 1. Fingerprint every request and elect one representative per
        //    class — sequential, so the election is order-deterministic.
        let mut slot_of_key: HashMap<CacheKey, usize> = HashMap::new();
        let mut request_slots: Vec<usize> = Vec::with_capacity(total);
        let mut request_flipped: Vec<bool> = Vec::with_capacity(total);
        let mut representatives: Vec<(CacheKey, &Check, bool)> = Vec::new();
        for request in &workload.requests {
            let (key, flipped) = Engine::key_and_orientation(&request.check, catalog);
            let slot = *slot_of_key.entry(key).or_insert_with(|| {
                representatives.push((key, &request.check, flipped));
                representatives.len() - 1
            });
            request_slots.push(slot);
            request_flipped.push(flipped);
        }
        let distinct = representatives.len();
        batch_span.arg("distinct", distinct as u64);

        // 2. Resolve representatives from the cache.
        let mut resolve_span = CACHE_RESOLVE_SPAN.start();
        let mut slot_results: Vec<Option<Result<Entry, SearchOverflow>>> = representatives
            .iter()
            .map(|(key, _, _)| self.cached(key, catalog).map(Ok))
            .collect();
        let todo: Vec<usize> = (0..distinct)
            .filter(|&s| slot_results[s].is_none())
            .collect();
        let cache_hits = distinct - todo.len();
        resolve_span.arg("hits", cache_hits as u64);
        drop(resolve_span);

        // 3. Compute the misses across scoped workers. Contexts are
        //    pre-created sequentially first, so shared-context creation
        //    order never depends on worker scheduling.
        for &slot in &todo {
            let (_, check, flipped) = representatives[slot];
            self.contexts.prewarm(
                check,
                flipped,
                catalog,
                &self.budget,
                self.spaces.as_deref(),
            );
        }
        let workers = effective_jobs(jobs).min(todo.len());
        if workers <= 1 {
            for &slot in &todo {
                let (_, check, flipped) = representatives[slot];
                slot_results[slot] = Some(self.compute(check, flipped, catalog));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<Entry, SearchOverflow>)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let todo = &todo;
                    let representatives = &representatives;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&slot) = todo.get(i) else { break };
                        let (_, check, flipped) = representatives[slot];
                        let outcome = self.compute(check, flipped, catalog);
                        if tx.send((slot, outcome)).is_err() {
                            break;
                        }
                    });
                }
            });
            drop(tx);
            for (slot, outcome) in rx {
                slot_results[slot] = Some(outcome);
            }
        }

        // 4. Publish freshly computed verdicts.
        for &slot in &todo {
            if let Some(Ok(entry)) = &slot_results[slot] {
                // `replace` so a fresh native entry shadows any
                // untranslatable foreign entry occupying the key.
                self.cache.replace(representatives[slot].0, entry.clone());
            }
        }

        // 5. Reassemble in submission order.
        let mut computed = vec![false; distinct];
        for &slot in &todo {
            computed[slot] = true;
        }
        let mut seen = vec![false; distinct];
        let results = request_slots
            .iter()
            .zip(&request_flipped)
            .map(|(&slot, &flipped)| {
                // "From cache" from the caller's perspective: either a
                // pre-batch hit, or deduplicated onto an earlier request of
                // this batch.
                let from_cache = !computed[slot] || seen[slot];
                seen[slot] = true;
                match slot_results[slot].as_ref().expect("every slot resolved") {
                    Ok(entry) => Ok(Decision {
                        verdict: Arc::clone(&entry.verdict),
                        from_cache,
                        left_query_fps: Arc::clone(&entry.left_query_fps),
                        flipped,
                    }),
                    Err(overflow) => Err(overflow.clone()),
                }
            })
            .collect();

        BatchOutcome {
            results,
            total,
            distinct,
            cache_hits,
            executed: todo.len(),
        }
    }
}

/// Resolve a `--jobs` setting: `0` means available parallelism.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_core::Query;
    use viewcap_expr::parse_expr;

    /// One view, many goals: `(catalog, view, goals)` for the shared-space
    /// amortization tests.
    fn shared_goal_setup() -> (Catalog, View, Vec<Query>) {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let v1 = cat.fresh_relation("v1", ab);
        let v2 = cat.fresh_relation("v2", bc);
        let view = View::from_exprs(
            vec![
                (parse_expr("pi{A,B}(R)", &cat).unwrap(), v1),
                (parse_expr("pi{B,C}(R)", &cat).unwrap(), v2),
            ],
            &cat,
        )
        .unwrap();
        let goals = [
            "pi{A,B}(R)",
            "pi{B,C}(R)",
            "pi{A}(R)",
            "pi{B}(R)",
            "pi{C}(R)",
            "pi{A,B}(R) * pi{B,C}(R)",
            "pi{A,C}(pi{A,B}(R) * pi{B,C}(R))",
            "R",
        ]
        .iter()
        .map(|src| Query::from_expr(parse_expr(src, &cat).unwrap(), &cat))
        .collect();
        (cat, view, goals)
    }

    #[test]
    fn one_view_batches_share_a_single_context() {
        let (cat, view, goals) = shared_goal_setup();
        let mut workload = Workload::new();
        for (i, goal) in goals.iter().enumerate() {
            workload.push(
                format!("goal {i}"),
                Check::Member {
                    view: view.clone(),
                    goal: goal.clone(),
                },
            );
        }
        let engine = Engine::new();
        let outcome = engine.run_batch(&workload, &cat, 4);
        assert_eq!(outcome.total, goals.len());
        let stats = engine.enum_stats();
        assert_eq!(stats.contexts, 1, "one view, one context");
        assert_eq!(stats.probes, goals.len() as u64);
        assert!(stats.combos > 0);

        // The amortization is real: per-goal engines (fresh context each)
        // pay strictly more total enumeration work.
        let mut per_goal_combos = 0;
        for goal in &goals {
            let fresh = Engine::new();
            fresh
                .decide(
                    &Check::Member {
                        view: view.clone(),
                        goal: goal.clone(),
                    },
                    &cat,
                )
                .unwrap();
            per_goal_combos += fresh.enum_stats().combos;
        }
        assert!(
            stats.combos < per_goal_combos,
            "shared {} vs per-goal {}",
            stats.combos,
            per_goal_combos
        );
    }

    #[test]
    fn fingerprint_equal_views_share_a_context_deterministically() {
        // V1 and V2 define the same queries in join-commuted forms: equal
        // ordered fingerprint tables, so they share one pooled context.
        // Which view defines it must be submission-order-determined (the
        // prewarm pass), so every jobs value returns identical results.
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let (n1, n2) = (
            cat.fresh_relation("x", ab.clone()),
            cat.fresh_relation("y", ab),
        );
        let v1 = View::from_exprs(
            vec![(
                viewcap_expr::parse_expr("pi{A,B}(pi{A,B}(R) * pi{B,C}(R))", &cat).unwrap(),
                n1,
            )],
            &cat,
        )
        .unwrap();
        let v2 = View::from_exprs(
            vec![(
                viewcap_expr::parse_expr("pi{A,B}(pi{B,C}(R) * pi{A,B}(R))", &cat).unwrap(),
                n2,
            )],
            &cat,
        )
        .unwrap();
        assert_eq!(
            view_query_fingerprints(&v1, &cat),
            view_query_fingerprints(&v2, &cat),
            "test premise: the views must be fingerprint-equal"
        );
        let goals = ["pi{A}(R)", "pi{B}(R)", "pi{A,B}(R)", "R"];
        let mut workload = Workload::new();
        for (i, src) in goals.iter().enumerate() {
            let goal = Query::from_expr(parse_expr(src, &cat).unwrap(), &cat);
            let view = if i % 2 == 0 { &v1 } else { &v2 };
            workload.push(
                format!("goal {i}"),
                Check::Member {
                    view: view.clone(),
                    goal,
                },
            );
        }
        let render = |jobs: usize| {
            let engine = Engine::new();
            let outcome = engine.run_batch(&workload, &cat, jobs);
            let stats = engine.enum_stats();
            assert_eq!(stats.contexts, 1, "fingerprint-equal views share");
            outcome
                .results
                .iter()
                .map(|r| {
                    let d = r.as_ref().unwrap();
                    format!("{} {:?}", d.verdict.is_yes(), d.verdict)
                })
                .collect::<Vec<_>>()
        };
        let sequential = render(1);
        for _ in 0..5 {
            assert_eq!(render(4), sequential, "jobs=4 diverged from jobs=1");
        }
    }

    #[test]
    fn context_pool_is_bounded_and_keeps_cumulative_stats() {
        // Fingerprint-equal views reuse one context: four distinct goals
        // against two fp-equal views = four computed verdicts (the rest are
        // verdict-cache hits), all probing a single pooled context.
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B"]).unwrap();
        let engine = Engine::new();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let x = cat.fresh_relation("x", ab.clone());
        let y = cat.fresh_relation("y", ab);
        let views = [
            View::from_exprs(vec![(parse_expr("R", &cat).unwrap(), x)], &cat).unwrap(),
            View::from_exprs(vec![(parse_expr("R", &cat).unwrap(), y)], &cat).unwrap(),
        ];
        let goal_srcs = ["pi{A}(R)", "pi{B}(R)", "R", "pi{A}(R) * pi{B}(R)"];
        for view in &views {
            for src in goal_srcs {
                let goal = Query::from_expr(parse_expr(src, &cat).unwrap(), &cat);
                let _ = engine
                    .decide(
                        &Check::Member {
                            view: view.clone(),
                            goal,
                        },
                        &cat,
                    )
                    .unwrap();
            }
        }
        let stats = engine.enum_stats();
        assert_eq!((stats.contexts, stats.probes), (1, goal_srcs.len() as u64));
        assert_eq!(engine.live_contexts(), 1);
        let total = super::MAX_CONTEXTS + 10;

        // …while more distinct query sets than MAX_CONTEXTS stay bounded,
        // with the counters cumulative across retirements.
        let engine = Engine::new();
        for i in 0..total {
            let rel = cat.relation(&format!("S{i}"), &["A", "B"]).unwrap();
            let ab = cat.scheme(&["A", "B"]).unwrap();
            let name = cat.fresh_relation(&format!("w{i}"), ab);
            let view = View::from_exprs(vec![(viewcap_expr::Expr::rel(rel), name)], &cat).unwrap();
            let g = Query::from_expr(parse_expr(&format!("pi{{A}}(S{i})"), &cat).unwrap(), &cat);
            let _ = engine
                .decide(&Check::Member { view, goal: g }, &cat)
                .unwrap();
        }
        let stats = engine.enum_stats();
        assert_eq!(
            stats.contexts, total as u64,
            "retired contexts still counted"
        );
        assert_eq!(stats.probes, total as u64);
        assert_eq!(engine.live_contexts(), super::MAX_CONTEXTS);
    }

    #[test]
    fn space_library_eliminates_cold_start_rebuilds() {
        let (cat, view, goals) = shared_goal_setup();
        let mut workload = Workload::new();
        for (i, goal) in goals.iter().enumerate() {
            workload.push(
                format!("goal {i}"),
                Check::Member {
                    view: view.clone(),
                    goal: goal.clone(),
                },
            );
        }
        let lib = Arc::new(Mutex::new(SpaceLibrary::new()));

        // Cold process: builds every level, harvests the grown space.
        let cold = Engine::from_config(crate::EngineConfig::new().shared_spaces(Arc::clone(&lib)))
            .unwrap();
        let first = cold.run_batch(&workload, &cat, 2);
        assert_eq!(cold.harvest_spaces(), 1, "one context, one snapshot");
        let cold_stats = cold.enum_stats();
        assert!(cold_stats.levels_rebuilt > 0);
        assert_eq!(cold_stats.levels_hydrated, 0);

        // Fresh process (fresh verdict cache, so everything recomputes)
        // warm-started from the library: zero rebuilt levels, zero fresh
        // enumeration work, identical witnesses.
        let warm = Engine::from_config(crate::EngineConfig::new().shared_spaces(Arc::clone(&lib)))
            .unwrap();
        let second = warm.run_batch(&workload, &cat, 2);
        let warm_stats = warm.enum_stats();
        assert_eq!(warm_stats.levels_rebuilt, 0, "stats: {warm_stats}");
        assert_eq!(warm_stats.levels_hydrated, cold_stats.levels_rebuilt);
        // Counters travel with the snapshot (extension must keep numbering
        // identically), so the warm run reports the same combos without
        // having re-examined any.
        assert_eq!(warm_stats.combos, cold_stats.combos);
        for (a, b) in first.results.iter().zip(&second.results) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(format!("{:?}", a.verdict), format!("{:?}", b.verdict));
        }
        // Nothing grew past the snapshot, so there is nothing to re-persist.
        assert_eq!(warm.harvest_spaces(), 0);
    }

    #[test]
    fn shared_contexts_keep_parallel_batches_deterministic() {
        let (cat, view, goals) = shared_goal_setup();
        let mut workload = Workload::new();
        for (i, goal) in goals.iter().enumerate() {
            workload.push(
                format!("goal {i}"),
                Check::Member {
                    view: view.clone(),
                    goal: goal.clone(),
                },
            );
        }
        let render = |jobs: usize| {
            let engine = Engine::new();
            let outcome = engine.run_batch(&workload, &cat, jobs);
            outcome
                .results
                .iter()
                .map(|r| match r {
                    Ok(d) => format!("{} {:?}", d.verdict.is_yes(), d.verdict.witness_atoms()),
                    Err(e) => format!("overflow {e}"),
                })
                .collect::<Vec<_>>()
        };
        let sequential = render(1);
        for jobs in [2, 4, 8] {
            assert_eq!(render(jobs), sequential, "jobs={jobs}");
        }
    }

    /// `(catalog, view)` with a redundant defining pair, for the
    /// normalization-path tests.
    fn norm_setup() -> (Catalog, View) {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let abc = cat.scheme(&["A", "B", "C"]).unwrap();
        let n1 = cat.fresh_relation("v1", abc);
        let n2 = cat.fresh_relation("v2", ab);
        let view = View::from_exprs(
            vec![
                (parse_expr("R", &cat).unwrap(), n1),
                (parse_expr("pi{A,B}(R)", &cat).unwrap(), n2),
            ],
            &cat,
        )
        .unwrap();
        (cat, view)
    }

    #[test]
    fn normalization_verdicts_cache_and_share_one_context() {
        let (cat, view) = norm_setup();
        let engine = Engine::new();

        let first = engine.simplify(&view, &cat).unwrap();
        assert!(!first.from_cache);
        let Verdict::Simplified(schemes) = &*first.verdict else {
            panic!("expected Simplified, got {:?}", first.verdict);
        };
        assert!(!schemes.is_empty());

        let again = engine.simplify(&view, &cat).unwrap();
        assert!(again.from_cache, "second simplify must be a cache hit");
        let Verdict::Simplified(cached) = &*again.verdict else {
            panic!("expected Simplified, got {:?}", again.verdict);
        };
        assert_eq!(cached, schemes);

        // `nonredundant` against the same view shares the pooled context
        // (it is a new cache key, though): pi{A,B}(R) is subsumed by R.
        let kept = engine.nonredundant(&view, &cat).unwrap();
        assert!(!kept.from_cache);
        let Verdict::Nonredundant(indices) = &*kept.verdict else {
            panic!("expected Nonredundant, got {:?}", kept.verdict);
        };
        assert_eq!(indices, &[0]);
        assert!(engine.nonredundant(&view, &cat).unwrap().from_cache);

        // Satellite 1: normalization enumeration shows up in the engine's
        // stats (no member/dominates checks ran, so it is all NormPool).
        let stats = engine.enum_stats();
        assert_eq!(stats.contexts, 1, "simplify + nonredundant share");
        assert!(stats.probes > 0, "normalization probes counted");
        assert!(
            engine.cache_stats().to_string().starts_with("2 hit(s)"),
            "one hit per repeated call: {}",
            engine.cache_stats()
        );
    }

    #[test]
    fn reordered_views_share_the_context_but_not_the_entry() {
        // Nonredundant/Simplified payloads are positional, so a reordered
        // but fingerprint-equal view must recompute — through the shared
        // pooled context — and land on its own cache entry.
        let (cat, view) = norm_setup();
        let mut pairs = view.pairs().to_vec();
        pairs.swap(0, 1);
        let swapped = View::new(pairs, &cat).unwrap();
        assert_eq!(
            view_fingerprint(&view, &cat),
            view_fingerprint(&swapped, &cat),
            "test premise: order-free fingerprints agree"
        );
        assert_ne!(
            ordered_view_fingerprint(&view, &cat),
            ordered_view_fingerprint(&swapped, &cat),
            "test premise: ordered fingerprints differ"
        );

        let engine = Engine::new();
        let a = engine.nonredundant(&view, &cat).unwrap();
        let b = engine.nonredundant(&swapped, &cat).unwrap();
        assert!(!a.from_cache);
        assert!(!b.from_cache, "reordered view must not hit the entry");
        let (Verdict::Nonredundant(ka), Verdict::Nonredundant(kb)) = (&*a.verdict, &*b.verdict)
        else {
            panic!("expected Nonredundant verdicts");
        };
        // R subsumes pi{A,B}(R) in either order; greedy keeps R's slot.
        assert_eq!(ka, &[0]);
        assert_eq!(kb, &[1]);
        // One pooled context serves both orders (sorted-fps pool key).
        assert_eq!(engine.enum_stats().contexts, 1);
    }
}
