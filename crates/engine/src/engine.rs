//! The batch decision engine.
//!
//! [`Engine::run_batch`] takes a [`Workload`], deduplicates requests by
//! canonical fingerprint, resolves what it can from the verdict cache, runs
//! the remaining distinct checks across `std::thread::scope` workers, and
//! reassembles per-request results in submission order.
//!
//! **Determinism.** Parallel execution returns results identical to
//! sequential execution: the fingerprint pass and deduplication are
//! sequential, exactly one (order-determined) representative per
//! fingerprint class computes, every decision procedure is itself
//! deterministic, and reassembly is positional. Thread scheduling can only
//! change *when* a verdict is computed, never *which* verdict a request
//! receives.

use crate::cache::{CacheKey, CacheStats, Entry, VerdictCache};
use crate::fingerprint::{
    query_fingerprint, view_fingerprint, view_query_fingerprints, Fingerprint,
};
use crate::verdict::{CheckKind, Verdict};
use crate::workload::{Check, Workload};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use viewcap_base::{Catalog, RelId};
use viewcap_core::capacity::cap_contains;
use viewcap_core::equivalence::{dominates_with, equivalent_with};
use viewcap_core::{SearchBudget, View};
use viewcap_template::SearchOverflow;

/// The outcome of deciding one request.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The (possibly shared) verdict.
    pub verdict: Arc<Verdict>,
    /// Whether this verdict was served from the cache (or from another
    /// request of the same batch via deduplication).
    pub from_cache: bool,
    /// Ordered per-query fingerprints of the view that computed the
    /// verdict's witness (its "left" view; for equivalence, the
    /// canonical-orientation left — see [`Decision::flipped`]).
    pub left_query_fps: Arc<[Fingerprint]>,
    /// For [`CheckKind::Equivalent`] only: equivalence verdicts are stored
    /// in *canonical* orientation (the smaller-fingerprint view as "v"),
    /// so one cache entry serves both orientations. `flipped` is `true`
    /// when this request's `left`/`right` are the reverse of the stored
    /// witness — its `v_dominates_w` then proves `right` dominates `left`.
    /// Always `false` for membership and dominance checks.
    pub flipped: bool,
}

impl Decision {
    /// View-schema names aligned with the witness's query indices.
    ///
    /// A cached membership proof indexes the *producer's* defining-query
    /// positions. When the requesting `view` lists equivalent queries in a
    /// different order, this remaps so `names[i]` is the requester's name
    /// for the producer's `i`-th query. Returns `None` if the views'
    /// query multisets don't line up (they always do on a genuine cache
    /// hit, barring a fingerprint collision).
    pub fn member_witness_names(&self, view: &View) -> Option<Vec<RelId>> {
        let theirs = view_query_fingerprints(view);
        let schema = view.schema();
        if theirs.len() != self.left_query_fps.len() {
            return None;
        }
        let mut used = vec![false; theirs.len()];
        let mut names = Vec::with_capacity(theirs.len());
        for fp in self.left_query_fps.iter() {
            let j = theirs
                .iter()
                .enumerate()
                .position(|(j, t)| !used[j] && t == fp)?;
            used[j] = true;
            names.push(schema[j]);
        }
        Some(names)
    }
}

/// Summary of one [`Engine::run_batch`] call.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-request outcomes, positionally aligned with the workload.
    /// `Err` means the bounded search overflowed — unknown, not "no".
    pub results: Vec<Result<Decision, SearchOverflow>>,
    /// Requests submitted.
    pub total: usize,
    /// Distinct fingerprint classes after deduplication.
    pub distinct: usize,
    /// Distinct classes answered from the pre-batch cache.
    pub cache_hits: usize,
    /// Distinct classes actually computed by this batch.
    pub executed: usize,
}

/// The concurrent batch decision engine.
///
/// Holds the verdict cache and the search budget. One engine serves one
/// [`Catalog`] (fingerprints embed `RelId`s, which are only meaningful
/// within a catalog).
pub struct Engine {
    cache: VerdictCache,
    budget: SearchBudget,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine with the default search budget.
    pub fn new() -> Self {
        Engine::with_budget(SearchBudget::default())
    }

    /// Engine with an explicit search budget.
    pub fn with_budget(budget: SearchBudget) -> Self {
        Engine::with_cache(budget, VerdictCache::new())
    }

    /// Engine over a caller-provided verdict cache — a bounded one
    /// ([`VerdictCache::bounded`]) or one warmed from disk
    /// ([`crate::persist::load_cache`]).
    pub fn with_cache(budget: SearchBudget, cache: VerdictCache) -> Self {
        Engine { cache, budget }
    }

    /// The engine's verdict cache (e.g. for persistence via
    /// [`crate::persist::save_cache`]).
    pub fn cache(&self) -> &VerdictCache {
        &self.cache
    }

    /// The engine's search budget, so callers driving non-engine
    /// procedures alongside the engine can stay budget-consistent.
    pub fn budget(&self) -> &SearchBudget {
        &self.budget
    }

    /// Snapshot the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cache key of a check (equivalence keys are orientation-free).
    pub fn cache_key(check: &Check) -> CacheKey {
        Engine::key_and_orientation(check).0
    }

    /// Cache key plus whether the request's orientation is flipped
    /// relative to the canonical (stored) orientation.
    fn key_and_orientation(check: &Check) -> (CacheKey, bool) {
        match check {
            Check::Member { view, goal } => (
                CacheKey {
                    kind: CheckKind::Member,
                    left: view_fingerprint(view),
                    right: query_fingerprint(goal),
                },
                false,
            ),
            Check::Dominates {
                dominator,
                dominated,
            } => (
                CacheKey {
                    kind: CheckKind::Dominates,
                    left: view_fingerprint(dominator),
                    right: view_fingerprint(dominated),
                },
                false,
            ),
            Check::Equivalent { left, right } => {
                let (a, b) = (view_fingerprint(left), view_fingerprint(right));
                (
                    CacheKey {
                        kind: CheckKind::Equivalent,
                        left: a.min(b),
                        right: a.max(b),
                    },
                    a > b,
                )
            }
        }
    }

    /// Run the underlying decision procedure (no cache involvement).
    /// `flipped` is the check's orientation as computed by
    /// [`Engine::key_and_orientation`], threaded through so equivalence
    /// checks need not re-derive it from the fingerprints.
    fn compute(
        &self,
        check: &Check,
        flipped: bool,
        catalog: &Catalog,
    ) -> Result<Entry, SearchOverflow> {
        let (verdict, left_view) = match check {
            Check::Member { view, goal } => (
                Verdict::Member(cap_contains(view, goal, catalog, &self.budget)?),
                view,
            ),
            Check::Dominates {
                dominator,
                dominated,
            } => (
                Verdict::Dominates(dominates_with(dominator, dominated, catalog, &self.budget)?),
                dominator,
            ),
            Check::Equivalent { left, right } => {
                // Compute in canonical (fingerprint-ordered) orientation so
                // the stored witness means the same thing for every request
                // that maps to this key, whichever way it was posed.
                let (v, w) = if flipped {
                    (right, left)
                } else {
                    (left, right)
                };
                (
                    Verdict::Equivalent(equivalent_with(v, w, catalog, &self.budget)?),
                    v,
                )
            }
        };
        Ok(Entry {
            verdict: Arc::new(verdict),
            left_query_fps: Arc::from(view_query_fingerprints(left_view).as_slice()),
        })
    }

    /// Decide one check through the cache.
    pub fn decide(&self, check: &Check, catalog: &Catalog) -> Result<Decision, SearchOverflow> {
        let (key, flipped) = Engine::key_and_orientation(check);
        if let Some(entry) = self.cache.get(&key) {
            return Ok(Decision {
                verdict: entry.verdict,
                from_cache: true,
                left_query_fps: entry.left_query_fps,
                flipped,
            });
        }
        let entry = self.compute(check, flipped, catalog)?;
        self.cache.insert(key, entry.clone());
        Ok(Decision {
            verdict: entry.verdict,
            from_cache: false,
            left_query_fps: entry.left_query_fps,
            flipped,
        })
    }

    /// Decide a whole workload: dedup → cache → parallel compute →
    /// positional reassembly. `jobs == 0` means "use available
    /// parallelism"; results are identical for every `jobs` value.
    pub fn run_batch(&self, workload: &Workload, catalog: &Catalog, jobs: usize) -> BatchOutcome {
        let total = workload.len();

        // 1. Fingerprint every request and elect one representative per
        //    class — sequential, so the election is order-deterministic.
        let mut slot_of_key: HashMap<CacheKey, usize> = HashMap::new();
        let mut request_slots: Vec<usize> = Vec::with_capacity(total);
        let mut request_flipped: Vec<bool> = Vec::with_capacity(total);
        let mut representatives: Vec<(CacheKey, &Check, bool)> = Vec::new();
        for request in &workload.requests {
            let (key, flipped) = Engine::key_and_orientation(&request.check);
            let slot = *slot_of_key.entry(key).or_insert_with(|| {
                representatives.push((key, &request.check, flipped));
                representatives.len() - 1
            });
            request_slots.push(slot);
            request_flipped.push(flipped);
        }
        let distinct = representatives.len();

        // 2. Resolve representatives from the cache.
        let mut slot_results: Vec<Option<Result<Entry, SearchOverflow>>> = representatives
            .iter()
            .map(|(key, _, _)| self.cache.get(key).map(Ok))
            .collect();
        let todo: Vec<usize> = (0..distinct)
            .filter(|&s| slot_results[s].is_none())
            .collect();
        let cache_hits = distinct - todo.len();

        // 3. Compute the misses across scoped workers.
        let workers = effective_jobs(jobs).min(todo.len());
        if workers <= 1 {
            for &slot in &todo {
                let (_, check, flipped) = representatives[slot];
                slot_results[slot] = Some(self.compute(check, flipped, catalog));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Result<Entry, SearchOverflow>)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let todo = &todo;
                    let representatives = &representatives;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&slot) = todo.get(i) else { break };
                        let (_, check, flipped) = representatives[slot];
                        let outcome = self.compute(check, flipped, catalog);
                        if tx.send((slot, outcome)).is_err() {
                            break;
                        }
                    });
                }
            });
            drop(tx);
            for (slot, outcome) in rx {
                slot_results[slot] = Some(outcome);
            }
        }

        // 4. Publish freshly computed verdicts.
        for &slot in &todo {
            if let Some(Ok(entry)) = &slot_results[slot] {
                self.cache.insert(representatives[slot].0, entry.clone());
            }
        }

        // 5. Reassemble in submission order.
        let mut computed = vec![false; distinct];
        for &slot in &todo {
            computed[slot] = true;
        }
        let mut seen = vec![false; distinct];
        let results = request_slots
            .iter()
            .zip(&request_flipped)
            .map(|(&slot, &flipped)| {
                // "From cache" from the caller's perspective: either a
                // pre-batch hit, or deduplicated onto an earlier request of
                // this batch.
                let from_cache = !computed[slot] || seen[slot];
                seen[slot] = true;
                match slot_results[slot].as_ref().expect("every slot resolved") {
                    Ok(entry) => Ok(Decision {
                        verdict: Arc::clone(&entry.verdict),
                        from_cache,
                        left_query_fps: Arc::clone(&entry.left_query_fps),
                        flipped,
                    }),
                    Err(overflow) => Err(overflow.clone()),
                }
            })
            .collect();

        BatchOutcome {
            results,
            total,
            distinct,
            cache_hits,
            executed: todo.len(),
        }
    }
}

/// Resolve a `--jobs` setting: `0` means available parallelism.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}
