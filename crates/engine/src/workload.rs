//! Workloads: batches of labeled decision requests.

use crate::verdict::CheckKind;
use viewcap_core::{Query, View};

/// One decision-procedure invocation.
#[derive(Clone, Debug)]
pub enum Check {
    /// Is `goal` in `Cap(view)`?
    Member {
        /// The view whose capacity is probed.
        view: View,
        /// The candidate member.
        goal: Query,
    },
    /// Does `dominator` dominate `dominated`?
    Dominates {
        /// The prospective dominator `𝒱`.
        dominator: View,
        /// The prospective dominated view `𝒲`.
        dominated: View,
    },
    /// Are the views equivalent?
    Equivalent {
        /// One side.
        left: View,
        /// The other side.
        right: View,
    },
}

impl Check {
    /// The procedure this check invokes.
    pub fn kind(&self) -> CheckKind {
        match self {
            Check::Member { .. } => CheckKind::Member,
            Check::Dominates { .. } => CheckKind::Dominates,
            Check::Equivalent { .. } => CheckKind::Equivalent,
        }
    }
}

/// A labeled check; the label rides through to reports.
#[derive(Clone, Debug)]
pub struct Request {
    /// Caller-chosen display label.
    pub label: String,
    /// The check to decide.
    pub check: Check,
}

/// An ordered batch of requests.
///
/// Order is the contract: batch results come back positionally aligned, and
/// deduplication always elects the *first* request of each fingerprint
/// class as the one that computes, which is what makes parallel execution
/// reproduce sequential output byte for byte.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// The requests, in submission order.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Append a labeled check.
    pub fn push(&mut self, label: impl Into<String>, check: Check) {
        self.requests.push(Request {
            label: label.into(),
            check,
        });
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Is the workload empty?
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}
