//! The [`Pile`]-backed mode of the verdict cache: a crash-safe, shared,
//! append-only store any number of workers can write concurrently.
//!
//! Every cache record in the pile carries a *complete* version-2 cache
//! file ([`crate::persist`]) as its payload. That choice keeps the bridge
//! honest in both directions:
//!
//! * **import** ([`PileStore::append_cache_bytes`]) is "validate, then
//!   append the file bytes" — an existing `.vcapcache` migrates without
//!   re-encoding, so nothing can be lost in translation;
//! * **export / load** ([`PileStore::merged_bytes`], [`PileStore::load`])
//!   is exactly [`merge_cache_bytes`] over the records in append order —
//!   so reloading a pile N workers appended disjoint verdict sets to is
//!   *byte-identical* to merging those workers' cache files with the CLI.
//!   "Merge" stops being an operation: point two engines at the same pile
//!   and the union is just what the pile contains.
//!
//! Concurrency: appends go through the pile's single-write `O_APPEND`
//! discipline, so processes and threads interleave whole records, never
//! bytes, and a reader polling mid-append can never observe a torn
//! record. A crash mid-append damages only the suffix;
//! [`PileStore::recover`] truncates it back to the last valid prefix and
//! reports what was dropped.

use crate::cache::VerdictCache;
use crate::persist::{
    merge_cache_bytes, save_cache, validate_cache_bytes, MergeReport, PersistError,
};
use crate::spacestore::{SpaceLibrary, SpaceStoreError};
use std::fmt;
use std::path::Path;
use viewcap_base::Catalog;
use viewcap_pile::{Pile, PileError, RecoveryReport};

/// Record kind of a cache snapshot (a whole version-2 cache file).
pub const CACHE_RECORD_KIND: u8 = 1;

/// Record kind of a candidate-space snapshot (a whole
/// [`SpaceLibrary`] file). Rides the same pile as verdict records —
/// readers of either kind skip the other — so one append-only file
/// carries a catalog's full warm-start state.
pub const SPACE_RECORD_KIND: u8 = 2;

/// Why a pile-store operation failed.
#[derive(Debug)]
pub enum PileStoreError {
    /// The underlying pile rejected the operation (I/O or framing).
    Pile(PileError),
    /// A record's cache payload failed to parse, or an import candidate
    /// was rejected before being appended.
    Persist(PersistError),
    /// A record's space-library payload failed to parse, or an import
    /// candidate was rejected before being appended.
    Space(SpaceStoreError),
}

impl fmt::Display for PileStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PileStoreError::Pile(e) => write!(f, "{e}"),
            PileStoreError::Persist(e) => write!(f, "{e}"),
            PileStoreError::Space(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PileStoreError {}

impl From<PileError> for PileStoreError {
    fn from(e: PileError) -> Self {
        PileStoreError::Pile(e)
    }
}

impl From<PersistError> for PileStoreError {
    fn from(e: PersistError) -> Self {
        PileStoreError::Persist(e)
    }
}

impl From<SpaceStoreError> for PileStoreError {
    fn from(e: SpaceStoreError) -> Self {
        PileStoreError::Space(e)
    }
}

/// A verdict store over an append-only [`Pile`].
pub struct PileStore {
    pile: Pile,
}

impl PileStore {
    /// Open (creating if absent) a pile store. Rejects a structurally
    /// damaged pile; use [`PileStore::recover`] to truncate damage away.
    pub fn open(path: impl AsRef<Path>) -> Result<PileStore, PileStoreError> {
        Ok(PileStore {
            pile: Pile::open(path)?,
        })
    }

    /// Open a pile store, truncating any damaged suffix (a crash
    /// mid-append) back to the last valid prefix. The report says whether
    /// anything was dropped — a daemon prints it on startup.
    pub fn recover(path: impl AsRef<Path>) -> Result<(PileStore, RecoveryReport), PileStoreError> {
        let (pile, report) = Pile::recover(path)?;
        Ok((PileStore { pile }, report))
    }

    /// The pile's path.
    pub fn path(&self) -> &Path {
        self.pile.path()
    }

    /// Append `cache`'s current snapshot as one record (a complete v2
    /// cache file, `catalog` resolving native entries' names). An empty
    /// snapshot appends nothing. Returns the appended record's size in
    /// bytes (0 when nothing was appended).
    pub fn append_cache(
        &mut self,
        cache: &VerdictCache,
        catalog: &Catalog,
    ) -> Result<usize, PileStoreError> {
        if cache.stats().entries == 0 {
            return Ok(0);
        }
        let bytes = save_cache(cache, catalog);
        Ok(self.pile.append(CACHE_RECORD_KIND, &bytes)?)
    }

    /// Import bridge: append an existing cache file's bytes as one record,
    /// after fully validating them — a corrupt or version-skewed file is
    /// rejected and the pile is untouched. Returns the file's entry count.
    pub fn append_cache_bytes(&mut self, bytes: &[u8]) -> Result<usize, PileStoreError> {
        let entries = validate_cache_bytes(bytes)?;
        self.pile.append(CACHE_RECORD_KIND, bytes)?;
        Ok(entries)
    }

    /// The pile's cache records' payloads, in append order. Unknown record
    /// kinds are skipped (future formats may ride the same pile).
    fn cache_payloads(&mut self) -> Result<Vec<Vec<u8>>, PileStoreError> {
        Ok(self
            .pile
            .records()?
            .into_iter()
            .filter(|r| r.kind == CACHE_RECORD_KIND)
            .map(|r| r.payload)
            .collect())
    }

    /// Export bridge: merge every cache record into one canonical v2 cache
    /// file — byte-identical to `viewcap-cli cache merge` over the same
    /// snapshots in the same order. An empty pile merges to an empty cache
    /// file.
    pub fn merged_bytes(&mut self) -> Result<(Vec<u8>, MergeReport), PileStoreError> {
        Ok(merge_cache_bytes(&self.cache_payloads()?)?)
    }

    /// Load the pile's union verdict set as a cache bounded by
    /// `max_entries` (`None` = unbounded), ready for
    /// [`crate::EngineConfig::cache`]. Entries load `foreign` and translate
    /// into the live catalog on first hit, exactly as file-loaded caches
    /// do.
    pub fn load(&mut self, max_entries: Option<usize>) -> Result<VerdictCache, PileStoreError> {
        let payloads = self.cache_payloads()?;
        if payloads.is_empty() {
            return Ok(VerdictCache::bounded(max_entries));
        }
        let (merged, _) = merge_cache_bytes(&payloads)?;
        Ok(crate::persist::load_cache(&merged, max_entries)?)
    }

    /// Number of cache records currently in the pile.
    pub fn record_count(&mut self) -> Result<usize, PileStoreError> {
        Ok(self.cache_payloads()?.len())
    }

    /// Append a candidate-space library as one record (a complete
    /// [`SpaceLibrary`] file). An empty library appends nothing. Returns
    /// the appended record's size in bytes (0 when nothing was appended).
    pub fn append_spaces(&mut self, spaces: &SpaceLibrary) -> Result<usize, PileStoreError> {
        if spaces.is_empty() {
            return Ok(0);
        }
        Ok(self.pile.append(SPACE_RECORD_KIND, &spaces.to_bytes())?)
    }

    /// Import bridge: append an existing space-library file's bytes as one
    /// record, after fully validating them. Returns the library's entry
    /// count.
    pub fn append_space_bytes(&mut self, bytes: &[u8]) -> Result<usize, PileStoreError> {
        let entries = SpaceLibrary::from_bytes(bytes)?.len();
        self.pile.append(SPACE_RECORD_KIND, bytes)?;
        Ok(entries)
    }

    /// The union of every space record, merged in append order (per space
    /// key, the snapshot with the most levels wins). An empty or
    /// space-record-free pile loads an empty library.
    pub fn load_spaces(&mut self) -> Result<SpaceLibrary, PileStoreError> {
        let mut out = SpaceLibrary::new();
        for record in self.pile.records()? {
            if record.kind != SPACE_RECORD_KIND {
                continue;
            }
            out.merge(SpaceLibrary::from_bytes(&record.payload)?);
        }
        Ok(out)
    }

    /// Number of space records currently in the pile.
    pub fn space_record_count(&mut self) -> Result<usize, PileStoreError> {
        Ok(self
            .pile
            .records()?
            .into_iter()
            .filter(|r| r.kind == SPACE_RECORD_KIND)
            .count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::workload::Check;
    use viewcap_core::{Query, View};
    use viewcap_expr::parse_expr;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("viewcap-pilestore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.vcappile"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn setup() -> (Catalog, View) {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let v1 = cat.fresh_relation("v1", ab);
        let v2 = cat.fresh_relation("v2", bc);
        let view = View::from_exprs(
            vec![
                (parse_expr("pi{A,B}(R)", &cat).unwrap(), v1),
                (parse_expr("pi{B,C}(R)", &cat).unwrap(), v2),
            ],
            &cat,
        )
        .unwrap();
        (cat, view)
    }

    fn decide(engine: &Engine, cat: &Catalog, view: &View, goal: &str) {
        let goal = Query::from_expr(parse_expr(goal, cat).unwrap(), cat);
        engine
            .decide(
                &Check::Member {
                    view: view.clone(),
                    goal,
                },
                cat,
            )
            .unwrap();
    }

    #[test]
    fn two_engines_one_pile_union_their_verdicts() {
        let (cat, view) = setup();
        let path = tmp("two-engines");

        // Worker 1 decides two goals, appends its snapshot.
        let e1 = Engine::new();
        decide(&e1, &cat, &view, "pi{A}(R)");
        decide(&e1, &cat, &view, "pi{B}(R)");
        let mut store = PileStore::open(&path).unwrap();
        assert!(store.append_cache(e1.cache(), &cat).unwrap() > 0);

        // Worker 2, separate handle, disjoint goals.
        let e2 = Engine::new();
        decide(&e2, &cat, &view, "pi{C}(R)");
        let mut store2 = PileStore::open(&path).unwrap();
        store2.append_cache(e2.cache(), &cat).unwrap();

        // "Merge" is just loading the shared pile.
        let mut reader = PileStore::open(&path).unwrap();
        assert_eq!(reader.record_count().unwrap(), 2);
        let warmed = reader.load(None).unwrap();
        assert_eq!(warmed.stats().entries, 3);

        // And a third engine over the loaded cache answers all three goals
        // from it.
        let e3 = Engine::from_config(crate::EngineConfig::new().cache(warmed)).unwrap();
        for goal in ["pi{A}(R)", "pi{B}(R)", "pi{C}(R)"] {
            decide(&e3, &cat, &view, goal);
        }
        let stats = e3.cache_stats();
        assert_eq!(stats.hits, 3, "{stats}");
    }

    #[test]
    fn pile_reload_is_byte_identical_to_cli_merge_of_the_same_snapshots() {
        let (cat, view) = setup();
        let path = tmp("merge-identity");

        let mut snapshots = Vec::new();
        let mut store = PileStore::open(&path).unwrap();
        for goal in ["pi{A}(R)", "pi{B}(R)", "pi{A,B}(R)"] {
            let engine = Engine::new();
            decide(&engine, &cat, &view, goal);
            snapshots.push(save_cache(engine.cache(), &cat));
            store.append_cache(engine.cache(), &cat).unwrap();
        }
        let (from_pile, pile_report) = store.merged_bytes().unwrap();
        let (from_merge, merge_report) = merge_cache_bytes(&snapshots).unwrap();
        assert_eq!(from_pile, from_merge, "pile export must equal CLI merge");
        assert_eq!(pile_report, merge_report);
    }

    #[test]
    fn import_bridge_validates_before_appending() {
        let (cat, view) = setup();
        let path = tmp("import");
        let engine = Engine::new();
        decide(&engine, &cat, &view, "R");
        let file = save_cache(engine.cache(), &cat);

        let mut store = PileStore::open(&path).unwrap();
        assert_eq!(store.append_cache_bytes(&file).unwrap(), 1);

        // Corrupt file bytes: rejected, pile unchanged.
        let mut bad = file.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            store.append_cache_bytes(&bad),
            Err(PileStoreError::Persist(_))
        ));
        assert_eq!(store.record_count().unwrap(), 1);

        // Round trip: export equals the single imported file's merge.
        let (exported, _) = store.merged_bytes().unwrap();
        let (expected, _) = merge_cache_bytes(std::slice::from_ref(&file)).unwrap();
        assert_eq!(exported, expected);
    }

    #[test]
    fn space_records_ride_alongside_cache_records() {
        let (cat, view) = setup();
        let path = tmp("spaces");

        // A verdict record and a space record, interleaved.
        let engine = Engine::new();
        decide(&engine, &cat, &view, "pi{A}(R)");
        let mut store = PileStore::open(&path).unwrap();
        store.append_cache(engine.cache(), &cat).unwrap();

        let mut lib = SpaceLibrary::new();
        lib.insert(99, vec![1, 2, 3]);
        assert!(store.append_spaces(&lib).unwrap() > 0);
        assert!(store.append_spaces(&SpaceLibrary::new()).unwrap() == 0);

        let mut lib2 = SpaceLibrary::new();
        lib2.insert(99, vec![1, 2, 3, 4]); // more levels for the same key
        lib2.insert(7, vec![9]);
        store.append_spaces(&lib2).unwrap();

        // Cache loads skip space records; space loads skip cache records.
        let mut reader = PileStore::open(&path).unwrap();
        assert_eq!(reader.record_count().unwrap(), 1);
        assert_eq!(reader.space_record_count().unwrap(), 2);
        assert_eq!(reader.load(None).unwrap().stats().entries, 1);
        let merged = reader.load_spaces().unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.get(99), Some(&[1, 2, 3, 4][..]), "most levels win");

        // The import bridge validates before appending.
        assert_eq!(store.append_space_bytes(&lib.to_bytes()).unwrap(), 1);
        assert!(matches!(
            store.append_space_bytes(b"garbage"),
            Err(PileStoreError::Space(_))
        ));
    }

    #[test]
    fn empty_pile_loads_an_empty_cache() {
        let path = tmp("empty");
        let mut store = PileStore::open(&path).unwrap();
        let cache = store.load(Some(10)).unwrap();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.capacity(), Some(10));
        let (bytes, report) = store.merged_bytes().unwrap();
        assert_eq!(report.entries_out, 0);
        assert!(
            validate_cache_bytes(&bytes).is_ok(),
            "empty merge is a valid file"
        );
    }
}
