//! Engine determinism: parallel batches must be indistinguishable from
//! sequential ones, and warm-cache reruns must return identical verdicts.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use viewcap_base::Catalog;
use viewcap_engine::{BatchOutcome, Check, Engine, Workload};
use viewcap_gen::{random_query, random_view, random_world, WorldSpec};

/// A seeded workload of cross-view equivalence checks and membership
/// probes — small worlds, so the bounded search stays fast.
fn random_workload(seed: u64) -> (Catalog, Workload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = WorldSpec {
        attrs: 4,
        relations: 2,
        min_arity: 1,
        max_arity: 2,
    };
    let (mut cat, rels) = random_world(&mut rng, &spec);
    let views: Vec<_> = (0..3)
        .map(|_| random_view(&mut rng, &mut cat, &rels, 2, 2))
        .collect();

    let mut load = Workload::new();
    for (i, v) in views.iter().enumerate() {
        for (j, w) in views.iter().enumerate() {
            if i != j {
                load.push(
                    format!("equivalent {i} {j}"),
                    Check::Equivalent {
                        left: v.clone(),
                        right: w.clone(),
                    },
                );
                load.push(
                    format!("dominates {i} {j}"),
                    Check::Dominates {
                        dominator: v.clone(),
                        dominated: w.clone(),
                    },
                );
            }
        }
        let goal = random_query(&mut rng, &cat, &rels, 2);
        load.push(
            format!("member {i}"),
            Check::Member {
                view: v.clone(),
                goal,
            },
        );
    }
    (cat, load)
}

/// Everything observable about a batch, per request: success, answer, and
/// witness size. Two runs agree iff their signatures agree.
fn signature(outcome: &BatchOutcome) -> Vec<Result<(bool, Option<usize>), String>> {
    outcome
        .results
        .iter()
        .map(|r| {
            r.as_ref()
                .map(|d| (d.verdict.is_yes(), d.verdict.witness_atoms()))
                .map_err(|e| e.to_string())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_batches_match_sequential(seed in 0u64..1_000) {
        let (cat, load) = random_workload(seed);

        let sequential = Engine::new().run_batch(&load, &cat, 1);
        let parallel = Engine::new().run_batch(&load, &cat, 8);

        prop_assert_eq!(signature(&sequential), signature(&parallel));
        prop_assert_eq!(sequential.distinct, parallel.distinct);
        prop_assert_eq!(sequential.executed, parallel.executed);
    }

    #[test]
    fn warm_cache_reruns_are_identical(seed in 0u64..1_000) {
        let (cat, load) = random_workload(seed);
        let engine = Engine::new();

        let cold = engine.run_batch(&load, &cat, 4);
        let warm = engine.run_batch(&load, &cat, 4);

        prop_assert_eq!(signature(&cold), signature(&warm));
        // Every non-overflow verdict is served from the cache on rerun.
        let overflows = cold.results.iter().filter(|r| r.is_err()).count();
        if overflows == 0 {
            prop_assert_eq!(warm.executed, 0);
            prop_assert_eq!(warm.cache_hits, warm.distinct);
            for decision in warm.results.iter().flatten() {
                prop_assert!(decision.from_cache);
            }
        }
    }
}

#[test]
fn equivalence_cache_hits_report_their_orientation() {
    // Example 3.1.5: equivalent views asked both ways share one cache
    // entry; the stored witness is in canonical (fingerprint-ordered)
    // orientation and `flipped` tells each request which way it faces.
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let bc = cat.scheme(&["B", "C"]).unwrap();
    let abc = cat.scheme(&["A", "B", "C"]).unwrap();
    let lam = cat.fresh_relation("lam", abc);
    let l1 = cat.fresh_relation("l1", ab);
    let l2 = cat.fresh_relation("l2", bc);
    let v = viewcap_core::View::from_exprs(
        vec![(
            viewcap_expr::parse_expr("pi{A,B}(R) * pi{B,C}(R)", &cat).unwrap(),
            lam,
        )],
        &cat,
    )
    .unwrap();
    let w = viewcap_core::View::from_exprs(
        vec![
            (viewcap_expr::parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
            (viewcap_expr::parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
        ],
        &cat,
    )
    .unwrap();

    let engine = Engine::new();
    let vw = engine
        .decide(
            &Check::Equivalent {
                left: v.clone(),
                right: w.clone(),
            },
            &cat,
        )
        .unwrap();
    let wv = engine
        .decide(
            &Check::Equivalent {
                left: w.clone(),
                right: v.clone(),
            },
            &cat,
        )
        .unwrap();

    // Same cache entry, opposite orientations.
    assert!(!vw.from_cache);
    assert!(wv.from_cache);
    assert!(std::sync::Arc::ptr_eq(&vw.verdict, &wv.verdict));
    assert_ne!(vw.flipped, wv.flipped);

    // The stored witness is oriented to the canonical left view, whose
    // query fingerprints are exactly `left_query_fps` — so the request
    // with `flipped == false` has its own left view there.
    let canonical_left = if vw.flipped { &w } else { &v };
    assert_eq!(
        vw.left_query_fps.as_ref(),
        viewcap_engine::view_query_fingerprints(canonical_left, &cat).as_slice()
    );
}

#[test]
fn dedup_elects_the_first_request() {
    // Two labels, one fingerprint class: both must resolve, the second
    // marked as deduplicated.
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B"]).unwrap();
    let a = cat.scheme(&["A"]).unwrap();
    let name = cat.fresh_relation("p", a);
    let view = viewcap_core::View::from_exprs(
        vec![(viewcap_expr::parse_expr("pi{A}(R)", &cat).unwrap(), name)],
        &cat,
    )
    .unwrap();
    let goal = |src: &str| {
        viewcap_core::Query::from_expr(viewcap_expr::parse_expr(src, &cat).unwrap(), &cat)
    };

    let mut load = Workload::new();
    load.push(
        "first",
        Check::Member {
            view: view.clone(),
            goal: goal("pi{A}(R)"),
        },
    );
    load.push(
        "same class, different syntax",
        Check::Member {
            view: view.clone(),
            goal: goal("pi{A}(R * R)"),
        },
    );

    let engine = Engine::new();
    let outcome = engine.run_batch(&load, &cat, 2);
    assert_eq!(
        (outcome.total, outcome.distinct, outcome.executed),
        (2, 1, 1)
    );
    let first = outcome.results[0].as_ref().unwrap();
    let second = outcome.results[1].as_ref().unwrap();
    assert!(!first.from_cache);
    assert!(second.from_cache);
    assert!(std::sync::Arc::ptr_eq(&first.verdict, &second.verdict));
}
