//! Concurrent-append stress test for the pile-backed verdict store.
//!
//! N worker threads — each its own [`Engine`] and its own [`PileStore`]
//! handle on one shared pile — decide *disjoint* verdict sets and append
//! their snapshots, several records per worker, while a [`PileReader`] in
//! the main thread polls the live file throughout. The claims under test:
//!
//! * a polling reader never observes a torn or partially hashed record —
//!   every surfaced payload is a complete, fully valid v2 cache file;
//! * no append is lost or interleaved: the final pile holds exactly the
//!   records the workers wrote;
//! * the final reload is **byte-identical** to [`merge_cache_bytes`] over
//!   the same snapshots — the pile is just a crash-safe spelling of the
//!   fleet's `cache merge`.
//!
//! (The two-process variant of this test drives the real CLI binary; it
//! lives in the workspace root's `tests/pile_cli.rs`, next to the binary.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use viewcap_base::Catalog;
use viewcap_core::{Query, View};
use viewcap_engine::{
    merge_cache_bytes, save_cache, validate_cache_bytes, Check, Engine, EngineConfig, PileStore,
};
use viewcap_expr::parse_expr;
use viewcap_pile::PileReader;

const WORKERS: usize = 8;
const RECORDS_PER_WORKER: usize = 3;

/// A catalog declaring one relation per worker, so workers' fingerprints
/// are pairwise disjoint by construction.
fn fleet_catalog() -> Catalog {
    let mut cat = Catalog::new();
    for w in 0..WORKERS {
        cat.relation(&format!("S{w}"), &["A", "B", "C"]).unwrap();
    }
    cat
}

fn worker_view(cat: &mut Catalog, w: usize) -> View {
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let name = cat.fresh_relation(&format!("view{w}"), ab);
    View::from_exprs(
        vec![(parse_expr(&format!("pi{{A,B}}(S{w})"), cat).unwrap(), name)],
        cat,
    )
    .unwrap()
}

/// The goal sources worker `w` decides in its `chunk`-th record.
fn goals(w: usize, chunk: usize) -> Vec<String> {
    match chunk {
        0 => vec![format!("pi{{A}}(S{w})"), format!("pi{{B}}(S{w})")],
        1 => vec![format!("pi{{A,B}}(S{w})"), format!("S{w}")],
        _ => vec![format!("pi{{A}}(S{w}) * pi{{B}}(S{w})")],
    }
}

#[test]
fn concurrent_appends_never_tear_and_reload_equals_merge() {
    let dir = std::env::temp_dir().join(format!("viewcap-pile-stress-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.vcappile");
    let _ = std::fs::remove_file(&path);
    PileStore::open(&path).unwrap(); // create the file so the reader can open it

    let done = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, usize, Vec<u8>)>();

    let polled = std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let tx = tx.clone();
            let path = &path;
            scope.spawn(move || {
                let mut cat = fleet_catalog();
                let view = worker_view(&mut cat, w);
                let mut store = PileStore::open(path).unwrap();
                for chunk in 0..RECORDS_PER_WORKER {
                    // A fresh engine per chunk, so each appended snapshot
                    // holds exactly this chunk's (disjoint) verdicts.
                    let engine = Engine::new();
                    for src in goals(w, chunk) {
                        let goal = Query::from_expr(parse_expr(&src, &cat).unwrap(), &cat);
                        engine
                            .decide(
                                &Check::Member {
                                    view: view.clone(),
                                    goal,
                                },
                                &cat,
                            )
                            .unwrap();
                    }
                    let bytes = save_cache(engine.cache(), &cat);
                    store.append_cache(engine.cache(), &cat).unwrap();
                    tx.send((w, chunk, bytes)).unwrap();
                }
            });
        }
        drop(tx);

        // The reader thread polls the live pile for the whole run. Every
        // record it surfaces must be complete and parse as a valid cache
        // file — a torn append must never be visible.
        let reader = scope.spawn(|| {
            let mut reader = PileReader::open(&path).unwrap();
            let mut seen = Vec::new();
            let mut last_end = 0u64;
            loop {
                let finished = done.load(Ordering::Acquire);
                for record in reader.poll().unwrap() {
                    assert!(
                        record.offset >= last_end,
                        "records must surface in file order"
                    );
                    last_end = record.offset;
                    validate_cache_bytes(&record.payload).unwrap_or_else(|e| {
                        panic!(
                            "reader observed an invalid record at {}: {e}",
                            record.offset
                        )
                    });
                    seen.push(record);
                }
                if finished {
                    return seen;
                }
                std::thread::yield_now();
            }
        });

        // Collect every worker's snapshot; the channel closing means all
        // workers finished their appends.
        let mut snapshots: Vec<(usize, usize, Vec<u8>)> = rx.iter().collect();
        done.store(true, Ordering::Release);
        let polled = reader.join().unwrap();
        snapshots.sort_by_key(|&(w, chunk, _)| (w, chunk));
        (snapshots, polled)
    });
    let (snapshots, polled) = polled;

    assert_eq!(snapshots.len(), WORKERS * RECORDS_PER_WORKER);
    assert_eq!(
        polled.len(),
        WORKERS * RECORDS_PER_WORKER,
        "every append must surface exactly once"
    );

    // Every polled payload is one of the appended snapshots, byte-for-byte
    // (no interleaving of two workers' bytes).
    for record in &polled {
        assert!(
            snapshots.iter().any(|(_, _, s)| s == &record.payload),
            "polled record at {} matches no appended snapshot",
            record.offset
        );
    }

    // Final reload = CLI merge of the same inputs, byte-identical. The
    // workers' verdict sets are disjoint and merge output is sorted by
    // key (names re-interned over the sorted stream), so append order —
    // which the scheduler controls — cannot change the merged bytes.
    let mut store = PileStore::open(&path).unwrap();
    let (from_pile, report) = store.merged_bytes().unwrap();
    let inputs: Vec<Vec<u8>> = snapshots.into_iter().map(|(_, _, s)| s).collect();
    let (from_merge, _) = merge_cache_bytes(&inputs).unwrap();
    assert_eq!(
        from_pile, from_merge,
        "pile reload must be byte-identical to merging the same snapshots"
    );
    assert_eq!(report.inputs, WORKERS * RECORDS_PER_WORKER);
    assert_eq!(report.replaced, 0, "disjoint sets never collide");

    // And the loaded cache actually answers: hits for every worker's goals.
    let warmed = store.load(None).unwrap();
    let cache_entries = warmed.stats().entries;
    let engine = Engine::from_config(EngineConfig::new().cache(warmed)).unwrap();
    let mut cat = fleet_catalog();
    for w in 0..WORKERS {
        let view = worker_view(&mut cat, w);
        for chunk in 0..RECORDS_PER_WORKER {
            for src in goals(w, chunk) {
                let goal = Query::from_expr(parse_expr(&src, &cat).unwrap(), &cat);
                let d = engine
                    .decide(
                        &Check::Member {
                            view: view.clone(),
                            goal,
                        },
                        &cat,
                    )
                    .unwrap();
                assert!(d.from_cache, "warmed pile must answer {src} from cache");
            }
        }
    }
    assert_eq!(
        cache_entries,
        engine.cache_stats().entries,
        "pure hits: nothing recomputed, nothing inserted"
    );
}
