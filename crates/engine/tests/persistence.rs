//! Verdict-cache persistence and eviction:
//!
//! * save → load round trips warm-hit every fingerprint, witnesses intact;
//! * corrupted / truncated / version-mismatched files are rejected with an
//!   error, never a panic;
//! * bounded caches stay correct (only slower), with exact hit/miss/
//!   eviction counters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewcap_base::Catalog;
use viewcap_core::{Query, View};
use viewcap_engine::{
    compact_cache_bytes, load_cache, load_cache_from_path, merge_cache_bytes, save_cache,
    save_cache_to_path, write_bytes_atomic, BatchOutcome, Check, Engine, EngineConfig,
    PersistError, VerdictCache, Workload,
};
use viewcap_gen::{random_query, random_view, random_world, WorldSpec};

/// A seeded mixed workload (as in the determinism suite, but smaller).
fn random_workload(seed: u64) -> (Catalog, Workload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = WorldSpec {
        attrs: 4,
        relations: 2,
        min_arity: 1,
        max_arity: 2,
    };
    let (mut cat, rels) = random_world(&mut rng, &spec);
    let views: Vec<View> = (0..2)
        .map(|_| random_view(&mut rng, &mut cat, &rels, 2, 2))
        .collect();
    let mut load = Workload::new();
    load.push(
        "equivalent",
        Check::Equivalent {
            left: views[0].clone(),
            right: views[1].clone(),
        },
    );
    load.push(
        "dominates",
        Check::Dominates {
            dominator: views[0].clone(),
            dominated: views[1].clone(),
        },
    );
    for (i, v) in views.iter().enumerate() {
        load.push(
            format!("member {i}"),
            Check::Member {
                view: v.clone(),
                goal: random_query(&mut rng, &cat, &rels, 2),
            },
        );
    }
    (cat, load)
}

fn signature(outcome: &BatchOutcome) -> Vec<Result<(bool, Option<usize>), String>> {
    outcome
        .results
        .iter()
        .map(|r| {
            r.as_ref()
                .map(|d| (d.verdict.is_yes(), d.verdict.witness_atoms()))
                .map_err(|e| e.to_string())
        })
        .collect()
}

#[test]
fn round_trip_warm_hits_every_fingerprint() {
    for seed in 0..6u64 {
        let (cat, load) = random_workload(seed);
        let engine = Engine::new();
        let cold = engine.run_batch(&load, &cat, 2);
        if cold.results.iter().any(|r| r.is_err()) {
            continue; // overflows are not cached; nothing to round-trip
        }

        let bytes = save_cache(engine.cache(), &cat);
        let loaded = load_cache(&bytes, None).expect("round trip");

        // Every saved fingerprint is present after the reload...
        for (key, entry) in engine.cache().snapshot() {
            let got = loaded.get(&key).expect("fingerprint survives the trip");
            assert_eq!(got.verdict.is_yes(), entry.verdict.is_yes());
            assert_eq!(got.verdict.witness_atoms(), entry.verdict.witness_atoms());
            assert_eq!(got.left_query_fps, entry.left_query_fps);
        }

        // ...and a fresh engine over the loaded cache computes nothing.
        let warm_engine = Engine::from_config(EngineConfig::new().cache(loaded)).unwrap();
        let warm = warm_engine.run_batch(&load, &cat, 2);
        assert_eq!(warm.executed, 0, "seed {seed}: warm run recomputed");
        assert_eq!(warm.cache_hits, warm.distinct);
        assert_eq!(signature(&cold), signature(&warm));
        for d in warm.results.iter().flatten() {
            assert!(d.from_cache);
        }
    }
}

#[test]
fn saved_files_are_deterministic() {
    let (cat, load) = random_workload(3);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let a = save_cache(engine.cache(), &cat);
    // Re-running the same (now warm) workload must not change the bytes.
    engine.run_batch(&load, &cat, 4);
    let b = save_cache(engine.cache(), &cat);
    assert_eq!(a, b);
}

#[test]
fn file_round_trip_via_path() {
    let (cat, load) = random_workload(1);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);

    let path = std::env::temp_dir().join(format!("viewcap-cache-{}.bin", std::process::id()));
    save_cache_to_path(engine.cache(), &cat, &path).expect("save");
    let loaded = load_cache_from_path(&path, None).expect("load");
    assert_eq!(loaded.stats().entries, engine.cache().stats().entries);
    let _ = std::fs::remove_file(&path);

    // A missing file is an I/O error, not a panic.
    assert!(matches!(
        load_cache_from_path(&path, None),
        Err(PersistError::Io(_))
    ));
}

#[test]
fn every_truncation_is_rejected_cleanly() {
    let (cat, load) = random_workload(2);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let bytes = save_cache(engine.cache(), &cat);
    assert!(engine.cache().stats().entries > 0);

    for len in 0..bytes.len() {
        assert!(
            load_cache(&bytes[..len], None).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
    // The untruncated file still loads.
    assert!(load_cache(&bytes, None).is_ok());
}

#[test]
fn corrupted_payload_bytes_are_rejected_cleanly() {
    let (cat, load) = random_workload(4);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let bytes = save_cache(engine.cache(), &cat);

    // Flip one bit in a sweep of payload positions: the checksum must
    // catch every one of them.
    for pos in (20..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            matches!(load_cache(&bad, None), Err(PersistError::ChecksumMismatch)),
            "flip at {pos} was not caught"
        );
    }
}

#[test]
fn bad_magic_and_version_are_rejected() {
    let cat = Catalog::new();
    let engine = Engine::new();
    let bytes = save_cache(engine.cache(), &cat);

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 1;
    assert!(matches!(
        load_cache(&wrong_magic, None),
        Err(PersistError::BadMagic)
    ));

    let mut future_version = bytes.clone();
    future_version[8] = 0xFF;
    assert!(matches!(
        load_cache(&future_version, None),
        Err(PersistError::VersionMismatch { .. })
    ));

    assert!(matches!(load_cache(&[], None), Err(PersistError::BadMagic)));
}

#[test]
fn loading_into_a_bounded_cache_respects_the_bound() {
    let (cat, load) = random_workload(5);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let saved_entries = engine.cache().stats().entries;
    assert!(saved_entries >= 2);

    let bytes = save_cache(engine.cache(), &cat);
    let bounded = load_cache(&bytes, Some(1)).expect("load");
    let stats = bounded.stats();
    assert_eq!(stats.entries, 1);
    // Surplus entries are skipped during the load, not insert-then-evicted.
    assert_eq!(stats.evictions, 0);
    // The kept entry is the last of the sorted stream.
    let last_key = engine.cache().snapshot().last().unwrap().0;
    assert!(bounded.get(&last_key).is_some());
}

/// A file with an *older* version is rejected with an error that names
/// both versions and points at regeneration — persisted version-1 caches
/// were keyed by catalog declaration order and must not load silently.
#[test]
fn old_version_files_are_rejected_with_a_migration_hint() {
    // A plausible version-1 header: magic, version 1, bogus checksum.
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"VCAPCACH");
    v1.extend_from_slice(&1u32.to_le_bytes());
    v1.extend_from_slice(&0u64.to_le_bytes());
    v1.extend_from_slice(&0u64.to_le_bytes()); // empty v1 payload
    let err = match load_cache(&v1, None) {
        Ok(_) => panic!("version 1 must not load"),
        Err(e) => e,
    };
    match &err {
        PersistError::VersionMismatch { found, expected } => {
            assert_eq!((*found, *expected), (1, 2));
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("version 1"), "{msg}");
    assert!(msg.contains("version 2"), "{msg}");
    assert!(
        msg.contains("delete the file"),
        "no migration hint in: {msg}"
    );

    // Merging rejects version skew the same way, producing no output.
    let cat = Catalog::new();
    let good = save_cache(Engine::new().cache(), &cat);
    assert!(matches!(
        merge_cache_bytes(&[good, v1]),
        Err(PersistError::VersionMismatch { found: 1, .. })
    ));
}

/// Merging two workers' caches yields one file that warm-starts both
/// workloads; merging a file with itself replaces rather than duplicates.
#[test]
fn merged_caches_warm_start_both_workloads() {
    let (cat, load_a) = random_workload(0);
    // Same catalog content (same seed ⇒ same declarations), different
    // checks: reuse the generator with a different slice of the workload.
    let (_, load_b) = random_workload(0);
    let load_b = Workload {
        requests: load_b.requests.into_iter().take(2).collect(),
    };

    let worker_a = Engine::new();
    let a = worker_a.run_batch(&load_a, &cat, 1);
    let worker_b = Engine::new();
    let b = worker_b.run_batch(&load_b, &cat, 1);
    if a.results.iter().any(|r| r.is_err()) || b.results.iter().any(|r| r.is_err()) {
        return; // overflows are not cached; nothing to merge
    }

    let bytes_a = save_cache(worker_a.cache(), &cat);
    let bytes_b = save_cache(worker_b.cache(), &cat);
    let (merged, report) = merge_cache_bytes(&[bytes_a.clone(), bytes_b]).expect("merge");
    assert_eq!(report.inputs, 2);
    assert_eq!(report.entries_out, report.entries_in - report.replaced);

    let third = Engine::from_config(
        EngineConfig::new().cache(load_cache(&merged, None).expect("merged cache loads")),
    )
    .unwrap();
    let warm_a = third.run_batch(&load_a, &cat, 1);
    let warm_b = third.run_batch(&load_b, &cat, 1);
    assert_eq!(warm_a.executed + warm_b.executed, 0, "merged cache is warm");
    assert_eq!(signature(&warm_a), signature(&a));
    assert_eq!(signature(&warm_b), signature(&b));

    // Self-merge: every colliding key replaces, nothing duplicates.
    let (self_merged, report) =
        merge_cache_bytes(&[bytes_a.clone(), bytes_a.clone()]).expect("self merge");
    assert_eq!(report.entries_out * 2, report.entries_in);
    assert_eq!(report.replaced, report.entries_out);
    // And the self-merge is byte-identical to a compaction of the single
    // file (same entries, same canonical layout).
    let (compacted, _) = compact_cache_bytes(&bytes_a, None).expect("compact");
    assert_eq!(self_merged, compacted);
}

/// Corrupt or truncated merge inputs are rejected before any output
/// exists, and the atomic writer never clobbers the previous file on the
/// way to a failure.
#[test]
fn corrupt_merge_inputs_cannot_poison_an_output_file() {
    let (cat, load) = random_workload(6);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let good = save_cache(engine.cache(), &cat);

    let mut corrupt = good.clone();
    let flip = corrupt.len() - 9;
    corrupt[flip] ^= 0x10;
    assert!(matches!(
        merge_cache_bytes(&[good.clone(), corrupt]),
        Err(PersistError::ChecksumMismatch)
    ));
    let truncated = good[..good.len() - 3].to_vec();
    assert!(merge_cache_bytes(&[truncated]).is_err());

    // The CLI-level contract: an output file holding a previous good
    // merge survives a failed follow-up byte-for-byte, because nothing is
    // ever written unless every input parsed. Simulate the sequence.
    let path = std::env::temp_dir().join(format!("viewcap-merge-{}.vcapcache", std::process::id()));
    let (merged, _) = merge_cache_bytes(std::slice::from_ref(&good)).expect("merge");
    write_bytes_atomic(&path, &merged).expect("first write");
    // (failed merge here — no write happens by construction)
    assert_eq!(std::fs::read(&path).expect("file intact"), merged);
    let _ = std::fs::remove_file(&path);
}

/// Compaction preserves content, is idempotent, and applies the same
/// keep-the-tail bound as a bounded load.
#[test]
fn compaction_preserves_content_and_bounds() {
    let (cat, load) = random_workload(3);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let bytes = save_cache(engine.cache(), &cat);
    let entries = engine.cache().stats().entries;
    assert!(entries >= 2);

    let (compacted, report) = compact_cache_bytes(&bytes, None).expect("compact");
    assert_eq!((report.entries_in, report.entries_out), (entries, entries));
    let (twice, _) = compact_cache_bytes(&compacted, None).expect("recompact");
    assert_eq!(compacted, twice, "compaction is idempotent");

    // Content round-trips: the compacted file warm-starts the workload.
    let warm =
        Engine::from_config(EngineConfig::new().cache(load_cache(&compacted, None).expect("load")))
            .unwrap();
    assert_eq!(warm.run_batch(&load, &cat, 1).executed, 0);

    // Bounded: keep only the last entry of the sorted stream.
    let (bounded, report) = compact_cache_bytes(&bytes, Some(1)).expect("bounded compact");
    assert_eq!(report.entries_out, 1);
    let loaded = load_cache(&bounded, None).expect("load bounded");
    assert_eq!(loaded.stats().entries, 1);
    let last_key = engine.cache().snapshot().last().unwrap().0;
    assert!(loaded.get(&last_key).is_some());
}

/// Normalization verdicts (`Simplified` schemes, `Nonredundant` indices)
/// survive the save → load round trip, including translation of scheme
/// attribute ids into a catalog declaring the same relations in a
/// different order.
#[test]
fn normalization_verdicts_round_trip_across_declaration_orders() {
    let build = |flip: bool| {
        let mut cat = Catalog::new();
        if flip {
            cat.relation("S", &["C", "D"]).unwrap();
            cat.relation("R", &["C", "B", "A"]).unwrap();
        } else {
            cat.relation("R", &["A", "B", "C"]).unwrap();
            cat.relation("S", &["C", "D"]).unwrap();
        }
        let abcd = cat.scheme(&["A", "B", "C", "D"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let n1 = cat.fresh_relation("v1", abcd);
        let n2 = cat.fresh_relation("v2", ab);
        let q = |src: &str| Query::from_expr(viewcap_expr::parse_expr(src, &cat).unwrap(), &cat);
        let view = View::new(vec![(q("R * pi{C,D}(S)"), n1), (q("pi{A,B}(R)"), n2)], &cat).unwrap();
        (cat, view)
    };

    let (cat, view) = build(false);
    let engine = Engine::new();
    let simplified = engine.simplify(&view, &cat).unwrap();
    let kept = engine.nonredundant(&view, &cat).unwrap();
    assert!(!simplified.from_cache && !kept.from_cache);
    let bytes = save_cache(engine.cache(), &cat);

    // Same catalog: both verdicts are warm hits with identical payloads.
    let warm =
        Engine::from_config(EngineConfig::new().cache(load_cache(&bytes, None).expect("load")))
            .unwrap();
    let s = warm.simplify(&view, &cat).unwrap();
    let k = warm.nonredundant(&view, &cat).unwrap();
    assert!(s.from_cache, "simplify must warm-hit");
    assert!(k.from_cache, "nonredundant must warm-hit");
    assert_eq!(
        format!("{:?}", s.verdict),
        format!("{:?}", simplified.verdict)
    );
    assert_eq!(format!("{:?}", k.verdict), format!("{:?}", kept.verdict));

    // Reordered declarations: fingerprints agree, and the foreign entry's
    // schemes translate into the flipped catalog's attribute ids — the
    // rendered TRSs must match the cold run's.
    let (flipped_cat, flipped_view) = build(true);
    let foreign =
        Engine::from_config(EngineConfig::new().cache(load_cache(&bytes, None).expect("load")))
            .unwrap();
    let s2 = foreign.simplify(&flipped_view, &flipped_cat).unwrap();
    assert!(s2.from_cache, "flipped catalog must still warm-hit");
    let render = |d: &viewcap_engine::Decision, cat: &Catalog| match &*d.verdict {
        viewcap_engine::Verdict::Simplified(schemes) => schemes
            .iter()
            .map(|s| {
                let mut names: Vec<&str> = s.iter().map(|a| cat.attr_name(a)).collect();
                names.sort_unstable();
                names.join(",")
            })
            .collect::<Vec<_>>(),
        other => panic!("expected Simplified, got {other:?}"),
    };
    assert_eq!(render(&s2, &flipped_cat), render(&simplified, &cat));
    let k2 = foreign.nonredundant(&flipped_view, &flipped_cat).unwrap();
    assert!(k2.from_cache);
    assert_eq!(format!("{:?}", k2.verdict), format!("{:?}", kept.verdict));
}

/// Capacity-1 caches still answer every check correctly — only slower —
/// and the hit/miss/eviction counters stay exact under eviction.
#[test]
fn capacity_one_engine_is_correct_and_exactly_counted() {
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let name = cat.fresh_relation("V", ab);
    let q = |src: &str| Query::from_expr(viewcap_expr::parse_expr(src, &cat).unwrap(), &cat);
    let view = View::new(vec![(q("pi{A,B}(R)"), name)], &cat).unwrap();
    let check = |src: &str| Check::Member {
        view: view.clone(),
        goal: q(src),
    };
    let (c1, c2) = (check("pi{A}(R)"), check("pi{B}(R)"));

    let unbounded = Engine::new();
    let tiny =
        Engine::from_config(EngineConfig::new().cache(VerdictCache::bounded(Some(1)))).unwrap();

    // c1 (miss) — c2 (miss, evicts c1) — c1 (miss again!) — c1 (hit).
    for (i, c) in [&c1, &c2, &c1, &c1].into_iter().enumerate() {
        let a = tiny.decide(c, &cat).unwrap();
        let b = unbounded.decide(c, &cat).unwrap();
        assert_eq!(
            a.verdict.is_yes(),
            b.verdict.is_yes(),
            "step {i}: bounded cache changed an answer"
        );
    }
    let stats = tiny.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.evictions, stats.entries),
        (1, 3, 2, 1),
        "exact counters under eviction"
    );

    // The unbounded engine saw the same questions with no evictions.
    let free = unbounded.cache_stats();
    assert_eq!((free.hits, free.misses, free.evictions), (2, 2, 0));
}

/// A batch workload through a capacity-1 engine matches the unbounded
/// engine's verdicts, and the stats identity `hits + misses = lookups`
/// holds exactly.
#[test]
fn capacity_one_batches_match_unbounded_batches() {
    for seed in 0..4u64 {
        let (cat, load) = random_workload(seed);
        let tiny =
            Engine::from_config(EngineConfig::new().cache(VerdictCache::bounded(Some(1)))).unwrap();
        let free = Engine::new();
        let a = tiny.run_batch(&load, &cat, 2);
        let b = free.run_batch(&load, &cat, 2);
        assert_eq!(signature(&a), signature(&b), "seed {seed}");

        let stats = tiny.cache_stats();
        // One lookup per distinct class per batch.
        assert_eq!(stats.hits + stats.misses, a.distinct as u64);
        assert!(stats.entries <= 1);
    }
}
