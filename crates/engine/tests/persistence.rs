//! Verdict-cache persistence and eviction:
//!
//! * save → load round trips warm-hit every fingerprint, witnesses intact;
//! * corrupted / truncated / version-mismatched files are rejected with an
//!   error, never a panic;
//! * bounded caches stay correct (only slower), with exact hit/miss/
//!   eviction counters.

use rand::rngs::StdRng;
use rand::SeedableRng;
use viewcap_base::Catalog;
use viewcap_core::{Query, SearchBudget, View};
use viewcap_engine::{
    load_cache, load_cache_from_path, save_cache, save_cache_to_path, BatchOutcome, Check, Engine,
    PersistError, VerdictCache, Workload,
};
use viewcap_gen::{random_query, random_view, random_world, WorldSpec};

/// A seeded mixed workload (as in the determinism suite, but smaller).
fn random_workload(seed: u64) -> (Catalog, Workload) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = WorldSpec {
        attrs: 4,
        relations: 2,
        min_arity: 1,
        max_arity: 2,
    };
    let (mut cat, rels) = random_world(&mut rng, &spec);
    let views: Vec<View> = (0..2)
        .map(|_| random_view(&mut rng, &mut cat, &rels, 2, 2))
        .collect();
    let mut load = Workload::new();
    load.push(
        "equivalent",
        Check::Equivalent {
            left: views[0].clone(),
            right: views[1].clone(),
        },
    );
    load.push(
        "dominates",
        Check::Dominates {
            dominator: views[0].clone(),
            dominated: views[1].clone(),
        },
    );
    for (i, v) in views.iter().enumerate() {
        load.push(
            format!("member {i}"),
            Check::Member {
                view: v.clone(),
                goal: random_query(&mut rng, &cat, &rels, 2),
            },
        );
    }
    (cat, load)
}

fn signature(outcome: &BatchOutcome) -> Vec<Result<(bool, Option<usize>), String>> {
    outcome
        .results
        .iter()
        .map(|r| {
            r.as_ref()
                .map(|d| (d.verdict.is_yes(), d.verdict.witness_atoms()))
                .map_err(|e| e.to_string())
        })
        .collect()
}

#[test]
fn round_trip_warm_hits_every_fingerprint() {
    for seed in 0..6u64 {
        let (cat, load) = random_workload(seed);
        let engine = Engine::new();
        let cold = engine.run_batch(&load, &cat, 2);
        if cold.results.iter().any(|r| r.is_err()) {
            continue; // overflows are not cached; nothing to round-trip
        }

        let bytes = save_cache(engine.cache());
        let loaded = load_cache(&bytes, None).expect("round trip");

        // Every saved fingerprint is present after the reload...
        for (key, entry) in engine.cache().snapshot() {
            let got = loaded.get(&key).expect("fingerprint survives the trip");
            assert_eq!(got.verdict.is_yes(), entry.verdict.is_yes());
            assert_eq!(got.verdict.witness_atoms(), entry.verdict.witness_atoms());
            assert_eq!(got.left_query_fps, entry.left_query_fps);
        }

        // ...and a fresh engine over the loaded cache computes nothing.
        let warm_engine = Engine::with_cache(SearchBudget::default(), loaded);
        let warm = warm_engine.run_batch(&load, &cat, 2);
        assert_eq!(warm.executed, 0, "seed {seed}: warm run recomputed");
        assert_eq!(warm.cache_hits, warm.distinct);
        assert_eq!(signature(&cold), signature(&warm));
        for d in warm.results.iter().flatten() {
            assert!(d.from_cache);
        }
    }
}

#[test]
fn saved_files_are_deterministic() {
    let (cat, load) = random_workload(3);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let a = save_cache(engine.cache());
    // Re-running the same (now warm) workload must not change the bytes.
    engine.run_batch(&load, &cat, 4);
    let b = save_cache(engine.cache());
    assert_eq!(a, b);
}

#[test]
fn file_round_trip_via_path() {
    let (cat, load) = random_workload(1);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);

    let path = std::env::temp_dir().join(format!("viewcap-cache-{}.bin", std::process::id()));
    save_cache_to_path(engine.cache(), &path).expect("save");
    let loaded = load_cache_from_path(&path, None).expect("load");
    assert_eq!(loaded.stats().entries, engine.cache().stats().entries);
    let _ = std::fs::remove_file(&path);

    // A missing file is an I/O error, not a panic.
    assert!(matches!(
        load_cache_from_path(&path, None),
        Err(PersistError::Io(_))
    ));
}

#[test]
fn every_truncation_is_rejected_cleanly() {
    let (cat, load) = random_workload(2);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let bytes = save_cache(engine.cache());
    assert!(engine.cache().stats().entries > 0);

    for len in 0..bytes.len() {
        assert!(
            load_cache(&bytes[..len], None).is_err(),
            "truncation to {len} bytes was accepted"
        );
    }
    // The untruncated file still loads.
    assert!(load_cache(&bytes, None).is_ok());
}

#[test]
fn corrupted_payload_bytes_are_rejected_cleanly() {
    let (cat, load) = random_workload(4);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let bytes = save_cache(engine.cache());

    // Flip one bit in a sweep of payload positions: the checksum must
    // catch every one of them.
    for pos in (20..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            matches!(load_cache(&bad, None), Err(PersistError::ChecksumMismatch)),
            "flip at {pos} was not caught"
        );
    }
}

#[test]
fn bad_magic_and_version_are_rejected() {
    let engine = Engine::new();
    let bytes = save_cache(engine.cache());

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 1;
    assert!(matches!(
        load_cache(&wrong_magic, None),
        Err(PersistError::BadMagic)
    ));

    let mut future_version = bytes.clone();
    future_version[8] = 0xFF;
    assert!(matches!(
        load_cache(&future_version, None),
        Err(PersistError::VersionMismatch { .. })
    ));

    assert!(matches!(load_cache(&[], None), Err(PersistError::BadMagic)));
}

#[test]
fn loading_into_a_bounded_cache_respects_the_bound() {
    let (cat, load) = random_workload(5);
    let engine = Engine::new();
    engine.run_batch(&load, &cat, 1);
    let saved_entries = engine.cache().stats().entries;
    assert!(saved_entries >= 2);

    let bytes = save_cache(engine.cache());
    let bounded = load_cache(&bytes, Some(1)).expect("load");
    let stats = bounded.stats();
    assert_eq!(stats.entries, 1);
    // Surplus entries are skipped during the load, not insert-then-evicted.
    assert_eq!(stats.evictions, 0);
    // The kept entry is the last of the sorted stream.
    let last_key = engine.cache().snapshot().last().unwrap().0;
    assert!(bounded.get(&last_key).is_some());
}

/// Capacity-1 caches still answer every check correctly — only slower —
/// and the hit/miss/eviction counters stay exact under eviction.
#[test]
fn capacity_one_engine_is_correct_and_exactly_counted() {
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let name = cat.fresh_relation("V", ab);
    let q = |src: &str| Query::from_expr(viewcap_expr::parse_expr(src, &cat).unwrap(), &cat);
    let view = View::new(vec![(q("pi{A,B}(R)"), name)], &cat).unwrap();
    let check = |src: &str| Check::Member {
        view: view.clone(),
        goal: q(src),
    };
    let (c1, c2) = (check("pi{A}(R)"), check("pi{B}(R)"));

    let unbounded = Engine::new();
    let tiny = Engine::with_cache(SearchBudget::default(), VerdictCache::bounded(Some(1)));

    // c1 (miss) — c2 (miss, evicts c1) — c1 (miss again!) — c1 (hit).
    for (i, c) in [&c1, &c2, &c1, &c1].into_iter().enumerate() {
        let a = tiny.decide(c, &cat).unwrap();
        let b = unbounded.decide(c, &cat).unwrap();
        assert_eq!(
            a.verdict.is_yes(),
            b.verdict.is_yes(),
            "step {i}: bounded cache changed an answer"
        );
    }
    let stats = tiny.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.evictions, stats.entries),
        (1, 3, 2, 1),
        "exact counters under eviction"
    );

    // The unbounded engine saw the same questions with no evictions.
    let free = unbounded.cache_stats();
    assert_eq!((free.hits, free.misses, free.evictions), (2, 2, 0));
}

/// A batch workload through a capacity-1 engine matches the unbounded
/// engine's verdicts, and the stats identity `hits + misses = lookups`
/// holds exactly.
#[test]
fn capacity_one_batches_match_unbounded_batches() {
    for seed in 0..4u64 {
        let (cat, load) = random_workload(seed);
        let tiny = Engine::with_cache(SearchBudget::default(), VerdictCache::bounded(Some(1)));
        let free = Engine::new();
        let a = tiny.run_batch(&load, &cat, 2);
        let b = free.run_batch(&load, &cat, 2);
        assert_eq!(signature(&a), signature(&b), "seed {seed}");

        let stats = tiny.cache_stats();
        // One lookup per distinct class per batch.
        assert_eq!(stats.hits + stats.misses, a.distinct as u64);
        assert!(stats.entries <= 1);
    }
}
