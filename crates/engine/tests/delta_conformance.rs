//! Differential conformance: incremental re-checking must be
//! indistinguishable from cold full re-runs.
//!
//! For randomized catalogs and randomized single-view edits
//! (replace / add / remove one defining query), every [`DeltaWorkload`]
//! run is rendered to a canonical per-request string and compared
//! byte-for-byte against a fresh engine deciding the same standing
//! workload from scratch. Runs cover `jobs = 1` and `jobs = 4` (override
//! with `VIEWCAP_CONFORMANCE_JOBS`); seed count via
//! `VIEWCAP_CONFORMANCE_SEEDS` (default 50 seeds x 4 edits = 200 edit
//! sequences).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use viewcap_base::Catalog;
use viewcap_core::{Query, View};
use viewcap_engine::{Check, Decision, DeltaWorkload, Engine, Request, Workload};
use viewcap_gen::{random_query, random_view, random_world, WorldSpec};
use viewcap_template::SearchOverflow;

/// Canonical rendering of one decided request: everything observable —
/// answer, witness size, and the witness's labels in the requester's
/// vocabulary. Two runs conform iff these strings are byte-identical.
fn render(
    request: &Request,
    result: &Result<Decision, SearchOverflow>,
    catalog: &Catalog,
) -> String {
    let d = match result {
        Ok(d) => d,
        Err(_) => return format!("{}: OVERFLOW", request.label),
    };
    let base = format!(
        "{}: yes={} atoms={:?}",
        request.label,
        d.verdict.is_yes(),
        d.verdict.witness_atoms()
    );
    match &request.check {
        Check::Member { view, .. } if d.verdict.is_yes() => {
            let names: Vec<&str> = d
                .member_witness_names(view, catalog)
                .expect("witness lines up with the requesting view")
                .into_iter()
                .map(|r| catalog.rel_name(r))
                .collect();
            format!("{base} via={names:?}")
        }
        _ => base,
    }
}

fn render_delta(
    delta: &DeltaWorkload,
    results: &[Result<Decision, SearchOverflow>],
    catalog: &Catalog,
) -> Vec<String> {
    delta
        .requests()
        .zip(results)
        .map(|(request, result)| render(request, result, catalog))
        .collect()
}

fn render_batch(
    workload: &Workload,
    results: &[Result<Decision, SearchOverflow>],
    catalog: &Catalog,
) -> Vec<String> {
    workload
        .requests
        .iter()
        .zip(results)
        .map(|(request, result)| render(request, result, catalog))
        .collect()
}

/// The standing workload: all ordered cross-view equivalence and dominance
/// pairs plus one membership probe per view.
fn standing_workload(
    rng: &mut StdRng,
    seed: u64,
) -> (Catalog, Vec<viewcap_base::RelId>, Vec<View>, DeltaWorkload) {
    let spec = WorldSpec {
        attrs: 4,
        relations: 2,
        min_arity: 1,
        max_arity: 2,
    };
    let (mut cat, rels) = random_world(rng, &spec);
    let views: Vec<View> = (0..3)
        .map(|_| random_view(rng, &mut cat, &rels, 1 + (seed as usize) % 2, 2))
        .collect();

    let mut delta = DeltaWorkload::new();
    for (i, v) in views.iter().enumerate() {
        for (j, w) in views.iter().enumerate() {
            if i != j {
                delta.push(
                    format!("equivalent {i} {j}"),
                    Check::Equivalent {
                        left: v.clone(),
                        right: w.clone(),
                    },
                    &cat,
                );
                delta.push(
                    format!("dominates {i} {j}"),
                    Check::Dominates {
                        dominator: v.clone(),
                        dominated: w.clone(),
                    },
                    &cat,
                );
            }
        }
        delta.push(
            format!("member {i}"),
            Check::Member {
                view: v.clone(),
                goal: random_query(rng, &cat, &rels, 2),
            },
            &cat,
        );
    }
    (cat, rels, views, delta)
}

/// A random single-view edit: replace one defining query, add one, or
/// remove one (when more than one remains). New pairs mint fresh view
/// relations, so the catalog grows mid-sequence — exactly the situation
/// that used to pin stale catalog snapshots inside cached witnesses.
fn edited(rng: &mut StdRng, cat: &mut Catalog, rels: &[viewcap_base::RelId], old: &View) -> View {
    let mut pairs: Vec<_> = old.pairs().to_vec();
    let fresh_pair = |rng: &mut StdRng, cat: &mut Catalog| {
        let q: Query = random_query(rng, cat, rels, 2);
        let name = cat.fresh_relation("e", q.trs());
        (q, name)
    };
    match rng.gen_range(0..4) {
        0 if pairs.len() > 1 => {
            // Remove one defining query.
            let i = rng.gen_range(0..pairs.len());
            pairs.remove(i);
        }
        1 => {
            // Add one.
            let p = fresh_pair(rng, cat);
            pairs.push(p);
        }
        _ => {
            // Replace one.
            let i = rng.gen_range(0..pairs.len());
            pairs[i] = fresh_pair(rng, cat);
        }
    }
    View::new(pairs, cat).expect("edited pairs are well-typed")
}

fn jobs_under_test() -> Vec<usize> {
    match std::env::var("VIEWCAP_CONFORMANCE_JOBS") {
        Ok(v) => vec![v.parse().expect("VIEWCAP_CONFORMANCE_JOBS is a number")],
        Err(_) => vec![1, 4],
    }
}

fn seeds_under_test() -> u64 {
    std::env::var("VIEWCAP_CONFORMANCE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

const EDITS_PER_SEED: usize = 4;

/// The conformance property: after every edit, incremental verdicts are
/// byte-identical to a cold full re-run, with measured reuse on every
/// unaffected check.
#[test]
fn delta_runs_conform_to_cold_full_runs() {
    for jobs in jobs_under_test() {
        for seed in 0..seeds_under_test() {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut cat, rels, mut views, mut delta) = standing_workload(&mut rng, seed);

            let engine = Engine::new();
            let first = delta.run(&engine, &cat, jobs);
            assert_eq!(
                (first.reused, first.recomputed),
                (0, delta.len()),
                "first run computes everything"
            );

            for round in 0..EDITS_PER_SEED {
                let vi = rng.gen_range(0..views.len());
                let old = views[vi].clone();
                let new_view = edited(&mut rng, &mut cat, &rels, &old);
                let invalidated = delta.replace_view(&old, &new_view, &cat);
                views[vi] = new_view;

                let outcome = delta.run(&engine, &cat, jobs);

                // Cold baseline: a fresh engine deciding the same standing
                // workload from nothing.
                let workload = delta.to_workload();
                let cold = Engine::new().run_batch(&workload, &cat, jobs);

                assert_eq!(
                    render_delta(&delta, &outcome.results, &cat),
                    render_batch(&workload, &cold.results, &cat),
                    "seed {seed} round {round} jobs {jobs}: incremental != cold"
                );

                // Only invalidated requests were re-posed, and the checks
                // that never touched the edited view were reused.
                assert_eq!(outcome.recomputed, invalidated);
                assert!(
                    outcome.reused > 0,
                    "seed {seed} round {round}: no reuse on unaffected checks"
                );
            }
        }
    }
}

/// Removing a view drops exactly the standing checks that touch it, and
/// the remainder still conforms to a cold run.
#[test]
fn removed_views_drop_their_checks_and_the_rest_conforms() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let (cat, _rels, views, mut delta) = standing_workload(&mut rng, seed);
        let engine = Engine::new();
        delta.run(&engine, &cat, 1);

        let before = delta.len();
        let removed = delta.remove_view(&views[0], &cat);
        // View 0 touches: 2 kinds x 2 ordered pairs x 2 partners = 8 checks
        // plus its membership probe (unless fingerprints collide, in which
        // case more were posed against an identical view and also dropped).
        assert!(removed >= 9, "seed {seed}: removed only {removed}");
        assert_eq!(delta.len(), before - removed);

        let outcome = delta.run(&engine, &cat, 1);
        assert_eq!(outcome.recomputed, 0, "survivors were all retained");
        let workload = delta.to_workload();
        let cold = Engine::new().run_batch(&workload, &cat, 1);
        assert_eq!(
            render_delta(&delta, &outcome.results, &cat),
            render_batch(&workload, &cold.results, &cat),
        );
    }
}

/// Regression (ROADMAP hot-path note): cached witnesses no longer pin a
/// catalog snapshot, so a verdict computed early renders correctly for a
/// view defined after the catalog has grown.
#[test]
fn cached_witness_renders_after_the_catalog_grows() {
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let first = cat.fresh_relation("First", ab.clone());
    let q = |cat: &Catalog, src: &str| {
        Query::from_expr(viewcap_expr::parse_expr(src, cat).unwrap(), cat)
    };
    let v = View::new(vec![(q(&cat, "pi{A,B}(R)"), first)], &cat).unwrap();

    let engine = Engine::new();
    let goal = q(&cat, "pi{A}(R)");
    let d1 = engine
        .decide(
            &Check::Member {
                view: v.clone(),
                goal: goal.clone(),
            },
            &cat,
        )
        .unwrap();
    assert!(!d1.from_cache && d1.verdict.is_yes());

    // Grow the catalog well past the snapshot the witness was computed in.
    for i in 0..10 {
        cat.relation(&format!("Later{i}"), &["A", "B"]).unwrap();
    }
    let second = cat.fresh_relation("Second", ab);
    let w = View::new(vec![(q(&cat, "pi{A,B}(R)"), second)], &cat).unwrap();

    let d2 = engine
        .decide(
            &Check::Member {
                view: w.clone(),
                goal,
            },
            &cat,
        )
        .unwrap();
    assert!(d2.from_cache, "equal fingerprints share the verdict");
    let names = d2.member_witness_names(&w, &cat).unwrap();
    assert_eq!(names, vec![second], "witness renders in W's vocabulary");
}
