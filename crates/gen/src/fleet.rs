//! Fleet workload family: catalogs with hundreds of views plus
//! zipf-distributed request streams, emitted as `.vcap` scenario text.
//!
//! A *fleet* catalog models many tenants sharing a few base relations:
//! each view projects one base relation, and requests concentrate on a
//! zipf-popular head of the view population — the regime where the
//! engine's verdict cache and shared candidate spaces pay off. Streams mix
//! `batch` checks, `edit` blocks, `recheck`, and the two first-class
//! scenario workloads this family was built to drive:
//!
//! * [`frontier_diff_stream`] — capacity-frontier diffing: version pairs
//!   diffed repeatedly with `diff`, so each pair's shared
//!   `ClosureContext`s amortize across the stream;
//! * [`txn_stream`] — multi-edit transactions: `txn { }` blocks batch
//!   several edits and invalidate the standing workload once, followed by
//!   `recheck`.
//!
//! Everything is deterministic given a seed. The zipf sampler is
//! hand-rolled (CDF + binary search) — the `rand` shim only provides
//! integer-uniform ranges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Shape of a fleet workload.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Number of views in the catalog (the fleet size).
    pub views: usize,
    /// Number of shared base relations the views project.
    pub base_rels: usize,
    /// Number of stream events (each a batch, edit, recheck, diff, or txn).
    pub events: usize,
    /// Zipf skew of the request popularity over views (higher = more
    /// concentrated; 0 = uniform).
    pub zipf_s: f64,
    /// Checks per `batch` event.
    pub batch_size: usize,
    /// Atom bound handed to `diff` commands.
    pub atom_bound: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            views: 200,
            base_rels: 8,
            events: 200,
            zipf_s: 1.1,
            batch_size: 8,
            atom_bound: 2,
        }
    }
}

/// A generated `.vcap` scenario plus its command census.
#[derive(Clone, Debug)]
pub struct FleetScenario {
    /// The scenario source text.
    pub source: String,
    /// Views declared in the prologue.
    pub views: usize,
    /// Total `check` commands, batch members included.
    pub checks: usize,
    /// `edit` blocks (txn members included).
    pub edits: usize,
    /// `recheck` commands.
    pub rechecks: usize,
    /// `diff` commands.
    pub diffs: usize,
    /// `txn` blocks.
    pub txns: usize,
}

/// Zipf sampler over ranks `0..n` (rank 0 most popular): `p(i) ∝
/// 1/(i+1)^s`, drawn by binary search on the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.gen_range(0u64..u64::MAX) as f64 / u64::MAX as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The base relation index view `j` projects.
fn base_of(spec: &FleetSpec, j: usize) -> usize {
    j % spec.base_rels
}

/// The catalog prologue: `base_rels` three-attribute relations and
/// `views` single-pair views projecting them. View `Vj` starts as
/// `Pj = pi{Ab,Bb}(Rb)` over its base relation `b`.
fn prologue(spec: &FleetSpec, out: &mut String) {
    for b in 0..spec.base_rels {
        let _ = writeln!(out, "rel R{b}(A{b}, B{b}, C{b})");
    }
    for j in 0..spec.views {
        let b = base_of(spec, j);
        let _ = writeln!(out, "view V{j} {{\n  P{j} = pi{{A{b},B{b}}}(R{b})\n}}");
    }
}

/// Goal expression `g` against view `j`'s base relation. The five goal
/// shapes cover YES answers of construction sizes 1–2 and one NO (the full
/// base relation is never in a projection's capacity).
fn goal(spec: &FleetSpec, j: usize, g: usize) -> String {
    let b = base_of(spec, j);
    match g % 5 {
        0 => format!("pi{{A{b}}}(R{b})"),
        1 => format!("pi{{B{b}}}(R{b})"),
        2 => format!("pi{{A{b},B{b}}}(R{b})"),
        3 => format!("pi{{A{b}}}(R{b}) * pi{{B{b}}}(R{b})"),
        _ => format!("R{b}"),
    }
}

/// The two definitions view `j` toggles between under edits: its original
/// projection and a narrower one. A toggled-back view recovers its
/// original fingerprint, so the verdict cache answers the re-check.
fn edit_body(spec: &FleetSpec, j: usize, variant: usize) -> String {
    let b = base_of(spec, j);
    if variant.is_multiple_of(2) {
        format!("  P{j} = pi{{A{b},B{b}}}(R{b})\n")
    } else {
        format!("  P{j} = pi{{A{b}}}(R{b})\n")
    }
}

/// The mixed fleet stream: zipf-popular `batch` checks interleaved with
/// view edits, `recheck`s, version diffs, and multi-edit `txn` blocks.
pub fn fleet_stream(seed: u64, spec: &FleetSpec) -> FleetScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(spec.views, spec.zipf_s);
    let mut out = String::new();
    prologue(spec, &mut out);
    let mut census = FleetScenario {
        source: String::new(),
        views: spec.views,
        checks: 0,
        edits: 0,
        rechecks: 0,
        diffs: 0,
        txns: 0,
    };
    // Edits toggle per-view variants; track them so each edit block is a
    // real change (editing a view to its current definition would
    // invalidate nothing).
    let mut variant = vec![0usize; spec.views];
    for _ in 0..spec.events {
        match rng.gen_range(0u32..10) {
            // 60% batches: the sustained-check workload.
            0..=5 => {
                out.push_str("batch {\n");
                for _ in 0..spec.batch_size {
                    let j = zipf.sample(&mut rng);
                    let g = rng.gen_range(0usize..5);
                    let _ = writeln!(out, "  check member V{j} {}", goal(spec, j, g));
                    census.checks += 1;
                }
                out.push_str("}\n");
            }
            // 20% single edits followed by an incremental recheck.
            6..=7 => {
                let j = zipf.sample(&mut rng);
                variant[j] += 1;
                let _ = write!(out, "edit V{j} {{\n{}}}\n", edit_body(spec, j, variant[j]));
                out.push_str("recheck\n");
                census.edits += 1;
                census.rechecks += 1;
            }
            // 10% version diffs between two fleet views.
            8 => {
                let a = zipf.sample(&mut rng);
                let b = zipf.sample(&mut rng);
                let _ = writeln!(out, "diff V{a} V{b} {}", spec.atom_bound);
                census.diffs += 1;
            }
            // 10% multi-edit transactions over distinct views.
            _ => {
                let mut picked = Vec::new();
                while picked.len() < 3.min(spec.views) {
                    let j = zipf.sample(&mut rng);
                    if !picked.contains(&j) {
                        picked.push(j);
                    }
                }
                out.push_str("txn {\n");
                for &j in &picked {
                    variant[j] += 1;
                    let _ = write!(
                        out,
                        "  edit V{j} {{\n  {}  }}\n",
                        edit_body(spec, j, variant[j])
                    );
                    census.edits += 1;
                }
                out.push_str("}\nrecheck\n");
                census.txns += 1;
                census.rechecks += 1;
            }
        }
    }
    census.source = out;
    census
}

/// The capacity-frontier diffing workload: `views/2` version pairs — each
/// a two-projection view `D{p}a` and its narrowed successor `D{p}b` — and
/// a zipf-distributed stream of `diff` requests over the pairs. Popular
/// pairs are re-diffed many times, exercising the per-pair shared
/// `ClosureContext` cache. A seed batch of member checks plus occasional
/// interleaved checks keep the engine's per-check latency histogram live,
/// so throughput harnesses can report p50/p99 for this stream too.
pub fn frontier_diff_stream(seed: u64, spec: &FleetSpec) -> FleetScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = (spec.views / 2).max(1);
    let zipf = Zipf::new(pairs, spec.zipf_s);
    let mut out = String::new();
    for b in 0..spec.base_rels {
        let _ = writeln!(out, "rel R{b}(A{b}, B{b}, C{b})");
    }
    for p in 0..pairs {
        let b = p % spec.base_rels;
        let _ = writeln!(
            out,
            "view D{p}a {{\n  L{p} = pi{{A{b},B{b}}}(R{b})\n  M{p} = pi{{B{b},C{b}}}(R{b})\n}}"
        );
        let _ = writeln!(out, "view D{p}b {{\n  N{p} = pi{{A{b},B{b}}}(R{b})\n}}");
    }
    let mut census = FleetScenario {
        source: String::new(),
        views: pairs * 2,
        checks: 0,
        edits: 0,
        rechecks: 0,
        diffs: 0,
        txns: 0,
    };
    // Seed batch: zipf-popular member checks against the `a` versions.
    out.push_str("batch {\n");
    for _ in 0..spec.batch_size.max(4) * 2 {
        let p = zipf.sample(&mut rng);
        let g = rng.gen_range(0usize..5);
        let _ = writeln!(out, "  check member D{p}a {}", goal(spec, p, g));
        census.checks += 1;
    }
    out.push_str("}\n");
    for _ in 0..spec.events {
        let p = zipf.sample(&mut rng);
        let _ = writeln!(out, "diff D{p}a D{p}b {}", spec.atom_bound);
        census.diffs += 1;
        // ~30% of diff events ride with a membership check on the same
        // popular pair, mixing decided verdicts into the diff stream.
        if rng.gen_range(0u32..10) < 3 {
            let g = rng.gen_range(0usize..5);
            let _ = writeln!(out, "check member D{p}a {}", goal(spec, p, g));
            census.checks += 1;
        }
    }
    census.source = out;
    census
}

/// The multi-edit transaction workload: a standing workload of zipf-chosen
/// member checks, then `txn` blocks batching several edits each, every one
/// followed by an incremental `recheck`.
pub fn txn_stream(seed: u64, spec: &FleetSpec) -> FleetScenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(spec.views, spec.zipf_s);
    let mut out = String::new();
    prologue(spec, &mut out);
    let mut census = FleetScenario {
        source: String::new(),
        views: spec.views,
        checks: 0,
        edits: 0,
        rechecks: 0,
        diffs: 0,
        txns: 0,
    };
    // Seed the standing workload.
    out.push_str("batch {\n");
    for _ in 0..spec.batch_size.max(4) * 4 {
        let j = zipf.sample(&mut rng);
        let g = rng.gen_range(0usize..5);
        let _ = writeln!(out, "  check member V{j} {}", goal(spec, j, g));
        census.checks += 1;
    }
    out.push_str("}\n");
    let mut variant = vec![0usize; spec.views];
    for _ in 0..spec.events {
        let mut picked = Vec::new();
        while picked.len() < 3.min(spec.views) {
            let j = zipf.sample(&mut rng);
            if !picked.contains(&j) {
                picked.push(j);
            }
        }
        out.push_str("txn {\n");
        for &j in &picked {
            variant[j] += 1;
            let _ = write!(
                out,
                "  edit V{j} {{\n  {}  }}\n",
                edit_body(spec, j, variant[j])
            );
            census.edits += 1;
        }
        out.push_str("}\nrecheck\n");
        census.txns += 1;
        census.rechecks += 1;
    }
    census.source = out;
    census
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetSpec {
        FleetSpec {
            views: 20,
            base_rels: 4,
            events: 30,
            batch_size: 4,
            ..FleetSpec::default()
        }
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            let r = zipf.sample(&mut rng);
            assert!(r < 100);
            counts[r] += 1;
        }
        // Rank 0 dominates the tail under s > 1.
        assert!(
            counts[0] > counts[50] * 5,
            "head {} tail {}",
            counts[0],
            counts[50]
        );
        assert!(counts[0] > 10_000 / 20);
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "uniform rank starved: {counts:?}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let spec = small();
        for gen in [fleet_stream, frontier_diff_stream, txn_stream] {
            let a = gen(42, &spec);
            let b = gen(42, &spec);
            assert_eq!(a.source, b.source);
            let c = gen(43, &spec);
            assert_ne!(a.source, c.source);
        }
    }

    #[test]
    fn fleet_stream_mixes_all_command_kinds() {
        let spec = FleetSpec {
            events: 200,
            ..small()
        };
        let s = fleet_stream(1, &spec);
        assert!(s.checks > 0 && s.edits > 0 && s.rechecks > 0);
        assert!(s.diffs > 0 && s.txns > 0);
        assert!(s.source.contains("txn {"));
        assert!(s.source.contains("diff V"));
        assert!(s.source.contains("batch {"));
    }

    #[test]
    fn named_streams_emit_their_workload() {
        let spec = small();
        let d = frontier_diff_stream(5, &spec);
        assert_eq!(d.diffs, spec.events);
        assert_eq!(d.views, (spec.views / 2) * 2);
        assert!(d.checks > 0, "diff stream carries no member checks");
        let t = txn_stream(5, &spec);
        assert_eq!(t.txns, spec.events);
        assert_eq!(t.rechecks, spec.events);
        assert!(t.checks > 0);
    }
}
