//! Structured workload families for the benchmark harness.
//!
//! * **Chain**: relations `R₀(A₀,A₁), R₁(A₁,A₂), …` — joins correlate
//!   neighbours; the template of the full chain join has one tuple per
//!   link. Sweeping the length scales homomorphism and evaluation costs.
//! * **Star**: a hub `H(A₁, …, A_n)` with spokes `Sᵢ(Aᵢ, Bᵢ)` — wide
//!   schemes stress scheme operations and projection enumeration.

use viewcap_base::{Catalog, RelId, Scheme};
use viewcap_expr::Expr;

/// A structured schema with its base relations.
#[derive(Clone, Debug)]
pub struct StructuredWorld {
    /// The catalog.
    pub catalog: Catalog,
    /// Base relation names, in family order.
    pub rels: Vec<RelId>,
}

/// Build the chain schema of `n` links.
pub fn chain_world(n: usize) -> StructuredWorld {
    assert!(n >= 1);
    let mut cat = Catalog::new();
    let attrs: Vec<_> = (0..=n).map(|i| cat.attr(&format!("A{i}"))).collect();
    let rels = (0..n)
        .map(|i| {
            let scheme = Scheme::new([attrs[i], attrs[i + 1]]).expect("two attrs");
            cat.add_relation(&format!("R{i}"), scheme).expect("fresh")
        })
        .collect();
    StructuredWorld { catalog: cat, rels }
}

/// The full chain join `R₀ ⋈ R₁ ⋈ ⋯`.
pub fn chain_join_expr(world: &StructuredWorld) -> Expr {
    Expr::join_all(world.rels.iter().map(|&r| Expr::rel(r)).collect())
}

/// Build the star schema with `spokes` spokes.
pub fn star_world(spokes: usize) -> StructuredWorld {
    assert!(spokes >= 1);
    let mut cat = Catalog::new();
    let hub_attrs: Vec<_> = (0..spokes).map(|i| cat.attr(&format!("A{i}"))).collect();
    let hub = cat
        .add_relation("Hub", Scheme::new(hub_attrs.clone()).expect("≥1"))
        .expect("fresh");
    let mut rels = vec![hub];
    for (i, &a) in hub_attrs.iter().enumerate() {
        let b = cat.attr(&format!("B{i}"));
        let scheme = Scheme::new([a, b]).expect("two attrs");
        rels.push(cat.add_relation(&format!("S{i}"), scheme).expect("fresh"));
    }
    StructuredWorld { catalog: cat, rels }
}

/// The star join `Hub ⋈ S₀ ⋈ S₁ ⋈ ⋯`.
pub fn star_join_expr(world: &StructuredWorld) -> Expr {
    Expr::join_all(world.rels.iter().map(|&r| Expr::rel(r)).collect())
}

/// Build the wide schema of `n` relations `T₀(K,V₀), T₁(K,V₁), …` — every
/// relation shares the key attribute `K` and owns one private attribute.
/// At `n ≈ 1000` this is the fleet-catalog shape: a template over the full
/// family has one tuple per relation *tag*, which is exactly the regime
/// where the byte-trie tuple index (per-tag buckets) beats a flat
/// every-pair scan by a factor of `n`.
pub fn wide_world(n: usize) -> StructuredWorld {
    assert!(n >= 1);
    let mut cat = Catalog::new();
    let key = cat.attr("K");
    let rels = (0..n)
        .map(|i| {
            let v = cat.attr(&format!("V{i}"));
            let scheme = Scheme::new([key, v]).expect("two attrs");
            cat.add_relation(&format!("T{i}"), scheme).expect("fresh")
        })
        .collect();
    StructuredWorld { catalog: cat, rels }
}

/// The wide join `T₀ ⋈ T₁ ⋈ ⋯` — one atom per relation, all correlated
/// through `K`.
pub fn wide_join_expr(world: &StructuredWorld) -> Expr {
    Expr::join_all(world.rels.iter().map(|&r| Expr::rel(r)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shapes() {
        let w = chain_world(4);
        assert_eq!(w.rels.len(), 4);
        let e = chain_join_expr(&w);
        assert_eq!(e.atom_count(), 4);
        assert_eq!(e.trs(&w.catalog).len(), 5);
    }

    #[test]
    fn star_shapes() {
        let w = star_world(3);
        assert_eq!(w.rels.len(), 4); // hub + 3 spokes
        let e = star_join_expr(&w);
        assert_eq!(e.trs(&w.catalog).len(), 6); // A0..A2, B0..B2
    }

    #[test]
    fn single_link_chain_is_an_atom() {
        let w = chain_world(1);
        let e = chain_join_expr(&w);
        assert_eq!(e.atom_count(), 1);
    }

    #[test]
    fn wide_shapes() {
        let w = wide_world(1000);
        assert_eq!(w.rels.len(), 1000);
        let e = wide_join_expr(&w);
        assert_eq!(e.atom_count(), 1000);
        assert_eq!(e.trs(&w.catalog).len(), 1001); // K plus V0..V999
    }
}
