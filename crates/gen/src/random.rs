//! Randomized generators (seeded, reproducible).

use rand::rngs::StdRng;
use rand::Rng;
use viewcap_base::{Catalog, Instantiation, RelId, Scheme, Symbol};
use viewcap_core::{Query, View};
use viewcap_expr::Expr;

/// Shape of a randomly generated schema.
#[derive(Clone, Debug)]
pub struct WorldSpec {
    /// Number of attributes in the universe.
    pub attrs: usize,
    /// Number of base relations.
    pub relations: usize,
    /// Minimum relation arity.
    pub min_arity: usize,
    /// Maximum relation arity.
    pub max_arity: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        WorldSpec {
            attrs: 4,
            relations: 3,
            min_arity: 1,
            max_arity: 3,
        }
    }
}

/// A generated schema: the catalog plus its base relation names.
pub fn random_world(rng: &mut StdRng, spec: &WorldSpec) -> (Catalog, Vec<RelId>) {
    assert!(spec.min_arity >= 1 && spec.min_arity <= spec.max_arity);
    assert!(spec.max_arity <= spec.attrs);
    let mut cat = Catalog::new();
    let attrs: Vec<_> = (0..spec.attrs)
        .map(|i| cat.attr(&format!("A{i}")))
        .collect();
    let mut rels = Vec::with_capacity(spec.relations);
    for r in 0..spec.relations {
        let arity = rng.gen_range(spec.min_arity..=spec.max_arity);
        // Sample `arity` distinct attributes.
        let mut pool: Vec<_> = attrs.clone();
        let mut chosen = Vec::with_capacity(arity);
        for _ in 0..arity {
            let i = rng.gen_range(0..pool.len());
            chosen.push(pool.swap_remove(i));
        }
        let scheme = Scheme::new(chosen).expect("arity ≥ 1");
        rels.push(
            cat.add_relation(&format!("R{r}"), scheme)
                .expect("fresh names"),
        );
    }
    (cat, rels)
}

/// A random project–join expression over the given relations with exactly
/// `atoms` relation-name occurrences.
pub fn random_expr(rng: &mut StdRng, catalog: &Catalog, rels: &[RelId], atoms: usize) -> Expr {
    assert!(atoms >= 1);
    if atoms == 1 {
        let base = Expr::rel(rels[rng.gen_range(0..rels.len())]);
        return maybe_project(rng, catalog, base);
    }
    // Split the atom budget between 2..=min(3, atoms) children.
    let parts = rng.gen_range(2..=atoms.min(3));
    let mut budgets = vec![1usize; parts];
    for _ in 0..(atoms - parts) {
        budgets[rng.gen_range(0..parts)] += 1;
    }
    let children: Vec<Expr> = budgets
        .into_iter()
        .map(|b| random_expr(rng, catalog, rels, b))
        .collect();
    maybe_project(rng, catalog, Expr::join(children).expect("parts ≥ 2"))
}

fn maybe_project(rng: &mut StdRng, catalog: &Catalog, e: Expr) -> Expr {
    let trs = e.trs(catalog);
    if trs.len() <= 1 || rng.gen_range(0..3) == 0 {
        return e;
    }
    // Keep a random nonempty subset.
    let keep: Vec<_> = trs.iter().filter(|_| rng.gen_range(0..2) == 0).collect();
    if keep.is_empty() || keep.len() == trs.len() {
        return e;
    }
    let x = Scheme::new(keep).expect("nonempty");
    Expr::project(e, x, catalog).expect("X ⊆ TRS")
}

/// A random query (expression + reduced template).
pub fn random_query(rng: &mut StdRng, catalog: &Catalog, rels: &[RelId], atoms: usize) -> Query {
    Query::from_expr(random_expr(rng, catalog, rels, atoms), catalog)
}

/// A random instantiation with `rows` tuples per relation drawn from
/// per-attribute domains of `domain` values.
pub fn random_instantiation(
    rng: &mut StdRng,
    catalog: &Catalog,
    rels: &[RelId],
    rows: usize,
    domain: u32,
) -> Instantiation {
    assert!(domain >= 1);
    let mut alpha = Instantiation::new();
    for &r in rels {
        let scheme = catalog.scheme_of(r).clone();
        let rows_iter = (0..rows).map(|_| {
            scheme
                .iter()
                .map(|a| Symbol::new(a, rng.gen_range(1..=domain)))
                .collect::<Vec<_>>()
        });
        // Collect first: insert_rows takes an iterator but rng is borrowed.
        let collected: Vec<_> = rows_iter.collect();
        alpha
            .insert_rows(r, collected, catalog)
            .expect("rows built from the scheme");
    }
    alpha
}

/// A random view of `n` defining queries, minting fresh view names.
pub fn random_view(
    rng: &mut StdRng,
    catalog: &mut Catalog,
    rels: &[RelId],
    n: usize,
    atoms_per_query: usize,
) -> View {
    let pairs: Vec<(Query, RelId)> = (0..n)
        .map(|_| {
            let q = random_query(rng, catalog, rels, atoms_per_query);
            let name = catalog.fresh_relation("v", q.trs());
            (q, name)
        })
        .collect();
    View::new(pairs, catalog).expect("generated pairs are well-typed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn world_generation_is_deterministic() {
        let spec = WorldSpec::default();
        let (c1, r1) = random_world(&mut StdRng::seed_from_u64(7), &spec);
        let (c2, r2) = random_world(&mut StdRng::seed_from_u64(7), &spec);
        assert_eq!(r1.len(), r2.len());
        for (&a, &b) in r1.iter().zip(&r2) {
            assert_eq!(c1.scheme_of(a), c2.scheme_of(b));
        }
    }

    #[test]
    fn expressions_respect_the_atom_budget() {
        let mut rng = StdRng::seed_from_u64(42);
        let (cat, rels) = random_world(&mut rng, &WorldSpec::default());
        for atoms in 1..=5 {
            for _ in 0..20 {
                let e = random_expr(&mut rng, &cat, &rels, atoms);
                assert_eq!(e.atom_count(), atoms);
                assert!(!e.trs(&cat).is_empty());
            }
        }
    }

    #[test]
    fn instantiations_fit_their_schemas() {
        let mut rng = StdRng::seed_from_u64(1);
        let (cat, rels) = random_world(&mut rng, &WorldSpec::default());
        let alpha = random_instantiation(&mut rng, &cat, &rels, 5, 3);
        for &r in &rels {
            assert!(alpha.get(r, &cat).len() <= 5);
        }
    }

    #[test]
    fn views_validate() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut cat, rels) = random_world(&mut rng, &WorldSpec::default());
        let v = random_view(&mut rng, &mut cat, &rels, 3, 2);
        assert_eq!(v.len(), 3);
    }
}
