//! # viewcap-gen
//!
//! Seeded workload generators for tests and benchmarks: random catalogs,
//! project–join expressions, instantiations, templates, and views, plus the
//! structured *chain* and *star* families the benchmark harness sweeps
//! over.
//!
//! Everything is deterministic given a seed (`StdRng::seed_from_u64`), so
//! failures reproduce and benchmarks are stable.

pub mod families;
pub mod fleet;
pub mod random;

pub use families::{
    chain_join_expr, chain_world, star_join_expr, star_world, wide_join_expr, wide_world,
    StructuredWorld,
};
pub use fleet::{fleet_stream, frontier_diff_stream, txn_stream, FleetScenario, FleetSpec, Zipf};
pub use random::{
    random_expr, random_instantiation, random_query, random_view, random_world, WorldSpec,
};
