//! Benchmark harness library (intentionally empty; see benches/).
