//! `viewcap-bench` — the repository's fixed benchmark suite.
//!
//! Runs three workloads and writes a machine-readable report
//! (`BENCH_PR4.json` by default):
//!
//! 1. **shared-goal batches** — a batch of membership checks against one
//!    view, decided twice: per-goal (a fresh `ClosureContext`, i.e. a fresh
//!    bounded enumeration, per goal — the pre-PR-4 behavior) and shared
//!    (one context probed per goal). Reports wall times, the summed
//!    `SearchStats::combos`, and the speedup.
//! 2. **engine batch** — the same checks through `Engine::run_batch`,
//!    reporting the context-pool reuse counters (`EnumStats`).
//! 3. **scenarios** — every `.vcap` file in `scenarios/`, timed end to end
//!    with cache and enumeration counters.
//!
//! A fourth suite, **cross-catalog warm start**, writes its own report
//! (`BENCH_PR5.json` by default, `--out-cross`): two workers' verdict
//! caches are merged and the merged file warm-starts the full workload
//! against a catalog declared in a *permuted* order — measuring the
//! fleet-style cold-vs-warm gap that content-addressed fingerprints make
//! possible.
//!
//! A fifth suite, **normalization** (`BENCH_PR6.json` by default,
//! `--out-norm`), measures the Section 4 pipeline: the `normal_form`
//! scenario cold (building the shared normalization context) versus warm
//! (both verdicts served from the engine's cache, byte-identical report),
//! plus a candidate-join microbench comparing the byte-trie tuple index
//! against a flat O(|src|·|dst|) scan.
//!
//! A sixth suite, **telemetry** (`BENCH_PR7.json` by default,
//! `--out-obs`), runs the batch workload plus the `normal_form` scenario
//! twice — telemetry disabled (the one-atomic-load fast path) and enabled
//! — reporting the wall-time overhead and the per-check / per-normalize
//! latency distribution (p50/p90/p99) read back from `viewcap-obs`'s
//! log-bucketed histograms.
//!
//! A seventh suite, **space persistence** (`BENCH_PR9.json` by default,
//! `--out-space`), prices the candidate-space snapshot layer: a
//! level-5-deep membership batch decided cold (fresh engine, fresh
//! cache, full bounded enumeration) versus cold-with-snapshot (fresh
//! engine and *fresh verdict cache*, but a persisted `SpaceLibrary`
//! hydrating every context — so the measured gap is purely
//! enumeration-rebuild vs snapshot-replay). The same library then
//! warm-starts the workload on a catalog declared in a permuted order,
//! asserting zero rebuilt levels and identical verdicts — the
//! content-addressed key plus declaration-order-canonical enumeration at
//! work. A thousand-relation candidate-join microbench (the `wide`
//! family) rides along, pitting the byte-trie tuple index's per-tag
//! buckets against a flat every-pair scan at fleet-catalog scale.
//!
//! An eighth suite, **throughput** (`BENCH_PR10.json` by default,
//! `--out-throughput`), replays the generated fleet streams — the mixed
//! zipf request stream, the capacity-frontier diffing workload, and the
//! multi-edit transaction workload — through a cold scenario engine at
//! `--jobs` 1/4/8, reporting sustained checks/sec plus the p50/p99
//! per-check latencies read back from the engine's `engine.check_ns`
//! histogram (no bench-side timing of individual checks).
//!
//! ```console
//! $ viewcap-bench               # full run: BENCH_PR4/PR5/PR6 .json
//! $ viewcap-bench --smoke       # 1 iteration + counter asserts
//! $ viewcap-bench --iters 5 --out /tmp/bench.json --out-cross /tmp/cross.json
//! ```
//!
//! `--smoke` is what CI runs: a single iteration whose reuse counters are
//! asserted to be live (nonzero, shared work strictly below per-goal
//! work, cross-catalog warm hits nonzero with zero recomputation, warm
//! normalization a pure cache hit, and the trie join examining strictly
//! fewer pairs than the flat scan); violations exit nonzero.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;
use viewcap::scenario::{run_scenario_with_engine, ScenarioOptions};
use viewcap_base::Catalog;
use viewcap_core::{ClosureContext, Query, SearchBudget, View};
use viewcap_engine::{Check, Engine, EngineConfig, Workload};
use viewcap_expr::parse_expr;

struct Config {
    iters: usize,
    smoke: bool,
    out: std::path::PathBuf,
    out_cross: std::path::PathBuf,
    out_norm: std::path::PathBuf,
    out_obs: std::path::PathBuf,
    out_space: std::path::PathBuf,
    out_throughput: std::path::PathBuf,
    scenarios_dir: std::path::PathBuf,
}

/// The fixed shared-goal workload: one view, many membership goals.
fn shared_goal_workload() -> (Catalog, View, Vec<(String, Query)>) {
    shared_goal_workload_ordered(false)
}

/// The same workload over a catalog declared in the natural or a permuted
/// order — identical *content* either way, so content-addressed
/// fingerprints (and persisted caches) must not see the difference.
fn shared_goal_workload_ordered(permuted: bool) -> (Catalog, View, Vec<(String, Query)>) {
    let mut cat = Catalog::new();
    if permuted {
        cat.relation("S", &["D", "C"]).unwrap();
        cat.relation("R", &["C", "B", "A"]).unwrap();
    } else {
        cat.relation("R", &["A", "B", "C"]).unwrap();
        cat.relation("S", &["C", "D"]).unwrap();
    }
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let bc = cat.scheme(&["B", "C"]).unwrap();
    let cd = cat.scheme(&["C", "D"]).unwrap();
    let v1 = cat.fresh_relation("v1", ab);
    let v2 = cat.fresh_relation("v2", bc);
    let v3 = cat.fresh_relation("v3", cd);
    let view = View::from_exprs(
        vec![
            (parse_expr("pi{A,B}(R)", &cat).unwrap(), v1),
            (parse_expr("pi{B,C}(R)", &cat).unwrap(), v2),
            (parse_expr("pi{C,D}(S)", &cat).unwrap(), v3),
        ],
        &cat,
    )
    .unwrap();
    // Mostly goals whose reduced templates have 3–4 atoms: each forces the
    // bounded enumeration up to that level, which is exactly the work the
    // shared space pays once instead of per goal. A few small goals ride
    // along for coverage.
    let goals = [
        // Members, bound 3–4.
        "pi{A}(R) * pi{B}(R) * pi{C}(R)",
        "pi{A}(R) * pi{B}(R) * pi{D}(S)",
        "pi{A}(R) * pi{C}(R) * pi{D}(S)",
        "pi{B}(R) * pi{C}(R) * pi{D}(S)",
        "pi{A,B}(R) * pi{C}(R) * pi{D}(S)",
        "pi{A}(R) * pi{B,C}(R) * pi{D}(S)",
        "pi{A}(R) * pi{B}(R) * pi{C,D}(S)",
        "pi{A}(R) * pi{B}(R) * pi{C}(R) * pi{D}(S)",
        "pi{A}(R) * pi{B}(R) * pi{C}(R) * pi{C,D}(S)",
        // Non-members, bound 2–4 (full enumeration up to the bound).
        "pi{A,C}(R) * pi{B}(R) * pi{D}(S)",
        "pi{A,D}(R * S) * pi{B}(R)",
        "pi{A,D}(R * S) * pi{B}(R) * pi{C}(R)",
        "R * pi{D}(S)",
        // Small members for coverage.
        "pi{A,B}(R)",
        "pi{A,C}(pi{A,B}(R) * pi{B,C}(R))",
        "pi{B,D}(pi{B,C}(R) * pi{C,D}(S))",
    ]
    .iter()
    .map(|src| {
        (
            (*src).to_owned(),
            Query::from_expr(parse_expr(src, &cat).unwrap(), &cat),
        )
    })
    .collect();
    (cat, view, goals)
}

struct SharedGoalReport {
    goals: usize,
    iters: usize,
    baseline_ms: f64,
    shared_ms: f64,
    speedup: f64,
    baseline_combos: u64,
    shared_combos: u64,
    verdicts: Vec<bool>,
}

fn bench_shared_goals(config: &Config) -> SharedGoalReport {
    let (cat, view, goals) = shared_goal_workload();
    let budget = SearchBudget::default();
    let queries: Vec<Query> = view.query_set().queries().to_vec();

    // Per-goal baseline: a fresh context (fresh enumeration) per goal.
    let mut baseline_combos = 0u64;
    let mut baseline_verdicts = Vec::new();
    let start = Instant::now();
    for _ in 0..config.iters {
        baseline_combos = 0;
        baseline_verdicts.clear();
        for (_, goal) in &goals {
            let mut context = ClosureContext::new(&queries, &cat, &budget);
            let verdict = context.contains(goal).expect("default budget suffices");
            baseline_verdicts.push(verdict.is_some());
            baseline_combos += context.search_stats().combos;
        }
    }
    let baseline_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    // Shared: one context, one enumeration, probed per goal.
    let mut shared_combos = 0u64;
    let mut shared_verdicts = Vec::new();
    let start = Instant::now();
    for _ in 0..config.iters {
        shared_verdicts.clear();
        let mut context = ClosureContext::new(&queries, &cat, &budget);
        for (_, goal) in &goals {
            let verdict = context.contains(goal).expect("default budget suffices");
            shared_verdicts.push(verdict.is_some());
        }
        shared_combos = context.search_stats().combos;
    }
    let shared_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    assert_eq!(
        baseline_verdicts, shared_verdicts,
        "shared context changed a verdict"
    );
    SharedGoalReport {
        goals: goals.len(),
        iters: config.iters,
        baseline_ms,
        shared_ms,
        speedup: baseline_ms / shared_ms.max(1e-9),
        baseline_combos,
        shared_combos,
        verdicts: shared_verdicts,
    }
}

struct EngineBatchReport {
    checks: usize,
    wall_ms: f64,
    contexts: u64,
    probes: u64,
    combos: u64,
    executed: usize,
}

fn bench_engine_batch(config: &Config) -> EngineBatchReport {
    let (cat, view, goals) = shared_goal_workload();
    let mut workload = Workload::new();
    for (label, goal) in &goals {
        workload.push(
            label.clone(),
            Check::Member {
                view: view.clone(),
                goal: goal.clone(),
            },
        );
    }
    let mut report = None;
    let start = Instant::now();
    for _ in 0..config.iters {
        // Cold engine per iteration: the point is enumeration sharing
        // within one batch, not verdict-cache warmth across iterations.
        let engine = Engine::new();
        let outcome = engine.run_batch(&workload, &cat, 1);
        let stats = engine.enum_stats();
        report = Some(EngineBatchReport {
            checks: workload.len(),
            wall_ms: 0.0,
            contexts: stats.contexts,
            probes: stats.probes,
            combos: stats.combos,
            executed: outcome.executed,
        });
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;
    let mut report = report.expect("iters >= 1");
    report.wall_ms = wall_ms;
    report
}

struct CrossCatalogReport {
    checks: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    warm_hits: u64,
    warm_misses: u64,
    warm_executed: usize,
    merged_entries: usize,
    verdicts_equal: bool,
}

/// Cross-catalog warm start (the PR 5 suite): two workers decide halves
/// of the workload under the natural declaration order, their caches are
/// merged, and the merged file warm-starts the *full* workload under a
/// permuted catalog. Measures cold vs merged-warm wall time on the
/// permuted catalog and the warm run's hit counters.
fn bench_cross_catalog(config: &Config) -> CrossCatalogReport {
    let (cat, view, goals) = shared_goal_workload_ordered(false);
    let half = goals.len() / 2;
    let workload_of = |view: &View, goals: &[(String, Query)]| {
        let mut load = Workload::new();
        for (label, goal) in goals {
            load.push(
                label.clone(),
                Check::Member {
                    view: view.clone(),
                    goal: goal.clone(),
                },
            );
        }
        load
    };

    // Two workers, two caches.
    let worker1 = Engine::new();
    worker1.run_batch(&workload_of(&view, &goals[..half]), &cat, 1);
    let worker2 = Engine::new();
    worker2.run_batch(&workload_of(&view, &goals[half..]), &cat, 1);
    let (merged, merge_report) = viewcap_engine::merge_cache_bytes(&[
        viewcap_engine::save_cache(worker1.cache(), &cat),
        viewcap_engine::save_cache(worker2.cache(), &cat),
    ])
    .expect("worker caches merge");

    // The permuted catalog and its (identical-content) workload.
    let (pcat, pview, pgoals) = shared_goal_workload_ordered(true);
    let pworkload = workload_of(&pview, &pgoals);

    let mut cold_verdicts = Vec::new();
    let start = Instant::now();
    for _ in 0..config.iters {
        let engine = Engine::new();
        let outcome = engine.run_batch(&pworkload, &pcat, 1);
        cold_verdicts = outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().verdict.is_yes())
            .collect();
    }
    let cold_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    let mut warm_verdicts = Vec::new();
    let mut warm_hits = 0;
    let mut warm_misses = 0;
    let mut warm_executed = 0;
    let start = Instant::now();
    for _ in 0..config.iters {
        let engine = Engine::from_config(
            EngineConfig::new()
                .cache(viewcap_engine::load_cache(&merged, None).expect("merged cache loads")),
        )
        .unwrap();
        let outcome = engine.run_batch(&pworkload, &pcat, 1);
        warm_verdicts = outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().verdict.is_yes())
            .collect();
        let stats = engine.cache_stats();
        warm_hits = stats.hits;
        warm_misses = stats.misses;
        warm_executed = outcome.executed;
    }
    let warm_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    CrossCatalogReport {
        checks: pworkload.len(),
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms.max(1e-9),
        warm_hits,
        warm_misses,
        warm_executed,
        merged_entries: merge_report.entries_out,
        verdicts_equal: cold_verdicts == warm_verdicts,
    }
}

struct ScenarioReport {
    name: String,
    wall_ms: f64,
    yes: usize,
    no: usize,
    cache_hits: u64,
    cache_misses: u64,
    contexts: u64,
    probes: u64,
    combos: u64,
}

fn bench_scenarios(config: &Config) -> Vec<ScenarioReport> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(&config.scenarios_dir) else {
        eprintln!(
            "viewcap-bench: no scenario directory at `{}`, skipping scenario suite",
            config.scenarios_dir.display()
        );
        return out;
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "vcap"))
        .collect();
    paths.sort();
    for path in paths {
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("viewcap-bench: cannot read `{}`: {e}", path.display());
                continue;
            }
        };
        let name = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into(),
        );
        let mut last = None;
        let start = Instant::now();
        for _ in 0..config.iters {
            let engine = Engine::new();
            let outcome = run_scenario_with_engine(&source, &ScenarioOptions { jobs: 1 }, &engine)
                .unwrap_or_else(|e| panic!("scenario `{name}` failed: {e}"));
            last = Some(outcome);
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;
        let outcome = last.expect("iters >= 1");
        out.push(ScenarioReport {
            name,
            wall_ms,
            yes: outcome.yes,
            no: outcome.no,
            cache_hits: outcome.stats.hits,
            cache_misses: outcome.stats.misses,
            contexts: outcome.enum_stats.contexts,
            probes: outcome.enum_stats.probes,
            combos: outcome.enum_stats.combos,
        });
    }
    out
}

struct NormalizationReport {
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    warm_hits: u64,
    warm_misses: u64,
    cold_contexts: u64,
    cold_probes: u64,
    cold_combos: u64,
    warm_combos: u64,
    reports_identical: bool,
    join_flat_ms: f64,
    join_trie_ms: f64,
    join_flat_pairs: u64,
    join_trie_pairs: u64,
    join_lists_identical: bool,
}

/// The normalization suite (the PR 6 suite): the `normal_form` scenario
/// cold versus warm through one engine — the warm run must be a pure
/// verdict-cache hit with a byte-identical report — plus a candidate-join
/// microbench pitting the byte-trie tuple index against a flat scan.
fn bench_normalization(config: &Config) -> NormalizationReport {
    let path = config.scenarios_dir.join("normal_form.vcap");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read `{}`: {e}", path.display()));
    let options = ScenarioOptions { jobs: 1 };

    // Cold: a fresh engine per iteration pays the Section 4 pipeline.
    let mut cold_report = String::new();
    let mut cold_stats = viewcap_engine::EnumStats::default();
    let start = Instant::now();
    for _ in 0..config.iters {
        let engine = Engine::new();
        let outcome = run_scenario_with_engine(&source, &options, &engine)
            .unwrap_or_else(|e| panic!("normal_form cold run failed: {e}"));
        cold_report = outcome.report;
        cold_stats = outcome.enum_stats;
    }
    let cold_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    // Warm: one pre-warmed engine replays the scenario from its cache.
    let warm_engine = Engine::new();
    run_scenario_with_engine(&source, &options, &warm_engine)
        .unwrap_or_else(|e| panic!("normal_form warmup failed: {e}"));
    let hits_before = warm_engine.cache_stats().hits;
    let mut warm_report = String::new();
    let mut warm_stats = viewcap_engine::EnumStats::default();
    let start = Instant::now();
    for _ in 0..config.iters {
        let outcome = run_scenario_with_engine(&source, &options, &warm_engine)
            .unwrap_or_else(|e| panic!("normal_form warm run failed: {e}"));
        warm_report = outcome.report;
        warm_stats = outcome.enum_stats;
    }
    let warm_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;
    let warm_cache = warm_engine.cache_stats();
    // The warmup probe built the context; warm iterations add no combos.
    let warm_combos = warm_stats.combos.saturating_sub(cold_stats.combos);

    let join = bench_candidate_join(config);

    NormalizationReport {
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms.max(1e-9),
        warm_hits: warm_cache.hits - hits_before,
        warm_misses: warm_cache.misses.saturating_sub(2),
        cold_contexts: cold_stats.contexts,
        cold_probes: cold_stats.probes,
        cold_combos: cold_stats.combos,
        warm_combos,
        reports_identical: cold_report == warm_report,
        join_flat_ms: join.0,
        join_trie_ms: join.1,
        join_flat_pairs: join.2,
        join_trie_pairs: join.3,
        join_lists_identical: join.4,
    }
}

/// Candidate-join microbench: `(flat_ms, trie_ms, flat_pairs, trie_pairs,
/// lists_identical)`. Both paths produce identical candidate lists; the
/// counters record how many (source tuple, target tuple) pairs each had to
/// examine to get there — the flat scan touches every pair, the trie only
/// its tag buckets.
fn bench_candidate_join(config: &Config) -> (f64, f64, u64, u64, bool) {
    use viewcap_template::{candidate_lists, reduce, template_of_expr, Template};

    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    cat.relation("S", &["C", "D"]).unwrap();
    // A wide join target (many tuples across both tags) and mid-size
    // sources — the shape normalization probes take through `reduce`.
    let dst: Template = template_of_expr(
        &parse_expr(
            "pi{A,B}(R) * pi{B,C}(R) * pi{A,C}(R) * pi{A}(R) * pi{B}(R) * \
             pi{C}(R) * pi{C,D}(S) * pi{C}(S) * pi{D}(S)",
            &cat,
        )
        .unwrap(),
        &cat,
    );
    let srcs: Vec<Template> = [
        "pi{A,B}(R) * pi{B,C}(R)",
        "pi{A}(R) * pi{C,D}(S)",
        "pi{A,C}(R * S) * pi{B}(R)",
        "pi{B,D}(pi{B,C}(R) * pi{C,D}(S))",
    ]
    .iter()
    .map(|src| reduce(&template_of_expr(&parse_expr(src, &cat).unwrap(), &cat)))
    .collect();

    // Flat reference scan: every same-tag pair, checked positionally.
    let flat_lists = |src: &Template, dst: &Template| -> Option<Vec<Vec<usize>>> {
        let mut out = Vec::with_capacity(src.len());
        for st in src.tuples() {
            let mut cands = Vec::new();
            'target: for (j, dt) in dst.tuples().iter().enumerate() {
                if dt.rel() != st.rel() {
                    continue;
                }
                for (a, b) in st.row().iter().zip(dt.row()) {
                    if a.is_distinguished() && a != b {
                        continue 'target;
                    }
                }
                cands.push(j);
            }
            if cands.is_empty() {
                return None;
            }
            out.push(cands);
        }
        Some(out)
    };

    let reps = if config.smoke { 50 } else { 2000 };
    let mut lists_identical = true;
    let mut flat_pairs = 0u64;
    let mut trie_pairs = 0u64;
    for src in &srcs {
        flat_pairs += (src.len() * dst.len()) as u64;
        let index = dst.tuple_index();
        for st in src.tuples() {
            trie_pairs += index.by_tag(st.rel()).len() as u64;
        }
        lists_identical &= candidate_lists(src, &dst) == flat_lists(src, &dst);
    }

    let start = Instant::now();
    for _ in 0..reps {
        for src in &srcs {
            std::hint::black_box(flat_lists(src, &dst));
        }
    }
    let flat_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        for src in &srcs {
            std::hint::black_box(candidate_lists(src, &dst));
        }
    }
    let trie_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

    (flat_ms, trie_ms, flat_pairs, trie_pairs, lists_identical)
}

struct TelemetryReport {
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
    executed: u64,
    check_spans: u64,
    check_hist: viewcap_obs::HistogramSnapshot,
    normalize_hist: viewcap_obs::HistogramSnapshot,
    trace_events: u64,
}

/// The telemetry suite (the PR 7 suite): the engine-batch workload plus
/// the `normal_form` scenario, each through a cold engine, run once with
/// telemetry disabled and once enabled. The disabled pass prices the
/// no-op fast path (one relaxed atomic load per site); the enabled pass
/// yields the per-check and per-normalize latency histograms whose
/// p50/p90/p99 the report carries.
fn bench_telemetry(config: &Config) -> TelemetryReport {
    let (cat, view, goals) = shared_goal_workload();
    let mut workload = Workload::new();
    for (label, goal) in &goals {
        workload.push(
            label.clone(),
            Check::Member {
                view: view.clone(),
                goal: goal.clone(),
            },
        );
    }
    let path = config.scenarios_dir.join("normal_form.vcap");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read `{}`: {e}", path.display()));
    let options = ScenarioOptions { jobs: 1 };
    let run_once = || -> u64 {
        let engine = Engine::new();
        let outcome = engine.run_batch(&workload, &cat, 1);
        let executed = outcome.executed as u64;
        std::hint::black_box(outcome);
        let engine = Engine::new();
        let outcome = run_scenario_with_engine(&source, &options, &engine)
            .unwrap_or_else(|e| panic!("normal_form telemetry run failed: {e}"));
        std::hint::black_box(outcome);
        executed
    };

    // Disabled first: every instrumentation site degenerates to one
    // relaxed load, and nothing reaches the registry or the rings.
    viewcap_obs::set_enabled(false);
    let start = Instant::now();
    for _ in 0..config.iters {
        run_once();
    }
    let disabled_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    viewcap_obs::reset();
    viewcap_obs::set_enabled(true);
    let mut executed = 0u64;
    let start = Instant::now();
    for _ in 0..config.iters {
        executed += run_once();
    }
    let enabled_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;
    let snapshot = viewcap_obs::snapshot();
    let trace_events = viewcap_obs::trace_json().matches("\"ph\"").count() as u64;
    viewcap_obs::set_enabled(false);
    viewcap_obs::reset();

    let hist_of = |name: &str| snapshot.histograms.get(name).cloned().unwrap_or_default();
    TelemetryReport {
        disabled_ms,
        enabled_ms,
        overhead_pct: (enabled_ms - disabled_ms) / disabled_ms.max(1e-9) * 100.0,
        executed,
        check_spans: snapshot
            .counters
            .get("span.engine.check")
            .copied()
            .unwrap_or(0),
        check_hist: hist_of("engine.check_ns"),
        normalize_hist: hist_of("engine.normalize_ns"),
        trace_events,
    }
}

struct ThroughputJobRun {
    jobs: usize,
    wall_ms: f64,
    checks_per_sec: f64,
    yes: usize,
    no: usize,
    latency_samples: u64,
    p50_ns: u64,
    p99_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
    hit_rate: f64,
}

struct ThroughputStreamReport {
    name: &'static str,
    views: usize,
    checks: usize,
    edits: usize,
    rechecks: usize,
    diffs: usize,
    txns: usize,
    runs: Vec<ThroughputJobRun>,
}

/// The throughput suite (the PR 10 suite, `BENCH_PR10.json` by default,
/// `--out-throughput`): the three generated fleet streams — the mixed
/// zipf request stream, the capacity-frontier diffing workload, and the
/// multi-edit transaction workload — each replayed end to end through a
/// cold scenario engine at `--jobs` 1/4/8. Sustained checks/sec comes
/// from the wall clock over the stream's decided verdicts; the p50/p99
/// latency columns are read back from the engine's existing
/// `engine.check_ns` histogram in `viewcap-obs` — the suite adds no
/// timing code of its own. Toggles the global telemetry flag, so it must
/// run with the telemetry suite, after every wall-time-sensitive suite.
fn bench_throughput(config: &Config) -> Vec<ThroughputStreamReport> {
    use viewcap_gen::{fleet_stream, frontier_diff_stream, txn_stream, FleetSpec};

    let spec = if config.smoke {
        FleetSpec {
            views: 48,
            events: 60,
            batch_size: 4,
            ..FleetSpec::default()
        }
    } else {
        FleetSpec::default()
    };
    let streams: Vec<(&'static str, viewcap_gen::FleetScenario)> = vec![
        ("fleet_zipf", fleet_stream(0xF1EE7, &spec)),
        ("frontier_diff", frontier_diff_stream(0xD1FF, &spec)),
        ("multi_edit_txn", txn_stream(0x7A9, &spec)),
    ];
    let mut out = Vec::new();
    for (name, stream) in streams {
        let mut runs = Vec::new();
        for jobs in [1usize, 4, 8] {
            viewcap_obs::reset();
            viewcap_obs::set_enabled(true);
            let engine = Engine::new();
            let start = Instant::now();
            let outcome =
                run_scenario_with_engine(&stream.source, &ScenarioOptions { jobs }, &engine)
                    .unwrap_or_else(|e| panic!("throughput stream `{name}` failed: {e}"));
            let wall = start.elapsed().as_secs_f64();
            viewcap_obs::set_enabled(false);
            let snapshot = viewcap_obs::snapshot();
            viewcap_obs::reset();
            let hist = snapshot
                .histograms
                .get("engine.check_ns")
                .cloned()
                .unwrap_or_default();
            let decided = outcome.yes + outcome.no;
            let (hits, misses) = (outcome.stats.hits, outcome.stats.misses);
            runs.push(ThroughputJobRun {
                jobs,
                wall_ms: wall * 1e3,
                checks_per_sec: decided as f64 / wall.max(1e-9),
                yes: outcome.yes,
                no: outcome.no,
                latency_samples: hist.count,
                p50_ns: hist.p50(),
                p99_ns: hist.p99(),
                cache_hits: hits,
                cache_misses: misses,
                hit_rate: hits as f64 / ((hits + misses) as f64).max(1.0),
            });
        }
        out.push(ThroughputStreamReport {
            name,
            views: stream.views,
            checks: stream.checks,
            edits: stream.edits,
            rechecks: stream.rechecks,
            diffs: stream.diffs,
            txns: stream.txns,
            runs,
        });
    }
    out
}

fn throughput_json_report(config: &Config, streams: &[ThroughputStreamReport]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR10\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"streams\": [");
    for (i, st) in streams.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", st.name);
        let _ = writeln!(s, "      \"views\": {},", st.views);
        let _ = writeln!(s, "      \"checks\": {},", st.checks);
        let _ = writeln!(s, "      \"edits\": {},", st.edits);
        let _ = writeln!(s, "      \"rechecks\": {},", st.rechecks);
        let _ = writeln!(s, "      \"diffs\": {},", st.diffs);
        let _ = writeln!(s, "      \"txns\": {},", st.txns);
        let _ = writeln!(s, "      \"runs\": [");
        for (j, r) in st.runs.iter().enumerate() {
            let comma = if j + 1 == st.runs.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "        {{\"jobs\": {}, \"wall_ms\": {:.3}, \"checks_per_sec\": {:.1}, \
                 \"yes\": {}, \"no\": {}, \"latency_samples\": {}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"hit_rate\": {:.3}}}{comma}",
                r.jobs,
                r.wall_ms,
                r.checks_per_sec,
                r.yes,
                r.no,
                r.latency_samples,
                r.p50_ns,
                r.p99_ns,
                r.cache_hits,
                r.cache_misses,
                r.hit_rate
            );
        }
        let _ = writeln!(s, "      ]");
        let comma = if i + 1 == streams.len() { "" } else { "," };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// The space-persistence workload: one view of four defining queries over
/// a three-relation chain schema, with membership goals whose reduced
/// templates reach five atoms — deep enough that building the candidate
/// space dominates a cold batch, which is exactly the cost a persisted
/// snapshot amortizes away.
fn space_workload_ordered(permuted: bool) -> (Catalog, View, Vec<(String, Query)>) {
    let mut cat = Catalog::new();
    if permuted {
        cat.relation("T", &["E", "D"]).unwrap();
        cat.relation("S", &["D", "C"]).unwrap();
        cat.relation("R", &["C", "B", "A"]).unwrap();
    } else {
        cat.relation("R", &["A", "B", "C"]).unwrap();
        cat.relation("S", &["C", "D"]).unwrap();
        cat.relation("T", &["D", "E"]).unwrap();
    }
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let bc = cat.scheme(&["B", "C"]).unwrap();
    let cd = cat.scheme(&["C", "D"]).unwrap();
    let de = cat.scheme(&["D", "E"]).unwrap();
    let v1 = cat.fresh_relation("v1", ab);
    let v2 = cat.fresh_relation("v2", bc);
    let v3 = cat.fresh_relation("v3", cd);
    let v4 = cat.fresh_relation("v4", de);
    let view = View::from_exprs(
        vec![
            (parse_expr("pi{A,B}(R)", &cat).unwrap(), v1),
            (parse_expr("pi{B,C}(R)", &cat).unwrap(), v2),
            (parse_expr("pi{C,D}(S)", &cat).unwrap(), v3),
            (parse_expr("pi{D,E}(T)", &cat).unwrap(), v4),
        ],
        &cat,
    )
    .unwrap();
    // The two 5-atom goals pin the enumeration depth: the all-singleton
    // member and — the expensive one — a 5-atom NON-member, which forces
    // the exhaustive level-5 sweep every cold run repays.
    let goals = [
        // Members.
        "pi{A}(R) * pi{B}(R) * pi{C}(R) * pi{D}(S) * pi{E}(T)",
        "pi{A,B}(R) * pi{B,C}(R) * pi{C,D}(S) * pi{D,E}(T)",
        "pi{A,B}(R) * pi{C}(R) * pi{D}(S) * pi{E}(T)",
        "pi{A}(R) * pi{B,C}(R) * pi{C,D}(S) * pi{E}(T)",
        "pi{B,D}(pi{B,C}(R) * pi{C,D}(S)) * pi{A}(R) * pi{E}(T)",
        "pi{A,B}(R)",
        "pi{A,C}(pi{A,B}(R) * pi{B,C}(R)) * pi{D,E}(T)",
        // Non-members.
        "pi{A,B}(R) * pi{B,C}(R) * pi{A,C}(R) * pi{C,D}(S) * pi{D,E}(T)",
        "pi{A,C}(R) * pi{B}(R) * pi{C,D}(S) * pi{D,E}(T)",
        "R * pi{D}(S) * pi{E}(T)",
        "pi{A,D}(R * S) * pi{B}(R) * pi{E}(T)",
        "pi{A,E}(R * S * T)",
    ]
    .iter()
    .map(|src| {
        (
            (*src).to_owned(),
            Query::from_expr(parse_expr(src, &cat).unwrap(), &cat),
        )
    })
    .collect();
    (cat, view, goals)
}

struct SpacePersistenceReport {
    checks: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    cold_levels_rebuilt: u64,
    warm_levels_hydrated: u64,
    warm_levels_rebuilt: u64,
    library_spaces: usize,
    library_bytes: usize,
    verdicts_equal: bool,
    permuted_levels_hydrated: u64,
    permuted_levels_rebuilt: u64,
    permuted_verdicts_equal: bool,
}

/// The space-persistence suite (the PR 9 suite): the deep workload cold
/// versus cold-with-snapshot (the verdict cache is fresh both times, so
/// the gap is purely enumeration rebuild vs hydration), plus the same
/// snapshot driving the workload on a permuted catalog.
fn bench_space_persistence(config: &Config) -> SpacePersistenceReport {
    use std::sync::{Arc, Mutex};
    use viewcap_engine::SpaceLibrary;

    let (cat, view, goals) = space_workload_ordered(false);
    let workload_of = |view: &View, goals: &[(String, Query)]| {
        let mut load = Workload::new();
        for (label, goal) in goals {
            load.push(
                label.clone(),
                Check::Member {
                    view: view.clone(),
                    goal: goal.clone(),
                },
            );
        }
        load
    };
    let verdicts_of = |outcome: &viewcap_engine::BatchOutcome| -> Vec<bool> {
        outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().verdict.is_yes())
            .collect()
    };
    let workload = workload_of(&view, &goals);

    // Cold: a fresh engine per iteration pays the full bounded
    // enumeration.
    let mut cold_verdicts = Vec::new();
    let mut cold_stats = viewcap_engine::EnumStats::default();
    let start = Instant::now();
    for _ in 0..config.iters {
        let engine = Engine::new();
        let outcome = engine.run_batch(&workload, &cat, 1);
        cold_verdicts = verdicts_of(&outcome);
        cold_stats = engine.enum_stats();
    }
    let cold_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    // Seed the persisted library from one separate run.
    let library = Arc::new(Mutex::new(SpaceLibrary::new()));
    {
        let engine =
            Engine::from_config(EngineConfig::new().shared_spaces(Arc::clone(&library))).unwrap();
        engine.run_batch(&workload, &cat, 1);
        engine.harvest_spaces();
    }
    let (library_spaces, library_bytes) = {
        let lib = library.lock().expect("space library lock");
        (lib.len(), lib.to_bytes().len())
    };

    // Cold-with-snapshot: a fresh engine *and a fresh verdict cache* per
    // iteration — only the candidate spaces are warm.
    let mut warm_verdicts = Vec::new();
    let mut warm_stats = viewcap_engine::EnumStats::default();
    let start = Instant::now();
    for _ in 0..config.iters {
        let engine =
            Engine::from_config(EngineConfig::new().shared_spaces(Arc::clone(&library))).unwrap();
        let outcome = engine.run_batch(&workload, &cat, 1);
        warm_verdicts = verdicts_of(&outcome);
        warm_stats = engine.enum_stats();
    }
    let warm_ms = start.elapsed().as_secs_f64() * 1e3 / config.iters as f64;

    // The same library against the catalog declared in a permuted order:
    // content-addressed keys plus canonical enumeration make the snapshot
    // bytes valid verbatim.
    let (pcat, pview, pgoals) = space_workload_ordered(true);
    let pworkload = workload_of(&pview, &pgoals);
    let pengine =
        Engine::from_config(EngineConfig::new().shared_spaces(Arc::clone(&library))).unwrap();
    let poutcome = pengine.run_batch(&pworkload, &pcat, 1);
    let permuted_verdicts = verdicts_of(&poutcome);
    let pstats = pengine.enum_stats();

    SpacePersistenceReport {
        checks: workload.len(),
        cold_ms,
        warm_ms,
        speedup: cold_ms / warm_ms.max(1e-9),
        cold_levels_rebuilt: cold_stats.levels_rebuilt,
        warm_levels_hydrated: warm_stats.levels_hydrated,
        warm_levels_rebuilt: warm_stats.levels_rebuilt,
        library_spaces,
        library_bytes,
        verdicts_equal: cold_verdicts == warm_verdicts,
        permuted_levels_hydrated: pstats.levels_hydrated,
        permuted_levels_rebuilt: pstats.levels_rebuilt,
        permuted_verdicts_equal: cold_verdicts == permuted_verdicts,
    }
}

struct ThousandRelReport {
    relations: usize,
    dst_tuples: usize,
    flat_pairs: u64,
    trie_pairs: u64,
    flat_ms: f64,
    trie_ms: f64,
    lists_identical: bool,
}

/// Thousand-relation candidate-join microbench: the `wide` family's
/// 1000-tag destination template against sources of 1–8 tuples. The flat
/// scan examines every (source, target) pair; the byte-trie index only
/// its per-tag buckets — a `|catalog|`-factor gap at fleet scale.
fn bench_thousand_relations(config: &Config) -> ThousandRelReport {
    use viewcap_gen::{wide_join_expr, wide_world};
    use viewcap_template::{candidate_lists, template_of_expr, Template};

    let world = wide_world(1000);
    let cat = &world.catalog;
    let dst: Template = template_of_expr(&wide_join_expr(&world), cat);
    let srcs: Vec<Template> = [1usize, 2, 4, 8]
        .iter()
        .map(|&k| {
            let atoms: Vec<String> = (0..k)
                .map(|i| {
                    let j = i * (1000 / k.max(1));
                    format!("pi{{K,V{j}}}(T{j})")
                })
                .collect();
            template_of_expr(&parse_expr(&atoms.join(" * "), cat).unwrap(), cat)
        })
        .collect();

    let mut lists_identical = true;
    let mut flat_pairs = 0u64;
    let mut trie_pairs = 0u64;
    for src in &srcs {
        flat_pairs += (src.len() * dst.len()) as u64;
        let index = dst.tuple_index();
        for st in src.tuples() {
            trie_pairs += index.by_tag(st.rel()).len() as u64;
        }
        lists_identical &= candidate_lists(src, &dst) == flat_candidate_lists(src, &dst);
    }

    let reps = if config.smoke { 5 } else { 200 };
    let start = Instant::now();
    for _ in 0..reps {
        for src in &srcs {
            std::hint::black_box(flat_candidate_lists(src, &dst));
        }
    }
    let flat_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let start = Instant::now();
    for _ in 0..reps {
        for src in &srcs {
            std::hint::black_box(candidate_lists(src, &dst));
        }
    }
    let trie_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

    ThousandRelReport {
        relations: world.rels.len(),
        dst_tuples: dst.len(),
        flat_pairs,
        trie_pairs,
        flat_ms,
        trie_ms,
        lists_identical,
    }
}

/// Flat reference scan for the candidate-join benches: every same-tag
/// (source, target) pair, checked positionally.
fn flat_candidate_lists(
    src: &viewcap_template::Template,
    dst: &viewcap_template::Template,
) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(src.len());
    for st in src.tuples() {
        let mut cands = Vec::new();
        'target: for (j, dt) in dst.tuples().iter().enumerate() {
            if dt.rel() != st.rel() {
                continue;
            }
            for (a, b) in st.row().iter().zip(dt.row()) {
                if a.is_distinguished() && a != b {
                    continue 'target;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        out.push(cands);
    }
    Some(out)
}

fn space_json_report(
    config: &Config,
    space: &SpacePersistenceReport,
    wide: &ThousandRelReport,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR9\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"space_persistence\": {{");
    let _ = writeln!(s, "    \"checks\": {},", space.checks);
    let _ = writeln!(s, "    \"iters\": {},", config.iters);
    let _ = writeln!(s, "    \"cold_ms\": {:.3},", space.cold_ms);
    let _ = writeln!(s, "    \"cold_with_snapshot_ms\": {:.3},", space.warm_ms);
    let _ = writeln!(s, "    \"speedup\": {:.2},", space.speedup);
    let _ = writeln!(
        s,
        "    \"cold_levels_rebuilt\": {},",
        space.cold_levels_rebuilt
    );
    let _ = writeln!(
        s,
        "    \"warm_levels_hydrated\": {},",
        space.warm_levels_hydrated
    );
    let _ = writeln!(
        s,
        "    \"warm_levels_rebuilt\": {},",
        space.warm_levels_rebuilt
    );
    let _ = writeln!(s, "    \"library_spaces\": {},", space.library_spaces);
    let _ = writeln!(s, "    \"library_bytes\": {},", space.library_bytes);
    let _ = writeln!(s, "    \"verdicts_equal\": {},", space.verdicts_equal);
    let _ = writeln!(
        s,
        "    \"permuted_levels_hydrated\": {},",
        space.permuted_levels_hydrated
    );
    let _ = writeln!(
        s,
        "    \"permuted_levels_rebuilt\": {},",
        space.permuted_levels_rebuilt
    );
    let _ = writeln!(
        s,
        "    \"permuted_verdicts_equal\": {}",
        space.permuted_verdicts_equal
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"thousand_relations\": {{");
    let _ = writeln!(s, "    \"relations\": {},", wide.relations);
    let _ = writeln!(s, "    \"dst_tuples\": {},", wide.dst_tuples);
    let _ = writeln!(s, "    \"flat_pairs\": {},", wide.flat_pairs);
    let _ = writeln!(s, "    \"trie_pairs\": {},", wide.trie_pairs);
    let _ = writeln!(s, "    \"flat_ms\": {:.4},", wide.flat_ms);
    let _ = writeln!(s, "    \"trie_ms\": {:.4},", wide.trie_ms);
    let _ = writeln!(s, "    \"lists_identical\": {}", wide.lists_identical);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn norm_json_report(config: &Config, norm: &NormalizationReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR6\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"normal_form\": {{");
    let _ = writeln!(s, "    \"iters\": {},", config.iters);
    let _ = writeln!(s, "    \"cold_ms\": {:.3},", norm.cold_ms);
    let _ = writeln!(s, "    \"warm_ms\": {:.3},", norm.warm_ms);
    let _ = writeln!(s, "    \"speedup\": {:.2},", norm.speedup);
    let _ = writeln!(s, "    \"warm_hits\": {},", norm.warm_hits);
    let _ = writeln!(s, "    \"warm_misses\": {},", norm.warm_misses);
    let _ = writeln!(s, "    \"cold_contexts\": {},", norm.cold_contexts);
    let _ = writeln!(s, "    \"cold_probes\": {},", norm.cold_probes);
    let _ = writeln!(s, "    \"cold_combos\": {},", norm.cold_combos);
    let _ = writeln!(s, "    \"warm_combos\": {},", norm.warm_combos);
    let _ = writeln!(s, "    \"reports_identical\": {}", norm.reports_identical);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"candidate_join\": {{");
    let _ = writeln!(s, "    \"flat_ms\": {:.4},", norm.join_flat_ms);
    let _ = writeln!(s, "    \"trie_ms\": {:.4},", norm.join_trie_ms);
    let _ = writeln!(s, "    \"flat_pairs\": {},", norm.join_flat_pairs);
    let _ = writeln!(s, "    \"trie_pairs\": {},", norm.join_trie_pairs);
    let _ = writeln!(s, "    \"lists_identical\": {}", norm.join_lists_identical);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn obs_json_report(config: &Config, obs: &TelemetryReport) -> String {
    let hist = |s: &mut String, key: &str, h: &viewcap_obs::HistogramSnapshot, comma: &str| {
        let _ = writeln!(
            s,
            "    \"{key}\": {{\"count\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{comma}",
            h.count,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        );
    };
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR7\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"telemetry\": {{");
    let _ = writeln!(s, "    \"iters\": {},", config.iters);
    let _ = writeln!(s, "    \"disabled_ms\": {:.3},", obs.disabled_ms);
    let _ = writeln!(s, "    \"enabled_ms\": {:.3},", obs.enabled_ms);
    let _ = writeln!(s, "    \"overhead_pct\": {:.2},", obs.overhead_pct);
    let _ = writeln!(s, "    \"checks_executed\": {},", obs.executed);
    let _ = writeln!(s, "    \"check_spans\": {},", obs.check_spans);
    let _ = writeln!(s, "    \"trace_events\": {},", obs.trace_events);
    hist(&mut s, "per_check", &obs.check_hist, ",");
    hist(&mut s, "per_normalize", &obs.normalize_hist, "");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn cross_json_report(config: &Config, cross: &CrossCatalogReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR5\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"cross_catalog_warm_start\": {{");
    let _ = writeln!(s, "    \"checks\": {},", cross.checks);
    let _ = writeln!(s, "    \"iters\": {},", config.iters);
    let _ = writeln!(s, "    \"cold_ms\": {:.3},", cross.cold_ms);
    let _ = writeln!(s, "    \"warm_ms\": {:.3},", cross.warm_ms);
    let _ = writeln!(s, "    \"speedup\": {:.2},", cross.speedup);
    let _ = writeln!(s, "    \"warm_hits\": {},", cross.warm_hits);
    let _ = writeln!(s, "    \"warm_misses\": {},", cross.warm_misses);
    let _ = writeln!(s, "    \"warm_executed\": {},", cross.warm_executed);
    let _ = writeln!(s, "    \"merged_entries\": {},", cross.merged_entries);
    let _ = writeln!(s, "    \"verdicts_equal\": {}", cross.verdicts_equal);
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

fn json_report(
    config: &Config,
    shared: &SharedGoalReport,
    batch: &EngineBatchReport,
    scenarios: &[ScenarioReport],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"BENCH_PR4\",");
    let _ = writeln!(
        s,
        "  \"mode\": \"{}\",",
        if config.smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(s, "  \"shared_goal\": {{");
    let _ = writeln!(s, "    \"goals\": {},", shared.goals);
    let _ = writeln!(s, "    \"iters\": {},", shared.iters);
    let _ = writeln!(s, "    \"baseline_ms\": {:.3},", shared.baseline_ms);
    let _ = writeln!(s, "    \"shared_ms\": {:.3},", shared.shared_ms);
    let _ = writeln!(s, "    \"speedup\": {:.2},", shared.speedup);
    let _ = writeln!(s, "    \"baseline_combos\": {},", shared.baseline_combos);
    let _ = writeln!(s, "    \"shared_combos\": {},", shared.shared_combos);
    let verdicts: Vec<String> = shared.verdicts.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "    \"verdicts\": [{}]", verdicts.join(", "));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"engine_batch\": {{");
    let _ = writeln!(s, "    \"checks\": {},", batch.checks);
    let _ = writeln!(s, "    \"wall_ms\": {:.3},", batch.wall_ms);
    let _ = writeln!(s, "    \"contexts\": {},", batch.contexts);
    let _ = writeln!(s, "    \"probes\": {},", batch.probes);
    let _ = writeln!(s, "    \"combos\": {},", batch.combos);
    let _ = writeln!(s, "    \"executed\": {}", batch.executed);
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, sc) in scenarios.iter().enumerate() {
        let comma = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"yes\": {}, \"no\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"contexts\": {}, \"probes\": {}, \
             \"combos\": {}}}{comma}",
            sc.name,
            sc.wall_ms,
            sc.yes,
            sc.no,
            sc.cache_hits,
            sc.cache_misses,
            sc.contexts,
            sc.probes,
            sc.combos
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: viewcap-bench [--smoke] [--iters N] [--out PATH] [--out-cross PATH] \
         [--out-norm PATH] [--out-obs PATH] [--out-space PATH] [--out-throughput PATH] \
         [--scenarios DIR]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = Config {
        iters: 3,
        smoke: false,
        out: "BENCH_PR4.json".into(),
        out_cross: "BENCH_PR5.json".into(),
        out_norm: "BENCH_PR6.json".into(),
        out_obs: "BENCH_PR7.json".into(),
        out_space: "BENCH_PR9.json".into(),
        out_throughput: "BENCH_PR10.json".into(),
        scenarios_dir: "scenarios".into(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                config.smoke = true;
                config.iters = 1;
            }
            "--iters" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => config.iters = n,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => config.out = p.into(),
                None => return usage(),
            },
            "--out-cross" => match it.next() {
                Some(p) => config.out_cross = p.into(),
                None => return usage(),
            },
            "--out-norm" => match it.next() {
                Some(p) => config.out_norm = p.into(),
                None => return usage(),
            },
            "--out-obs" => match it.next() {
                Some(p) => config.out_obs = p.into(),
                None => return usage(),
            },
            "--out-space" => match it.next() {
                Some(p) => config.out_space = p.into(),
                None => return usage(),
            },
            "--out-throughput" => match it.next() {
                Some(p) => config.out_throughput = p.into(),
                None => return usage(),
            },
            "--scenarios" => match it.next() {
                Some(p) => config.scenarios_dir = p.into(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let shared = bench_shared_goals(&config);
    let batch = bench_engine_batch(&config);
    let scenarios = bench_scenarios(&config);
    let cross = bench_cross_catalog(&config);
    let norm = bench_normalization(&config);
    let space = bench_space_persistence(&config);
    let wide = bench_thousand_relations(&config);
    // Last, so flipping the global telemetry flag cannot touch the other
    // suites' measurements. The throughput suite also drives the flag
    // (its p50/p99 columns come from the `engine.check_ns` histogram),
    // so it rides in the same tail position.
    let obs = bench_telemetry(&config);
    let throughput = bench_throughput(&config);

    println!(
        "shared-goal: {} goals, baseline {:.2} ms / shared {:.2} ms ({:.2}x), \
         combos {} -> {}",
        shared.goals,
        shared.baseline_ms,
        shared.shared_ms,
        shared.speedup,
        shared.baseline_combos,
        shared.shared_combos
    );
    println!(
        "engine-batch: {} checks in {:.2} ms, {} context(s), {} probe(s), {} combos",
        batch.checks, batch.wall_ms, batch.contexts, batch.probes, batch.combos
    );
    for sc in &scenarios {
        println!(
            "scenario {}: {:.2} ms, {} yes / {} no, {} context(s), {} combos",
            sc.name, sc.wall_ms, sc.yes, sc.no, sc.contexts, sc.combos
        );
    }

    println!(
        "cross-catalog: {} checks, cold {:.2} ms / merged-warm {:.2} ms ({:.2}x), \
         {} merged entrie(s), {} warm hit(s), {} executed",
        cross.checks,
        cross.cold_ms,
        cross.warm_ms,
        cross.speedup,
        cross.merged_entries,
        cross.warm_hits,
        cross.warm_executed
    );

    let report = json_report(&config, &shared, &batch, &scenarios);
    if let Err(e) = std::fs::write(&config.out, &report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out.display());

    let cross_report = cross_json_report(&config, &cross);
    if let Err(e) = std::fs::write(&config.out_cross, &cross_report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out_cross.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out_cross.display());

    println!(
        "normalization: cold {:.2} ms / warm {:.2} ms ({:.2}x), {} warm hit(s), \
         {} cold combos; join index {} -> {} pairs examined ({:.4} -> {:.4} ms)",
        norm.cold_ms,
        norm.warm_ms,
        norm.speedup,
        norm.warm_hits,
        norm.cold_combos,
        norm.join_flat_pairs,
        norm.join_trie_pairs,
        norm.join_flat_ms,
        norm.join_trie_ms
    );
    let norm_report = norm_json_report(&config, &norm);
    if let Err(e) = std::fs::write(&config.out_norm, &norm_report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out_norm.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out_norm.display());

    println!(
        "space-persistence: {} checks, cold {:.2} ms / with-snapshot {:.2} ms ({:.2}x), \
         {} level(s) rebuilt -> {} hydrated / {} rebuilt, permuted {} hydrated / {} rebuilt",
        space.checks,
        space.cold_ms,
        space.warm_ms,
        space.speedup,
        space.cold_levels_rebuilt,
        space.warm_levels_hydrated,
        space.warm_levels_rebuilt,
        space.permuted_levels_hydrated,
        space.permuted_levels_rebuilt
    );
    println!(
        "thousand-relations: {} tags, join index {} -> {} pairs examined \
         ({:.4} -> {:.4} ms)",
        wide.relations, wide.flat_pairs, wide.trie_pairs, wide.flat_ms, wide.trie_ms
    );
    let space_report = space_json_report(&config, &space, &wide);
    if let Err(e) = std::fs::write(&config.out_space, &space_report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out_space.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out_space.display());

    println!(
        "telemetry: disabled {:.2} ms / enabled {:.2} ms ({:+.1}%), {} check(s), \
         per-check p50 {} ns / p99 {} ns, {} trace event(s)",
        obs.disabled_ms,
        obs.enabled_ms,
        obs.overhead_pct,
        obs.check_hist.count,
        obs.check_hist.p50(),
        obs.check_hist.p99(),
        obs.trace_events
    );
    let obs_report = obs_json_report(&config, &obs);
    if let Err(e) = std::fs::write(&config.out_obs, &obs_report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out_obs.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out_obs.display());

    for st in &throughput {
        for r in &st.runs {
            println!(
                "throughput {} --jobs {}: {:.0} checks/sec over {:.2} ms, \
                 p50 {} ns / p99 {} ns ({} sample(s)), hit-rate {:.2}",
                st.name,
                r.jobs,
                r.checks_per_sec,
                r.wall_ms,
                r.p50_ns,
                r.p99_ns,
                r.latency_samples,
                r.hit_rate
            );
        }
    }
    let throughput_report = throughput_json_report(&config, &throughput);
    if let Err(e) = std::fs::write(&config.out_throughput, &throughput_report) {
        eprintln!(
            "viewcap-bench: cannot write `{}`: {e}",
            config.out_throughput.display()
        );
        return ExitCode::FAILURE;
    }
    println!("wrote {}", config.out_throughput.display());

    if config.smoke {
        // The counters must be live and the sharing real, or PR 4's whole
        // premise regressed.
        let mut failures = Vec::new();
        if shared.shared_combos == 0 {
            failures.push("shared_combos is 0".to_owned());
        }
        if shared.baseline_combos <= shared.shared_combos {
            failures.push(format!(
                "no combo amortization: baseline {} <= shared {}",
                shared.baseline_combos, shared.shared_combos
            ));
        }
        if batch.contexts != 1 {
            failures.push(format!("expected 1 engine context, got {}", batch.contexts));
        }
        if batch.probes < batch.checks as u64 {
            failures.push(format!(
                "engine probes {} below check count {}",
                batch.probes, batch.checks
            ));
        }
        if cross.warm_hits == 0 {
            failures.push("cross-catalog warm start recorded no cache hits".to_owned());
        }
        if cross.warm_executed != 0 {
            failures.push(format!(
                "cross-catalog warm start executed {} check(s)",
                cross.warm_executed
            ));
        }
        if !cross.verdicts_equal {
            failures.push("cross-catalog warm verdicts diverged from cold".to_owned());
        }
        if norm.warm_hits == 0 {
            failures.push("warm normalization recorded no cache hits".to_owned());
        }
        if norm.warm_misses != 0 {
            failures.push(format!(
                "warm normalization missed {} time(s)",
                norm.warm_misses
            ));
        }
        if norm.warm_combos != 0 {
            failures.push(format!(
                "warm normalization re-enumerated {} combo(s)",
                norm.warm_combos
            ));
        }
        if !norm.reports_identical {
            failures.push("warm normal_form report diverged from cold".to_owned());
        }
        if norm.cold_probes == 0 || norm.cold_combos == 0 {
            failures.push("cold normalization stats are dead (probes/combos 0)".to_owned());
        }
        if norm.join_trie_pairs >= norm.join_flat_pairs {
            failures.push(format!(
                "trie join examined {} pairs, not strictly below the flat scan's {}",
                norm.join_trie_pairs, norm.join_flat_pairs
            ));
        }
        if !norm.join_lists_identical {
            failures.push("trie candidate lists diverged from the flat scan".to_owned());
        }
        if space.cold_levels_rebuilt == 0 {
            failures.push("cold space runs rebuilt no levels (workload is dead)".to_owned());
        }
        if space.warm_levels_rebuilt != 0 {
            failures.push(format!(
                "snapshot-warmed run rebuilt {} level(s)",
                space.warm_levels_rebuilt
            ));
        }
        if space.warm_levels_hydrated == 0 {
            failures.push("snapshot-warmed run hydrated no levels".to_owned());
        }
        if space.permuted_levels_rebuilt != 0 {
            failures.push(format!(
                "permuted-catalog snapshot run rebuilt {} level(s)",
                space.permuted_levels_rebuilt
            ));
        }
        if !space.verdicts_equal {
            failures.push("snapshot-warmed verdicts diverged from cold".to_owned());
        }
        if !space.permuted_verdicts_equal {
            failures.push("permuted-catalog snapshot verdicts diverged from cold".to_owned());
        }
        if space.library_spaces == 0 {
            failures.push("harvest produced an empty space library".to_owned());
        }
        if wide.trie_pairs >= wide.flat_pairs {
            failures.push(format!(
                "thousand-relation trie examined {} pairs, not below the flat scan's {}",
                wide.trie_pairs, wide.flat_pairs
            ));
        }
        if !wide.lists_identical {
            failures.push("thousand-relation candidate lists diverged".to_owned());
        }
        if obs.check_hist.count == 0 {
            failures.push("telemetry recorded no per-check latencies".to_owned());
        }
        if obs.check_hist.count != obs.check_spans || obs.check_spans != obs.executed {
            failures.push(format!(
                "telemetry span accounting broken: {} latencies, {} spans, {} executed",
                obs.check_hist.count, obs.check_spans, obs.executed
            ));
        }
        let (p50, p90, p99) = (
            obs.check_hist.p50(),
            obs.check_hist.p90(),
            obs.check_hist.p99(),
        );
        if !(p50 <= p90 && p90 <= p99) {
            failures.push(format!(
                "per-check quantiles not monotone: p50 {p50} / p90 {p90} / p99 {p99}"
            ));
        }
        if obs.normalize_hist.count == 0 {
            failures.push("telemetry recorded no per-normalize latencies".to_owned());
        }
        if obs.trace_events == 0 {
            failures.push("enabled run emitted no trace events".to_owned());
        }
        for st in &throughput {
            let mut verdicts = None;
            for r in &st.runs {
                if r.checks_per_sec <= 0.0 {
                    failures.push(format!(
                        "throughput {} --jobs {}: checks/sec not positive",
                        st.name, r.jobs
                    ));
                }
                if r.latency_samples == 0 {
                    failures.push(format!(
                        "throughput {} --jobs {}: no engine.check_ns samples (p99 missing)",
                        st.name, r.jobs
                    ));
                }
                if r.p50_ns > r.p99_ns {
                    failures.push(format!(
                        "throughput {} --jobs {}: p50 {} above p99 {}",
                        st.name, r.jobs, r.p50_ns, r.p99_ns
                    ));
                }
                match verdicts {
                    None => verdicts = Some((r.yes, r.no)),
                    Some(v) => {
                        if v != (r.yes, r.no) {
                            failures.push(format!(
                                "throughput {}: verdict counts depend on --jobs",
                                st.name
                            ));
                        }
                    }
                }
            }
        }
        // The zipf head plus toggled-back edits must keep the verdict
        // cache warm: popular checks repeat, so the mixed stream's
        // hit-rate is a liveness signal for the whole premise.
        if let Some(fleet) = throughput.iter().find(|s| s.name == "fleet_zipf") {
            for r in &fleet.runs {
                if r.hit_rate < 0.25 {
                    failures.push(format!(
                        "fleet_zipf --jobs {}: warm hit-rate {:.3} below 0.25",
                        r.jobs, r.hit_rate
                    ));
                }
            }
        }
        if let Some(diffs) = throughput.iter().find(|s| s.name == "frontier_diff") {
            if diffs.diffs == 0 {
                failures.push("frontier_diff stream generated no diff commands".to_owned());
            }
        }
        if let Some(txns) = throughput.iter().find(|s| s.name == "multi_edit_txn") {
            if txns.txns == 0 {
                failures.push("multi_edit_txn stream generated no txn blocks".to_owned());
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("viewcap-bench: smoke failure: {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("smoke checks passed");
    }
    ExitCode::SUCCESS
}
