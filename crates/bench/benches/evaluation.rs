//! B2 — evaluation: the template engine (α-embedding enumeration) versus
//! direct relational evaluation of the same expression.
//!
//! Two sweeps on chain joins: data size at fixed arity, and arity at fixed
//! data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use viewcap_gen::{chain_join_expr, chain_world, random_instantiation};
use viewcap_template::{eval_template, template_of_expr};

fn bench_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluation");
    group.sample_size(20);

    // Sweep rows at fixed chain length 3.
    let w = chain_world(3);
    let e = chain_join_expr(&w);
    let t = template_of_expr(&e, &w.catalog);
    for rows in [10usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(rows as u64);
        let alpha = random_instantiation(&mut rng, &w.catalog, &w.rels, rows, 8);
        group.bench_with_input(BenchmarkId::new("template/rows", rows), &rows, |b, _| {
            b.iter(|| eval_template(std::hint::black_box(&t), &alpha, &w.catalog))
        });
        group.bench_with_input(BenchmarkId::new("expr/rows", rows), &rows, |b, _| {
            b.iter(|| std::hint::black_box(&e).eval(&alpha, &w.catalog))
        });
    }

    // Sweep chain length at fixed 30 rows.
    for n in [1usize, 2, 3, 4] {
        let w = chain_world(n);
        let e = chain_join_expr(&w);
        let t = template_of_expr(&e, &w.catalog);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let alpha = random_instantiation(&mut rng, &w.catalog, &w.rels, 30, 6);
        group.bench_with_input(BenchmarkId::new("template/links", n), &n, |b, _| {
            b.iter(|| eval_template(std::hint::black_box(&t), &alpha, &w.catalog))
        });
        group.bench_with_input(BenchmarkId::new("expr/links", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(&e).eval(&alpha, &w.catalog))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);
