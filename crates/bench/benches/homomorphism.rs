//! B1 — homomorphism search (Prop 2.4.1/2.4.3) scaling.
//!
//! Sweeps chain-join templates: the self-test (hom exists, identity-like),
//! the containment test with merging, and a negative test (no hom). Chain
//! length = tuple count.
//!
//! Also measures candidate-list construction: the trie-indexed
//! `candidate_lists` (multiway postings intersection) against a naive flat
//! scan (O(|src| · |dst|)) on many-relation templates, where indexing wins
//! by roughly the relation count. The flat scan lives here as a benchmark
//! baseline — the production API has a single, indexed entry point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_gen::{chain_join_expr, chain_world};
use viewcap_template::{candidate_lists, find_homomorphism, template_of_expr, Template};

/// Naive flat-scan baseline (mirrors the `#[cfg(test)]` oracle in
/// `viewcap-template::hom`).
fn candidate_lists_flat(src: &Template, dst: &Template) -> Option<Vec<Vec<usize>>> {
    let mut out = Vec::with_capacity(src.len());
    for st in src.tuples() {
        let mut cands = Vec::new();
        'target: for (j, dt) in dst.tuples().iter().enumerate() {
            if dt.rel() != st.rel() {
                continue;
            }
            for (a, b) in st.row().iter().zip(dt.row()) {
                if a.is_distinguished() && a != b {
                    continue 'target;
                }
            }
            cands.push(j);
        }
        if cands.is_empty() {
            return None;
        }
        out.push(cands);
    }
    Some(out)
}

fn bench_homomorphism(c: &mut Criterion) {
    let mut group = c.benchmark_group("homomorphism");
    group.sample_size(20);

    for n in [2usize, 4, 6, 8] {
        let w = chain_world(n);
        let chain = template_of_expr(&chain_join_expr(&w), &w.catalog);
        assert_eq!(chain.len(), n);

        // Positive: self homomorphism.
        group.bench_with_input(BenchmarkId::new("self", n), &n, |b, _| {
            b.iter(|| {
                assert!(find_homomorphism(std::hint::black_box(&chain), &chain).is_some());
            })
        });

        // Positive with merging: chain ⋈ chain (disjoint symbol copies)
        // against chain.
        let doubled = viewcap_template::join_templates(&chain, &chain);
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            b.iter(|| {
                assert!(find_homomorphism(std::hint::black_box(&doubled), &chain).is_some());
            })
        });

        // Negative: the chain template has no hom into a single atom
        // template of the first link (no targets for the other tags).
        let atom = Template::atom(w.rels[0], &w.catalog);
        group.bench_with_input(BenchmarkId::new("reject", n), &n, |b, _| {
            b.iter(|| {
                assert!(find_homomorphism(std::hint::black_box(&chain), &atom).is_none());
            })
        });
    }
    group.finish();
}

fn bench_candidate_lists(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_lists");
    group.sample_size(50);

    for n in [8usize, 16, 32, 64] {
        // A chain world has n distinct relation tags; chain ⋈ chain gives a
        // 2n-tuple source and target over those tags — the multirelational
        // shape where the per-tag/per-position postings beat the flat scan.
        let w = chain_world(n);
        let chain = template_of_expr(&chain_join_expr(&w), &w.catalog);
        let doubled = viewcap_template::join_templates(&chain, &chain);
        assert_eq!(
            candidate_lists(&doubled, &doubled),
            candidate_lists_flat(&doubled, &doubled),
            "indexed construction diverged from the flat scan"
        );
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| candidate_lists(std::hint::black_box(&doubled), &doubled))
        });
        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| candidate_lists_flat(std::hint::black_box(&doubled), &doubled))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_homomorphism, bench_candidate_lists);
criterion_main!(benches);
