//! B3 — template reduction (Prop 2.4.4): cost of minimizing padded
//! templates as redundancy grows, and the fixpoint check on cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_gen::{chain_join_expr, chain_world};
use viewcap_template::{join_templates, reduce, template_of_expr};

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(15);

    let w = chain_world(3);
    let base = template_of_expr(&chain_join_expr(&w), &w.catalog);

    for copies in [1usize, 2, 3, 4] {
        // k disjoint copies joined; reduction collapses them to the core.
        let mut padded = base.clone();
        for _ in 1..copies {
            padded = join_templates(&padded, &base);
        }
        group.bench_with_input(
            BenchmarkId::new("chain3_copies", copies),
            &copies,
            |b, _| {
                b.iter(|| {
                    let red = reduce(std::hint::black_box(&padded));
                    assert_eq!(red.len(), base.len());
                })
            },
        );
    }

    // Reduction of already-reduced templates (pure fixpoint check).
    for n in [2usize, 4, 6] {
        let w = chain_world(n);
        let t = template_of_expr(&chain_join_expr(&w), &w.catalog);
        group.bench_with_input(BenchmarkId::new("already_reduced", n), &n, |b, _| {
            b.iter(|| reduce(std::hint::black_box(&t)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
