//! B5 — capacity membership (Theorem 2.4.11): the bounded construction
//! search. Sweeps goal size (the atom bound) and base-set size, on both
//! positive and negative instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_base::Catalog;
use viewcap_core::{closure_contains, Query, SearchBudget};
use viewcap_expr::parse_expr;

fn world() -> Catalog {
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    cat.relation("S", &["C", "D"]).unwrap();
    cat
}

fn q(cat: &Catalog, src: &str) -> Query {
    Query::from_expr(parse_expr(src, cat).unwrap(), cat)
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity");
    group.sample_size(10);
    let cat = world();
    let budget = SearchBudget::default();

    // Goal size sweep (positive instances built from the base).
    let base = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)"), q(&cat, "S")];
    let positive_goals = [
        ("k1", "pi{A}(R)"),
        ("k2", "pi{A,C}(pi{A,B}(R) * pi{B,C}(R))"),
        ("k3", "pi{A,D}(pi{A,B}(R) * pi{B,C}(R) * S)"),
    ];
    for (label, src) in positive_goals {
        let goal = q(&cat, src);
        group.bench_with_input(BenchmarkId::new("positive", label), &goal, |b, goal| {
            b.iter(|| {
                assert!(closure_contains(&base, goal, &cat, &budget)
                    .unwrap()
                    .is_some())
            })
        });
    }

    // Negative instances (exhaustive search to the bound).
    let negative_goals = [("k1", "R"), ("k2", "R * S")];
    for (label, src) in negative_goals {
        let goal = q(&cat, src);
        group.bench_with_input(BenchmarkId::new("negative", label), &goal, |b, goal| {
            b.iter(|| {
                assert!(closure_contains(&base, goal, &cat, &budget)
                    .unwrap()
                    .is_none())
            })
        });
    }

    // Base-set size sweep at fixed goal.
    for n_base in [1usize, 2, 3] {
        let base: Vec<Query> = ["pi{A,B}(R)", "pi{B,C}(R)", "S"][..n_base]
            .iter()
            .map(|s| q(&cat, s))
            .collect();
        let goal = q(&cat, "pi{B}(R)");
        group.bench_with_input(BenchmarkId::new("base_size", n_base), &n_base, |b, _| {
            b.iter(|| closure_contains(&base, &goal, &cat, &budget).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_capacity);
criterion_main!(benches);
