//! B4 — template substitution `T → β` (Section 2.2): cost versus skeleton
//! size and assigned-template size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_base::{Catalog, Scheme};
use viewcap_expr::Expr;
use viewcap_template::{substitute, template_of_expr, Assignment, TaggedTuple, Template};

/// A skeleton of `skeleton_atoms` view-name tuples, each assigned a private
/// chain template of `inner_links` tuples.
fn setup(skeleton_atoms: usize, inner_links: usize) -> (Catalog, Template, Assignment) {
    let mut cat = Catalog::new();
    let mut beta = Assignment::new();
    let mut nus = Vec::new();
    for v in 0..skeleton_atoms {
        let attrs: Vec<_> = (0..=inner_links)
            .map(|i| cat.attr(&format!("X{v}_{i}")))
            .collect();
        let rels: Vec<_> = (0..inner_links)
            .map(|i| {
                let scheme = Scheme::new([attrs[i], attrs[i + 1]]).unwrap();
                cat.add_relation(&format!("B{v}_{i}"), scheme).unwrap()
            })
            .collect();
        let inner = template_of_expr(
            &Expr::join_all(rels.iter().map(|&r| Expr::rel(r)).collect()),
            &cat,
        );
        let nu = cat.fresh_relation("nu", inner.trs());
        beta.set(nu, inner, &cat).unwrap();
        nus.push(nu);
    }
    let skeleton = Template::new(
        nus.iter()
            .map(|&nu| TaggedTuple::all_distinguished(nu, &cat))
            .collect(),
    )
    .unwrap();
    (cat, skeleton, beta)
}

fn bench_substitution(c: &mut Criterion) {
    let mut group = c.benchmark_group("substitution");
    group.sample_size(30);

    for atoms in [1usize, 2, 4, 8] {
        let (cat, skeleton, beta) = setup(atoms, 3);
        group.bench_with_input(BenchmarkId::new("skeleton", atoms), &atoms, |b, _| {
            b.iter(|| substitute(std::hint::black_box(&skeleton), &beta, &cat).unwrap())
        });
    }
    for inner in [1usize, 3, 6, 9] {
        let (cat, skeleton, beta) = setup(3, inner);
        group.bench_with_input(BenchmarkId::new("inner", inner), &inner, |b, _| {
            b.iter(|| substitute(std::hint::black_box(&skeleton), &beta, &cat).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substitution);
criterion_main!(benches);
