//! B10 — batch engine throughput: repeated capacity/equivalence workloads,
//! cold cache vs. warm cache, sequential vs. parallel.
//!
//! The workload repeats the Example 3.1.5 family checks `reps` times: a
//! realistic audit loop where the same handful of distinct questions
//! recurs. Cold runs build a fresh engine per iteration; warm runs reuse
//! one engine whose cache already holds every verdict, which is where the
//! fingerprint layer pays off (expected well beyond 5× on this shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_base::Catalog;
use viewcap_core::{Query, View};
use viewcap_engine::{Check, Engine, Workload};
use viewcap_expr::parse_expr;

fn family() -> (Catalog, View, View) {
    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let ab = cat.scheme(&["A", "B"]).unwrap();
    let bc = cat.scheme(&["B", "C"]).unwrap();
    let abc = cat.scheme(&["A", "B", "C"]).unwrap();
    let lam = cat.fresh_relation("lam", abc);
    let l1 = cat.fresh_relation("l1", ab);
    let l2 = cat.fresh_relation("l2", bc);
    let v = View::from_exprs(
        vec![(parse_expr("pi{A,B}(R) * pi{B,C}(R)", &cat).unwrap(), lam)],
        &cat,
    )
    .unwrap();
    let w = View::from_exprs(
        vec![
            (parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
            (parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
        ],
        &cat,
    )
    .unwrap();
    (cat, v, w)
}

fn workload(cat: &Catalog, v: &View, w: &View, reps: usize) -> Workload {
    let goals = ["pi{A}(R)", "pi{B}(R)", "pi{A,B}(R) * pi{B,C}(R)", "R"];
    let mut load = Workload::new();
    for _ in 0..reps {
        load.push(
            "equivalent V W",
            Check::Equivalent {
                left: v.clone(),
                right: w.clone(),
            },
        );
        load.push(
            "dominates V W",
            Check::Dominates {
                dominator: v.clone(),
                dominated: w.clone(),
            },
        );
        for goal in goals {
            load.push(
                format!("member V {goal}"),
                Check::Member {
                    view: v.clone(),
                    goal: Query::from_expr(parse_expr(goal, cat).unwrap(), cat),
                },
            );
        }
    }
    load
}

fn bench_batch(c: &mut Criterion) {
    let (cat, v, w) = family();
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);

    for reps in [1usize, 8] {
        let load = workload(&cat, &v, &w, reps);

        group.bench_with_input(BenchmarkId::new("cold_seq", reps), &load, |b, load| {
            b.iter(|| {
                let engine = Engine::new();
                let outcome = engine.run_batch(criterion::black_box(load), &cat, 1);
                assert_eq!(outcome.executed, 6);
            })
        });

        group.bench_with_input(BenchmarkId::new("cold_par4", reps), &load, |b, load| {
            b.iter(|| {
                let engine = Engine::new();
                let outcome = engine.run_batch(criterion::black_box(load), &cat, 4);
                assert_eq!(outcome.executed, 6);
            })
        });

        let warm_engine = Engine::new();
        warm_engine.run_batch(&load, &cat, 1);
        group.bench_with_input(BenchmarkId::new("warm_seq", reps), &load, |b, load| {
            b.iter(|| {
                let outcome = warm_engine.run_batch(criterion::black_box(load), &cat, 1);
                assert_eq!(outcome.executed, 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
