//! B8 — ablation of the search-engine design choices (DESIGN.md §5.5):
//! semantic deduplication and intermediate reduction, measured on the same
//! capacity-membership instance.
//!
//! The verdicts never change (see the unit tests); only the work changes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::ops::ControlFlow;
use viewcap_base::Catalog;
use viewcap_core::Query;
use viewcap_expr::parse_expr;
use viewcap_template::{
    equivalent_templates, for_each_candidate_with, substitute, Assignment, SearchLimits,
    SearchOptions,
};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    let base = [
        Query::from_expr(parse_expr("pi{A,B}(R)", &cat).unwrap(), &cat),
        Query::from_expr(parse_expr("pi{B,C}(R)", &cat).unwrap(), &cat),
    ];
    // A negative goal: the search must exhaust the whole bounded frontier.
    let goal = Query::from_expr(parse_expr("R", &cat).unwrap(), &cat);

    let variants = [
        (
            "dedup+reduce",
            SearchOptions {
                semantic_dedup: true,
                reduce_intermediates: true,
            },
        ),
        (
            "no-dedup",
            SearchOptions {
                semantic_dedup: false,
                reduce_intermediates: true,
            },
        ),
        (
            "no-reduce",
            SearchOptions {
                semantic_dedup: true,
                reduce_intermediates: false,
            },
        ),
        (
            "bare",
            SearchOptions {
                semantic_dedup: false,
                reduce_intermediates: false,
            },
        ),
    ];

    // Deeper negative instance: three base queries, three-atom goal bound —
    // where semantic dedup starts paying for itself.
    let mut cat3 = Catalog::new();
    cat3.relation("R", &["A", "B", "C", "D"]).unwrap();
    let base3 = [
        Query::from_expr(parse_expr("pi{A,B}(R)", &cat3).unwrap(), &cat3),
        Query::from_expr(parse_expr("pi{B,C}(R)", &cat3).unwrap(), &cat3),
        Query::from_expr(parse_expr("pi{C,D}(R)", &cat3).unwrap(), &cat3),
    ];
    let goal3 = Query::from_expr(parse_expr("pi{A,D}(R * pi{B,D}(R))", &cat3).unwrap(), &cat3);

    let run = |cat: &Catalog, base: &[Query], goal: &Query, options: SearchOptions| {
        let mut scratch = cat.clone();
        let mut beta = Assignment::new();
        let mut atoms = Vec::new();
        for q in base {
            let lam = scratch.fresh_relation("lam", q.trs());
            beta.set(lam, q.template().clone(), &scratch).unwrap();
            atoms.push(lam);
        }
        let (broke, _stats) = for_each_candidate_with(
            &scratch,
            &atoms,
            goal.template().len(),
            Some(&goal.trs()),
            &SearchLimits::default(),
            options,
            &mut |_, skel| {
                let sub = substitute(skel, &beta, &scratch).unwrap();
                if equivalent_templates(&sub.result, goal.template()) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        )
        .unwrap();
        assert!(!broke, "negative instance must stay negative");
    };

    for (name, options) in variants {
        group.bench_with_input(
            BenchmarkId::new("negative_k2", name),
            &options,
            |b, &options| b.iter(|| run(&cat, &base, &goal, options)),
        );
        group.bench_with_input(
            BenchmarkId::new("negative_k3", name),
            &options,
            |b, &options| b.iter(|| run(&cat3, &base3, &goal3, options)),
        );
    }

    // Wide base: the `is_simple` workload shape — a member plus all its
    // proper projections (7 queries). Dedup exists to stop the per-level
    // part explosion here; measure the full three-atom frontier sweep with
    // no goal and no early exit (pure engine cost).
    {
        let mut catw = Catalog::new();
        catw.relation("R", &["A", "B", "C"]).unwrap();
        let member = Query::from_expr(parse_expr("pi{A,B}(R) * pi{B,C}(R)", &catw).unwrap(), &catw);
        let mut basew: Vec<Query> = vec![member.clone()];
        for x in member.trs().proper_nonempty_subsets() {
            basew.push(member.project(&x, &catw).unwrap());
        }
        let sweep = |options: SearchOptions| {
            let mut scratch = catw.clone();
            let mut atoms = Vec::new();
            for q in &basew {
                atoms.push(scratch.fresh_relation("lam", q.trs()));
            }
            let limits = SearchLimits {
                max_level_parts: 2_000_000,
                max_visits: 50_000_000,
            };
            let mut roots = 0u64;
            let (_, _stats) = for_each_candidate_with(
                &scratch,
                &atoms,
                3,
                None,
                &limits,
                options,
                &mut |_, _| {
                    roots += 1;
                    ControlFlow::Continue(())
                },
            )
            .unwrap();
            roots
        };
        for (name, options) in [
            (
                "dedup+reduce",
                SearchOptions {
                    semantic_dedup: true,
                    reduce_intermediates: true,
                },
            ),
            (
                "no-dedup",
                SearchOptions {
                    semantic_dedup: false,
                    reduce_intermediates: true,
                },
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new("wide_base_sweep_k3", name),
                &options,
                |b, &options| b.iter(|| sweep(options)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
