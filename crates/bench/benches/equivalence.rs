//! B6 — view equivalence (Theorem 2.4.12): full dominance-both-ways
//! decisions on the paper's Example 3.1.5 family, scaled by the number of
//! projection views.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewcap_base::Catalog;
use viewcap_core::equivalence::equivalent;
use viewcap_core::View;
use viewcap_expr::parse_expr;

/// The Example 3.1.5 family over R(A₀…A_w): a single joined view versus
/// the view of `w` overlapping binary projections.
fn family(width: usize) -> (Catalog, View, View) {
    let mut cat = Catalog::new();
    let attr_names: Vec<String> = (0..=width).map(|i| format!("A{i}")).collect();
    let refs: Vec<&str> = attr_names.iter().map(|s| s.as_str()).collect();
    cat.relation("R", &refs).unwrap();

    let mut projections = Vec::new();
    for i in 0..width {
        let src = format!("pi{{A{i},A{}}}(R)", i + 1);
        projections.push(parse_expr(&src, &cat).unwrap());
    }
    let joined = viewcap_expr::Expr::join_all(projections.clone());

    let jt = viewcap_core::Query::from_expr(joined.clone(), &cat);
    let lam = cat.fresh_relation("joined", jt.trs());
    let v = View::from_exprs(vec![(joined, lam)], &cat).unwrap();

    let pairs = projections
        .into_iter()
        .map(|e| {
            let q = viewcap_core::Query::from_expr(e.clone(), &cat);
            let name = cat.fresh_relation("p", q.trs());
            (e, name)
        })
        .collect();
    let w = View::from_exprs(pairs, &cat).unwrap();
    (cat, v, w)
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("equivalence");
    group.sample_size(10);

    for width in [2usize, 3] {
        let (cat, v, w) = family(width);
        group.bench_with_input(
            BenchmarkId::new("example_3_1_5_family", width),
            &width,
            |b, _| {
                b.iter(|| {
                    assert!(equivalent(std::hint::black_box(&v), &w, &cat)
                        .unwrap()
                        .is_some())
                })
            },
        );
    }

    // Non-equivalent pair: joined view vs the full relation.
    {
        let (mut cat, v, _) = family(2);
        let full_q = viewcap_core::Query::from_expr(parse_expr("R", &cat).unwrap(), &cat);
        let full_name = cat.fresh_relation("full", full_q.trs());
        let full =
            View::from_exprs(vec![(parse_expr("R", &cat).unwrap(), full_name)], &cat).unwrap();
        group.bench_function("reject_strictly_stronger", |b| {
            b.iter(|| {
                assert!(equivalent(std::hint::black_box(&v), &full, &cat)
                    .unwrap()
                    .is_none())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equivalence);
criterion_main!(benches);
