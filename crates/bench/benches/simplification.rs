//! B7 — redundancy elimination (Theorem 3.1.4) and the simplified normal
//! form (Theorem 4.1.3): the full pipelines on curated workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use viewcap_base::Catalog;
use viewcap_core::redundancy::nonredundant_indices;
use viewcap_core::simplify::simplify_queries;
use viewcap_core::{Query, SearchBudget};
use viewcap_expr::parse_expr;

fn q(cat: &Catalog, src: &str) -> Query {
    Query::from_expr(parse_expr(src, cat).unwrap(), cat)
}

fn bench_simplification(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplification");
    group.sample_size(10);
    let budget = SearchBudget::default();

    let mut cat = Catalog::new();
    cat.relation("R", &["A", "B", "C"]).unwrap();
    cat.relation("S", &["C", "D"]).unwrap();

    // Redundancy elimination on a padded set.
    let padded = vec![
        q(&cat, "pi{A,B}(R)"),
        q(&cat, "pi{B,C}(R)"),
        q(&cat, "pi{A,B}(R) * pi{B,C}(R)"),
        q(&cat, "pi{B}(R)"),
    ];
    group.bench_function("nonredundant/padded4", |b| {
        b.iter(|| {
            let keep = nonredundant_indices(std::hint::black_box(&padded), &cat, &budget).unwrap();
            assert!(keep.len() < padded.len());
        })
    });

    // Simplification of Example 3.1.5's joined view.
    let joined = vec![q(&cat, "pi{A,B}(R) * pi{B,C}(R)")];
    group.bench_function("simplify/example_3_1_5", |b| {
        b.iter(|| {
            let s = simplify_queries(std::hint::black_box(&joined), &cat, &budget).unwrap();
            assert_eq!(s.len(), 2);
        })
    });

    // Simplification with a second relation in play.
    let pair = vec![q(&cat, "pi{A,B}(R) * pi{B,C}(R)"), q(&cat, "S")];
    group.bench_function("simplify/two_queries", |b| {
        b.iter(|| simplify_queries(std::hint::black_box(&pair), &cat, &budget).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simplification);
criterion_main!(benches);
