//! The reproduction table printer (`cargo bench --bench paper_tables`).
//!
//! The paper has no empirical tables; its checkable artifacts are the two
//! figures, the numbered examples, and the decidable questions. This
//! harness re-runs every one of them and prints one row per artifact —
//! paper claim, our measured outcome, wall time — regenerating the table
//! recorded in EXPERIMENTS.md.

use std::time::Instant;
use viewcap_base::{AttrId, Catalog, Symbol};
use viewcap_core::equivalence::equivalent;
use viewcap_core::essential::essential_tuples;
use viewcap_core::paper_procedure::{closure_contains_paper, PaperProcedureConfig};
use viewcap_core::redundancy::{is_nonredundant_view, is_redundant};
use viewcap_core::simplify::{is_simple, simplify_queries};
use viewcap_core::{cap_contains, closure_contains, Query, SearchBudget, View};
use viewcap_expr::parse_expr;
use viewcap_template::{
    equivalent_templates, reduce, substitute, template_of_expr, Assignment, TaggedTuple, Template,
};

struct Row {
    id: &'static str,
    claim: &'static str,
    outcome: String,
    ok: bool,
    millis: u128,
}

fn check(
    rows: &mut Vec<Row>,
    id: &'static str,
    claim: &'static str,
    f: impl FnOnce() -> (String, bool),
) {
    let start = Instant::now();
    let (outcome, ok) = f();
    rows.push(Row {
        id,
        claim,
        outcome,
        ok,
        millis: start.elapsed().as_millis(),
    });
}

fn q(cat: &Catalog, src: &str) -> Query {
    Query::from_expr(parse_expr(src, cat).unwrap(), cat)
}

fn zero(a: AttrId) -> Symbol {
    Symbol::distinguished(a)
}

fn sym(a: AttrId, o: u32) -> Symbol {
    Symbol::new(a, o)
}

fn main() {
    let mut rows = Vec::new();
    let budget = SearchBudget::default();

    // ---------------------------------------------------------------- F1
    check(
        &mut rows,
        "F1",
        "Figure 1: T→β has the 6 displayed rows; ≡ π_A(η₃)⋈π_B(η₄)⋈π_C(η₄)",
        || {
            let mut cat = Catalog::new();
            let eta1 = cat.relation("eta1", &["A", "B"]).unwrap();
            let eta2 = cat.relation("eta2", &["A", "B", "C"]).unwrap();
            cat.relation("eta3", &["A", "B", "C"]).unwrap();
            cat.relation("eta4", &["A", "B", "C"]).unwrap();
            let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
            let eta3 = cat.lookup_rel("eta3").unwrap();
            let eta4 = cat.lookup_rel("eta4").unwrap();
            let t = Template::new(vec![
                TaggedTuple::new(eta1, vec![zero(a), sym(b, 1)], &cat).unwrap(),
                TaggedTuple::new(eta2, vec![sym(a, 1), zero(b), sym(c, 2)], &cat).unwrap(),
                TaggedTuple::new(eta2, vec![sym(a, 1), sym(b, 2), zero(c)], &cat).unwrap(),
            ])
            .unwrap();
            let s1 = Template::new(vec![
                TaggedTuple::new(eta3, vec![sym(a, 3), zero(b), sym(c, 3)], &cat).unwrap(),
                TaggedTuple::new(eta3, vec![zero(a), sym(b, 3), sym(c, 3)], &cat).unwrap(),
            ])
            .unwrap();
            let s2 = Template::new(vec![
                TaggedTuple::new(eta4, vec![zero(a), zero(b), sym(c, 4)], &cat).unwrap(),
                TaggedTuple::new(eta4, vec![sym(a, 4), sym(b, 4), zero(c)], &cat).unwrap(),
            ])
            .unwrap();
            let mut beta = Assignment::new();
            beta.set(eta1, s1, &cat).unwrap();
            beta.set(eta2, s2, &cat).unwrap();
            let sub = substitute(&t, &beta, &cat).unwrap();
            let expected = parse_expr("pi{A}(eta3) * pi{B}(eta4) * pi{C}(eta4)", &cat).unwrap();
            let equiv = equivalent_templates(&sub.result, &template_of_expr(&expected, &cat));
            (
                format!(
                    "{} rows, reduced {}, equivalence {}",
                    sub.result.len(),
                    reduce(&sub.result).len(),
                    equiv
                ),
                sub.result.len() == 6 && equiv,
            )
        },
    );

    // ---------------------------------------------------------------- F2
    check(
        &mut rows,
        "F2",
        "Figure 2 / Ex 3.2.2: τ₃ essential, τ₁/τ₂ not; components {τ₁,τ₂},{τ₃}",
        || {
            let mut cat = Catalog::new();
            let eta1 = cat.relation("eta1", &["A", "B"]).unwrap();
            let eta2 = cat.relation("eta2", &["A", "B", "C"]).unwrap();
            let [a, b, c] = ["A", "B", "C"].map(|n| cat.lookup_attr(n).unwrap());
            let s = Query::from_template(&Template::atom(eta1, &cat));
            let t = Query::from_template(
                &Template::new(vec![
                    TaggedTuple::new(eta1, vec![zero(a), sym(b, 1)], &cat).unwrap(),
                    TaggedTuple::new(eta2, vec![sym(a, 1), sym(b, 1), zero(c)], &cat).unwrap(),
                    TaggedTuple::new(eta2, vec![sym(a, 2), zero(b), zero(c)], &cat).unwrap(),
                ])
                .unwrap(),
            );
            let tau3 = TaggedTuple::new(eta2, vec![sym(a, 2), zero(b), zero(c)], &cat).unwrap();
            let i3 = t.template().index_of(&tau3).unwrap();
            let queries = [s, t];
            let ess = essential_tuples(&queries, 1, &cat, &budget).unwrap();
            let ok = ess[i3] && ess.iter().filter(|&&e| e).count() == 1;
            (format!("essential flags {ess:?}"), ok)
        },
    );

    // ---------------------------------------------------------------- E2
    check(
        &mut rows,
        "E2",
        "Example 3.1.1: S redundant in {S,S₁,S₂}; {S₁,S₂} nonredundant",
        || {
            let mut cat = Catalog::new();
            cat.relation("R", &["A", "B", "C"]).unwrap();
            let set = [
                q(&cat, "pi{A,B}(R) * pi{B,C}(R)"),
                q(&cat, "pi{A,B}(R)"),
                q(&cat, "pi{B,C}(R)"),
            ];
            let red = is_redundant(&set, 0, &cat).unwrap().is_some();
            let nonred =
                viewcap_core::redundancy::is_nonredundant_set(&set[1..], &cat, &budget).unwrap();
            (
                format!("S redundant: {red}; rest nonredundant: {nonred}"),
                red && nonred,
            )
        },
    );

    // ---------------------------------------------------------------- E3
    check(
        &mut rows,
        "E3",
        "Example 3.1.5: 𝒱 ≡ 𝒲, both nonredundant, sizes 1 vs 2",
        || {
            let mut cat = Catalog::new();
            cat.relation("R", &["A", "B", "C"]).unwrap();
            let abc = cat.scheme(&["A", "B", "C"]).unwrap();
            let ab = cat.scheme(&["A", "B"]).unwrap();
            let bc = cat.scheme(&["B", "C"]).unwrap();
            let lam = cat.fresh_relation("lam", abc);
            let l1 = cat.fresh_relation("l1", ab);
            let l2 = cat.fresh_relation("l2", bc);
            let v = View::from_exprs(
                vec![(parse_expr("pi{A,B}(R) * pi{B,C}(R)", &cat).unwrap(), lam)],
                &cat,
            )
            .unwrap();
            let w = View::from_exprs(
                vec![
                    (parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
                    (parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
                ],
                &cat,
            )
            .unwrap();
            let eq = equivalent(&v, &w, &cat).unwrap().is_some();
            let nr = is_nonredundant_view(&v, &cat, &budget).unwrap()
                && is_nonredundant_view(&w, &cat, &budget).unwrap();
            (
                format!(
                    "equivalent: {eq}; nonredundant: {nr}; sizes {}≠{}",
                    v.len(),
                    w.len()
                ),
                eq && nr && v.len() != w.len(),
            )
        },
    );

    // ---------------------------------------------------------------- E4
    check(
        &mut rows,
        "E4",
        "Section 4 example: S,T not simple; simplified equivalent = 5 projections",
        || {
            let mut cat = Catalog::new();
            cat.relation("AD", &["A", "D"]).unwrap();
            cat.relation("ABC", &["A", "B", "C"]).unwrap();
            cat.relation("AB", &["A", "B"]).unwrap();
            cat.relation("BC", &["B", "C"]).unwrap();
            cat.relation("AC", &["A", "C"]).unwrap();
            let set = [
                q(&cat, "pi{B,C,D}(AD * ABC) * AC"),
                q(&cat, "pi{A,B}(AB * BC) * (AC * BC)"),
            ];
            let s_simple = is_simple(&set, 0, &cat).unwrap();
            let t_simple = is_simple(&set, 1, &cat).unwrap();
            let simplified = simplify_queries(&set, &cat, &budget).unwrap();
            (
                format!(
                    "simple? S={s_simple} T={t_simple}; |simplified|={}",
                    simplified.len()
                ),
                !s_simple && !t_simple && simplified.len() == 5,
            )
        },
    );

    // ---------------------------------------------------------------- E5
    check(
        &mut rows,
        "E5",
        "Section 3.1 decree: salary queries outside Cap(view)",
        || {
            let mut cat = Catalog::new();
            cat.relation("Staff", &["Name", "Dept", "Salary"]).unwrap();
            let nd = cat.scheme(&["Name", "Dept"]).unwrap();
            let v1 = cat.fresh_relation("Public", nd);
            let view = View::from_exprs(
                vec![(parse_expr("pi{Name,Dept}(Staff)", &cat).unwrap(), v1)],
                &cat,
            )
            .unwrap();
            let deny = cap_contains(&view, &q(&cat, "pi{Name,Salary}(Staff)"), &cat, &budget)
                .unwrap()
                .is_none();
            let allow = cap_contains(&view, &q(&cat, "pi{Name}(Staff)"), &cat, &budget)
                .unwrap()
                .is_some();
            (
                format!("salary denied: {deny}; name allowed: {allow}"),
                deny && allow,
            )
        },
    );

    // ---------------------------------------------------------------- T6x
    check(
        &mut rows,
        "T6x",
        "Thm 2.4.11 cross-check: bounded search ≡ literal Jₖ procedure (tiny grid)",
        || {
            let mut cat = Catalog::new();
            cat.relation("R", &["A", "B"]).unwrap();
            let base = [q(&cat, "pi{A}(R)"), q(&cat, "pi{B}(R)")];
            let config = PaperProcedureConfig::default();
            let mut agreements = 0;
            let mut total = 0;
            for goal_src in ["pi{A}(R)", "pi{B}(R)", "pi{A}(R) * pi{B}(R)", "R"] {
                let goal = q(&cat, goal_src);
                let fast = closure_contains(&base, &goal, &cat, &budget)
                    .unwrap()
                    .is_some();
                let slow = closure_contains_paper(&base, &goal, &cat, &config)
                    .unwrap()
                    .is_some();
                total += 1;
                if fast == slow {
                    agreements += 1;
                }
            }
            (
                format!("{agreements}/{total} instances agree"),
                agreements == total,
            )
        },
    );

    // ------------------------------------------------------------- print
    println!();
    println!("== viewcap · paper-reproduction table (regenerates EXPERIMENTS.md §2) ==");
    println!();
    println!(
        "{:<5} {:<72} {:<46} {:>8}  ok",
        "id", "paper claim", "measured", "ms"
    );
    println!("{}", "-".repeat(140));
    let mut all_ok = true;
    for r in &rows {
        all_ok &= r.ok;
        println!(
            "{:<5} {:<72} {:<46} {:>8}  {}",
            r.id,
            r.claim,
            r.outcome,
            r.millis,
            if r.ok { "PASS" } else { "FAIL" }
        );
    }
    println!("{}", "-".repeat(140));
    println!(
        "{} rows, {}",
        rows.len(),
        if all_ok {
            "all PASS"
        } else {
            "FAILURES PRESENT"
        }
    );
    assert!(all_ok, "paper reproduction table has failures");
}
