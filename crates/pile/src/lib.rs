//! # viewcap-pile
//!
//! A crash-safe, append-only record pile — the shared on-disk verdict log
//! a fleet of workers appends to concurrently (in the style of the
//! `tribles-rust` pile store). The format is deliberately dumb: a pile is
//! nothing but a sequence of independently verifiable records, so the only
//! write operation is an atomic append and the only failure mode is a
//! truncated or damaged *suffix*.
//!
//! ## Record layout
//!
//! Every record is 8-byte aligned:
//!
//! ```text
//! offset  size  field
//!      0    16  marker   RECORD_MARKER (b"VCAPPILE-RECORD\n")
//!     16    16  hash     u128 LE — hash_bytes(kind ‖ length_le ‖ payload)
//!     32     4  length   u32 LE — payload byte count
//!     36     1  kind     record kind (opaque to this crate)
//!     37     3  pad      zero
//!     40     n  payload
//!      —   0-7  zpad     zero padding to the next 8-byte boundary
//! ```
//!
//! The hash reuses the engine's fingerprint folding ([`hash`]), so a
//! record hash and a verdict fingerprint are the same 128-bit
//! construction. A record is *valid* when its marker, pad, hash, and zero
//! padding all check out; anything else is damage.
//!
//! ## Crash safety
//!
//! * **Atomic append** ([`Pile::append`]): the full record (header +
//!   payload + padding) is assembled in memory and written with a single
//!   `write` on an `O_APPEND` descriptor, then flushed, then the pile's
//!   in-memory committed length is published in one store. Concurrent
//!   appenders — threads or whole processes sharing the file — therefore
//!   never interleave record bytes.
//! * **Lazy validation on read** ([`Pile::records`],
//!   [`PileReader::poll`]): opening a pile checks framing only; each
//!   record's hash is verified as that record is materialized, so opening
//!   a multi-gigabyte pile costs a scan, not a full rehash.
//! * **Recovery** ([`Pile::recover`]): a crash mid-append leaves a
//!   damaged suffix and nothing else. Recovery walks the file front to
//!   back with *full* validation, truncates to the last valid prefix,
//!   and reports what was dropped. Every record before the damage
//!   survives byte-identically.
//!
//! Readers polling a live pile ([`PileReader`]) surface a record only
//! once it is complete and its hash verifies — a torn (in-flight or
//! crashed) tail is silently retried on the next poll, so a reader can
//! never observe a partially written record.

pub mod hash;

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Leading marker of every record.
pub const RECORD_MARKER: [u8; 16] = *b"VCAPPILE-RECORD\n";
/// Fixed header size (marker + hash + length + kind + pad).
pub const HEADER_LEN: usize = 40;

/// Round `n` up to the next multiple of 8.
fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Why a pile operation failed.
#[derive(Debug)]
pub enum PileError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The pile's content is invalid from `offset` on. `recover` the file
    /// to truncate back to the preceding valid prefix.
    Corrupt {
        /// Byte offset of the first invalid record.
        offset: u64,
        /// What check failed there.
        what: String,
    },
    /// A payload exceeded the format's `u32` length field.
    TooLarge(usize),
}

impl fmt::Display for PileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PileError::Io(e) => write!(f, "pile I/O error: {e}"),
            PileError::Corrupt { offset, what } => {
                write!(
                    f,
                    "corrupt pile at byte {offset}: {what} (run recovery to truncate)"
                )
            }
            PileError::TooLarge(n) => write!(f, "record payload of {n} bytes exceeds the format"),
        }
    }
}

impl std::error::Error for PileError {}

impl From<std::io::Error> for PileError {
    fn from(e: std::io::Error) -> Self {
        PileError::Io(e)
    }
}

/// One validated record, materialized out of the pile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Byte offset of the record's marker in the file.
    pub offset: u64,
    /// Caller-defined record kind.
    pub kind: u8,
    /// The payload, hash-verified.
    pub payload: Vec<u8>,
}

/// What [`Pile::recover`] found and did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Valid records in the kept prefix.
    pub records_kept: usize,
    /// Bytes kept (the new file length).
    pub bytes_kept: u64,
    /// Bytes truncated away.
    pub bytes_dropped: u64,
    /// Description of the damage, when anything was dropped.
    pub damage: Option<String>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} record(s) kept ({} byte(s)), {} byte(s) dropped",
            self.records_kept, self.bytes_kept, self.bytes_dropped
        )?;
        if let Some(damage) = &self.damage {
            write!(f, " — {damage}")?;
        }
        Ok(())
    }
}

/// Outcome of scanning one record frame at `offset` within `bytes`.
enum Frame {
    /// A complete frame: `(kind, payload_range, total_aligned_len)`.
    Complete {
        kind: u8,
        hash: u128,
        payload_start: usize,
        payload_len: usize,
        total: usize,
    },
    /// The file ends before this frame completes (torn append or
    /// truncation) — `what` says which field ran out.
    Incomplete(String),
    /// The frame is structurally invalid at this offset.
    Invalid(String),
}

/// Scan the frame starting at `pos`. Checks marker, header pad, and
/// extent only — hash verification is the caller's (lazy) business.
fn scan_frame(bytes: &[u8], pos: usize) -> Frame {
    let remaining = bytes.len() - pos;
    if remaining < HEADER_LEN {
        return Frame::Incomplete(format!(
            "{remaining} trailing byte(s) where a {HEADER_LEN}-byte record header was expected"
        ));
    }
    let header = &bytes[pos..pos + HEADER_LEN];
    if header[..16] != RECORD_MARKER {
        return Frame::Invalid("bad record marker".to_owned());
    }
    let hash = u128::from_le_bytes(header[16..32].try_into().unwrap());
    let payload_len = u32::from_le_bytes(header[32..36].try_into().unwrap()) as usize;
    let kind = header[36];
    if header[37..40] != [0, 0, 0] {
        return Frame::Invalid("nonzero header padding".to_owned());
    }
    let total = HEADER_LEN + align8(payload_len);
    if total > remaining {
        return Frame::Incomplete(format!(
            "record of {total} byte(s) extends past end of file"
        ));
    }
    Frame::Complete {
        kind,
        hash,
        payload_start: pos + HEADER_LEN,
        payload_len,
        total,
    }
}

/// Full validation of one complete frame: hash over `kind ‖ length ‖
/// payload`, plus zero alignment padding. `Ok` is the payload slice.
fn validate_frame(
    bytes: &[u8],
    kind: u8,
    hash: u128,
    payload_start: usize,
    payload_len: usize,
) -> Result<&[u8], String> {
    let payload = &bytes[payload_start..payload_start + payload_len];
    let zpad = &bytes[payload_start + payload_len..payload_start + align8(payload_len)];
    if zpad.iter().any(|&b| b != 0) {
        return Err("nonzero alignment padding".to_owned());
    }
    if record_hash(kind, payload) != hash {
        return Err("record hash mismatch".to_owned());
    }
    Ok(payload)
}

/// The content hash of a record: kind byte, length field, then payload.
fn record_hash(kind: u8, payload: &[u8]) -> u128 {
    let mut hashed = Vec::with_capacity(5 + payload.len());
    hashed.push(kind);
    hashed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    hashed.extend_from_slice(payload);
    hash::hash_bytes(&hashed)
}

/// Assemble the on-disk bytes of one record.
fn encode_record(kind: u8, payload: &[u8]) -> Result<Vec<u8>, PileError> {
    if payload.len() > u32::MAX as usize {
        return Err(PileError::TooLarge(payload.len()));
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + align8(payload.len()));
    buf.extend_from_slice(&RECORD_MARKER);
    buf.extend_from_slice(&record_hash(kind, payload).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(payload);
    buf.resize(HEADER_LEN + align8(payload.len()), 0);
    Ok(buf)
}

/// An append-capable handle on a pile file.
///
/// Appends go through an `O_APPEND` descriptor, so handles in other
/// threads or processes appending to the same path interleave whole
/// records, never bytes. Each handle tracks its own *committed* length —
/// the validated prefix it has itself observed; [`Pile::records`]
/// re-reads the file, so records appended by others are picked up.
pub struct Pile {
    file: File,
    path: PathBuf,
    /// Bytes this handle knows to be framing-valid (publish point).
    committed: u64,
    /// `sync_data` after every append (the crash-safe default).
    sync: bool,
}

impl Pile {
    /// Open (creating if absent) a pile, scanning its framing. Hashes are
    /// *not* verified here — that happens lazily, per record, on read.
    /// A structurally invalid file is rejected with
    /// [`PileError::Corrupt`]; use [`Pile::recover`] to truncate it back
    /// to its valid prefix instead.
    pub fn open(path: impl AsRef<Path>) -> Result<Pile, PileError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut pos = 0usize;
        while pos < bytes.len() {
            match scan_frame(&bytes, pos) {
                Frame::Complete { total, .. } => pos += total,
                Frame::Incomplete(what) | Frame::Invalid(what) => {
                    return Err(PileError::Corrupt {
                        offset: pos as u64,
                        what,
                    })
                }
            }
        }
        Ok(Pile {
            file,
            path,
            committed: bytes.len() as u64,
            sync: true,
        })
    }

    /// Open a pile, truncating any damaged suffix: the file is walked
    /// front to back with *full* validation (framing, padding, hashes)
    /// and cut at the first invalid byte. Every record before the damage
    /// survives byte-identically; the report says what was dropped.
    /// Never panics, whatever the damage.
    pub fn recover(path: impl AsRef<Path>) -> Result<(Pile, RecoveryReport), PileError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;
        let mut pos = 0usize;
        let mut records_kept = 0usize;
        let mut damage = None;
        while pos < bytes.len() {
            match scan_frame(&bytes, pos) {
                Frame::Complete {
                    kind,
                    hash,
                    payload_start,
                    payload_len,
                    total,
                } => match validate_frame(&bytes, kind, hash, payload_start, payload_len) {
                    Ok(_) => {
                        records_kept += 1;
                        pos += total;
                    }
                    Err(what) => {
                        damage = Some(format!("record at byte {pos}: {what}"));
                        break;
                    }
                },
                Frame::Incomplete(what) | Frame::Invalid(what) => {
                    damage = Some(format!("record at byte {pos}: {what}"));
                    break;
                }
            }
        }
        let bytes_dropped = (bytes.len() - pos) as u64;
        if bytes_dropped > 0 {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        let report = RecoveryReport {
            records_kept,
            bytes_kept: pos as u64,
            bytes_dropped,
            damage,
        };
        Ok((
            Pile {
                file,
                path,
                committed: pos as u64,
                sync: true,
            },
            report,
        ))
    }

    /// The pile's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes this handle has published (its validated prefix plus its own
    /// appends). Other handles' appends are not counted until a re-read.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Disable (or re-enable) the `sync_data` after every append. With
    /// sync off a machine crash can lose the newest records; the file can
    /// still never parse as anything but a valid prefix.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Append one record atomically: the full frame is written with a
    /// single `O_APPEND` write, flushed, and only then is the handle's
    /// committed length published. A crash before the flush leaves a
    /// damaged suffix that recovery truncates; a crash after it leaves a
    /// longer valid pile. Returns the record's encoded size in bytes.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<usize, PileError> {
        let buf = encode_record(kind, payload)?;
        self.file.write_all(&buf)?;
        if self.sync {
            self.file.sync_data()?;
        }
        self.committed += buf.len() as u64;
        Ok(buf.len())
    }

    /// Re-read the file and materialize every record, verifying each
    /// record's hash as it is read (lazy: a pile opened and never read
    /// pays no hashing). The first invalid record — including a torn
    /// tail from a concurrent in-flight append — yields
    /// [`PileError::Corrupt`] with its offset.
    pub fn records(&mut self) -> Result<Vec<Record>, PileError> {
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut bytes)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            match scan_frame(&bytes, pos) {
                Frame::Complete {
                    kind,
                    hash,
                    payload_start,
                    payload_len,
                    total,
                } => {
                    let payload = validate_frame(&bytes, kind, hash, payload_start, payload_len)
                        .map_err(|what| PileError::Corrupt {
                            offset: pos as u64,
                            what,
                        })?;
                    out.push(Record {
                        offset: pos as u64,
                        kind,
                        payload: payload.to_vec(),
                    });
                    pos += total;
                }
                Frame::Incomplete(what) | Frame::Invalid(what) => {
                    return Err(PileError::Corrupt {
                        offset: pos as u64,
                        what,
                    })
                }
            }
        }
        if pos as u64 > self.committed {
            self.committed = pos as u64;
        }
        Ok(out)
    }
}

/// A read-only polling cursor over a (possibly live) pile.
///
/// [`PileReader::poll`] surfaces each record exactly once, and only once
/// it is complete and hash-valid — a torn tail (an in-flight concurrent
/// append, or crash damage) is never surfaced; the reader simply stops
/// there and retries from the same offset on the next poll. Polling
/// therefore never observes a torn or partially hashed record, and never
/// errors on one either: distinguishing "still being written" from
/// "damaged" is [`Pile::recover`]'s job, not a reader's.
pub struct PileReader {
    file: File,
    /// Offset of the next unread record.
    pos: u64,
}

impl PileReader {
    /// Open a polling reader at the start of the pile.
    pub fn open(path: impl AsRef<Path>) -> Result<PileReader, PileError> {
        let file = OpenOptions::new().read(true).open(path.as_ref())?;
        Ok(PileReader { file, pos: 0 })
    }

    /// The offset the next poll resumes from.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Return every record that has become complete and valid since the
    /// last poll, in file order.
    pub fn poll(&mut self) -> Result<Vec<Record>, PileError> {
        self.file.seek(SeekFrom::Start(self.pos))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let mut out = Vec::new();
        let mut rel = 0usize;
        while rel < bytes.len() {
            match scan_frame(&bytes, rel) {
                Frame::Complete {
                    kind,
                    hash,
                    payload_start,
                    payload_len,
                    total,
                } => {
                    let Ok(payload) =
                        validate_frame(&bytes, kind, hash, payload_start, payload_len)
                    else {
                        break; // torn or damaged: retry from here next poll
                    };
                    out.push(Record {
                        offset: self.pos + rel as u64,
                        kind,
                        payload: payload.to_vec(),
                    });
                    rel += total;
                }
                Frame::Incomplete(_) | Frame::Invalid(_) => break,
            }
        }
        self.pos += rel as u64;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("viewcap-pile-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.vcappile")
    }

    #[test]
    fn round_trip_and_alignment() {
        let path = tmp("round-trip");
        let mut pile = Pile::open(&path).unwrap();
        assert_eq!(pile.committed(), 0);
        for (kind, payload) in [(1u8, &b"hello"[..]), (2, b""), (7, &[0xFFu8; 23])] {
            let n = pile.append(kind, payload).unwrap();
            assert_eq!(n % 8, 0, "records stay 8-byte aligned");
        }
        let records = pile.records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].payload, b"hello");
        assert_eq!(records[1].payload, b"");
        assert_eq!((records[2].kind, records[2].payload.len()), (7, 23));
        assert_eq!(records[0].offset, 0);
        assert!(records.iter().all(|r| r.offset % 8 == 0));

        // A fresh handle sees the same records.
        let mut again = Pile::open(&path).unwrap();
        assert_eq!(again.records().unwrap(), records);
    }

    #[test]
    fn reader_polls_incrementally() {
        let path = tmp("poll");
        let mut pile = Pile::open(&path).unwrap();
        pile.append(0, b"first").unwrap();
        let mut reader = PileReader::open(&path).unwrap();
        assert_eq!(reader.poll().unwrap().len(), 1);
        assert_eq!(reader.poll().unwrap().len(), 0);
        pile.append(0, b"second").unwrap();
        pile.append(0, b"third").unwrap();
        let batch = reader.poll().unwrap();
        assert_eq!(
            batch
                .iter()
                .map(|r| r.payload.as_slice())
                .collect::<Vec<_>>(),
            [&b"second"[..], b"third"]
        );
    }

    #[test]
    fn torn_tail_is_invisible_to_readers_and_recoverable() {
        let path = tmp("torn");
        let mut pile = Pile::open(&path).unwrap();
        pile.append(0, b"kept").unwrap();
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append: half a second record.
        let second = encode_record(0, b"torn-away").unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&second[..second.len() / 2]);
        std::fs::write(&path, &torn).unwrap();

        let mut reader = PileReader::open(&path).unwrap();
        let seen = reader.poll().unwrap();
        assert_eq!(seen.len(), 1, "torn tail never surfaces");

        assert!(matches!(Pile::open(&path), Err(PileError::Corrupt { .. })));
        let (mut recovered, report) = Pile::recover(&path).unwrap();
        assert_eq!(report.records_kept, 1);
        assert_eq!(report.bytes_kept, full.len() as u64);
        assert_eq!(report.bytes_dropped, (second.len() / 2) as u64);
        assert!(report.damage.is_some());
        assert_eq!(recovered.records().unwrap()[0].payload, b"kept");
        // And the pile appends cleanly again after recovery.
        recovered.append(0, b"after").unwrap();
        assert_eq!(recovered.records().unwrap().len(), 2);
    }

    #[test]
    fn payload_corruption_is_caught_on_read() {
        let path = tmp("flip");
        let mut pile = Pile::open(&path).unwrap();
        pile.append(3, b"payload-bytes").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        // Framing is intact, so open (lazy) succeeds…
        let mut pile = Pile::open(&path).unwrap();
        // …but materializing the record verifies the hash.
        let err = pile.records().unwrap_err();
        assert!(matches!(err, PileError::Corrupt { offset: 0, .. }), "{err}");
    }
}
