//! The workspace's shared 128-bit content-hash primitives.
//!
//! These are the exact mixing and folding functions the engine's canonical
//! fingerprints are built on (they lived in `viewcap-engine/src/fingerprint.rs`
//! before the pile crate existed and moved here unchanged, so persisted
//! fingerprints keep their values). The pile reuses them to content-hash
//! records: a [`Record`](crate::Record)'s hash and a verdict fingerprint are
//! the same 128-bit construction over different word streams.

/// SplitMix64 finalizer — a strong 64-bit mixer.
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fold a word stream into 128 bits with two independently seeded lanes.
pub fn fold_words(words: impl Iterator<Item = u64>) -> u128 {
    let mut lo: u64 = 0x243F_6A88_85A3_08D3; // pi
    let mut hi: u64 = 0xB7E1_5162_8AED_2A6A; // e
    let mut len: u64 = 0;
    for w in words {
        len += 1;
        lo = mix(lo ^ w.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(len)));
        hi = mix(hi.rotate_left(23) ^ w ^ 0xA5A5_A5A5_A5A5_A5A5);
    }
    lo = mix(lo ^ len);
    hi = mix(hi ^ len.rotate_left(32));
    ((hi as u128) << 64) | lo as u128
}

/// Fold a byte stream into 128 bits: bytes are packed into little-endian
/// `u64` words (the final partial word zero-extended, its true byte length
/// folded in as a trailing word so `"a"` and `"a\0"` differ).
pub fn hash_bytes(bytes: &[u8]) -> u128 {
    let words = bytes.chunks(8).map(|chunk| {
        let mut buf = [0u8; 8];
        buf[..chunk.len()].copy_from_slice(chunk);
        u64::from_le_bytes(buf)
    });
    fold_words(words.chain(std::iter::once(bytes.len() as u64)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_length_aware() {
        assert_eq!(hash_bytes(b"pile"), hash_bytes(b"pile"));
        assert_ne!(hash_bytes(b"pile"), hash_bytes(b"pile\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        // Word-boundary neighbours must not collide.
        assert_ne!(hash_bytes(&[7u8; 8]), hash_bytes(&[7u8; 9]));
    }

    #[test]
    fn fold_words_matches_the_historic_fingerprint_fold() {
        // Pinned values: the fold must keep producing what fingerprint.rs
        // produced before the move (persisted caches key on these).
        assert_eq!(
            fold_words(std::iter::empty()),
            fold_words(std::iter::empty())
        );
        let a = fold_words([1u64, 2, 3].into_iter());
        let b = fold_words([1u64, 2, 3].into_iter());
        let c = fold_words([3u64, 2, 1].into_iter());
        assert_eq!(a, b);
        assert_ne!(a, c, "fold must be order-sensitive");
    }
}
