//! Fault injection against the pile format.
//!
//! Crash-safety claims are only as good as their adversarial tests, so this
//! suite attacks a valid pile every way a crash or bad disk can:
//!
//! * **truncation at every byte offset** of the final record — the torn
//!   tail a crash mid-append leaves behind;
//! * **single-byte flips** at every position of the final record
//!   (exhaustive) and at proptest-chosen positions anywhere in the file —
//!   marker, hash, length, kind, padding, and payload corruption alike.
//!
//! The invariant under every fault: [`Pile::recover`] never panics, keeps
//! every record *before* the damage byte-identically, truncates the rest,
//! and reports what it dropped.

use proptest::prelude::*;
use viewcap_pile::{Pile, PileError, Record, RecoveryReport};

/// A scratch path unique to this test name.
fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("viewcap-pile-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.vcappile"))
}

/// Build a pile of `payloads` records and return (file bytes, records).
fn build_pile(name: &str, payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<Record>) {
    let path = tmp(name);
    let _ = std::fs::remove_file(&path);
    let mut pile = Pile::open(&path).unwrap();
    pile.set_sync(false); // tests favor speed; atomicity is unaffected
    for (i, payload) in payloads.iter().enumerate() {
        pile.append((i % 7) as u8, payload).unwrap();
    }
    let records = pile.records().unwrap();
    (std::fs::read(&path).unwrap(), records)
}

/// Write `bytes` to a fresh file and fully recover it, asserting the
/// kept prefix is exactly `expected` (byte-identical records) and the
/// report is self-consistent. Returns the report.
fn recover_and_check(name: &str, bytes: &[u8], expected: &[Record]) -> RecoveryReport {
    let path = tmp(name);
    std::fs::write(&path, bytes).unwrap();
    let (mut pile, report) = Pile::recover(&path).unwrap();
    assert_eq!(report.records_kept, expected.len(), "{report}");
    assert_eq!(
        report.bytes_kept + report.bytes_dropped,
        bytes.len() as u64,
        "report must account for every input byte: {report}"
    );
    let survivors = pile.records().expect("recovered pile must read cleanly");
    assert_eq!(
        survivors, expected,
        "prior records must survive damage byte-identically"
    );
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        report.bytes_kept,
        "file must be truncated to the reported prefix"
    );
    // A recovered pile accepts appends again.
    pile.set_sync(false);
    pile.append(0, b"post-recovery append").unwrap();
    assert_eq!(pile.records().unwrap().len(), expected.len() + 1);
    report
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_record() {
    let payloads: Vec<Vec<u8>> = vec![
        b"alpha".to_vec(),
        vec![0xAB; 64],
        Vec::new(),
        (0u8..=200).collect(),
    ];
    let (bytes, records) = build_pile("trunc-build", &payloads);
    let last_offset = records.last().unwrap().offset as usize;
    let prior = &records[..records.len() - 1];

    for cut in last_offset..bytes.len() {
        let report = recover_and_check("trunc-case", &bytes[..cut], prior);
        if cut == last_offset {
            // Truncating exactly at the final record's start leaves a
            // shorter but fully valid pile: nothing to report.
            assert_eq!(report.bytes_dropped, 0, "cut={cut}");
            assert!(report.damage.is_none(), "cut={cut}");
        } else {
            assert_eq!(report.bytes_kept, last_offset as u64, "cut={cut}");
            assert_eq!(
                report.bytes_dropped,
                (cut - last_offset) as u64,
                "cut={cut}"
            );
            let damage = report
                .damage
                .as_ref()
                .unwrap_or_else(|| panic!("cut={cut}: a torn final record must be reported"));
            assert!(
                damage.contains(&format!("byte {last_offset}")),
                "cut={cut}: {damage}"
            );
        }
    }
}

#[test]
fn single_byte_flip_at_every_position_of_the_final_record() {
    let payloads: Vec<Vec<u8>> = vec![
        b"keep-me".to_vec(),
        vec![7u8; 40],
        b"victim-record".to_vec(),
    ];
    let (bytes, records) = build_pile("flip-build", &payloads);
    let last_offset = records.last().unwrap().offset as usize;
    let prior = &records[..records.len() - 1];

    for pos in last_offset..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= flip;
            let report = recover_and_check("flip-case", &damaged, prior);
            assert_eq!(
                report.bytes_kept, last_offset as u64,
                "pos={pos} flip={flip:#x}"
            );
            assert!(
                report.damage.is_some(),
                "pos={pos} flip={flip:#x}: corruption must be reported"
            );
            // Lazy open must also refuse the damage (framing faults) or
            // defer it to record reads (hash faults) — never accept it.
            let path = tmp("flip-lazy");
            std::fs::write(&path, &damaged).unwrap();
            match Pile::open(&path) {
                Err(PileError::Corrupt { .. }) => {}
                Err(e) => panic!("pos={pos} flip={flip:#x}: unexpected open error {e}"),
                Ok(mut pile) => {
                    let err = pile
                        .records()
                        .expect_err("flipped byte must fail validation");
                    assert!(matches!(err, PileError::Corrupt { .. }), "pos={pos}: {err}");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random piles survive a flip anywhere: every record before the
    /// damaged one is kept, everything from it on is truncated away.
    #[test]
    fn flips_anywhere_keep_the_prefix_before_the_damage(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..6),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (bytes, records) = build_pile("prop-flip-build", &payloads);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut damaged = bytes.clone();
        damaged[pos] ^= flip;
        // Which record did we hit? Everything before it must survive.
        let hit = records.iter().rposition(|r| r.offset as usize <= pos).unwrap();
        let report = recover_and_check("prop-flip-case", &damaged, &records[..hit]);
        prop_assert_eq!(report.bytes_kept, records[hit].offset);
        prop_assert!(report.damage.is_some());
    }

    /// Random truncation points: recovery keeps exactly the records that
    /// fit entirely inside the cut, and never panics.
    #[test]
    fn truncations_anywhere_keep_whole_records_only(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let (bytes, records) = build_pile("prop-trunc-build", &payloads);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let keep = records.iter().take_while(|r| {
            r.offset as usize + encoded_len(&r.payload) <= cut
        }).count();
        let report = recover_and_check("prop-trunc-case", &bytes[..cut], &records[..keep]);
        prop_assert_eq!(report.records_kept, keep);
    }

    /// Appending arbitrary garbage after a valid pile: the original
    /// records always survive recovery (a random blob colliding with the
    /// marker + a valid hash is out of reach).
    #[test]
    fn garbage_tails_are_truncated_away(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..5),
        garbage in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let (bytes, records) = build_pile("prop-garbage-build", &payloads);
        let mut damaged = bytes.clone();
        damaged.extend_from_slice(&garbage);
        let report = recover_and_check("prop-garbage-case", &damaged, &records);
        prop_assert_eq!(report.bytes_kept, bytes.len() as u64);
        prop_assert_eq!(report.bytes_dropped, garbage.len() as u64);
    }
}

/// On-disk footprint of a record with this payload (header + aligned payload).
fn encoded_len(payload: &[u8]) -> usize {
    viewcap_pile::HEADER_LEN + payload.len().div_ceil(8) * 8
}
