//! Property-based tests over the decision procedures (small case counts:
//! each case runs bounded searches).

use proptest::prelude::*;
use viewcap_base::{Catalog, RelId, Scheme};
use viewcap_core::capacity::{closure_contains, SearchBudget};
use viewcap_core::redundancy::nonredundant_indices;
use viewcap_core::Query;
use viewcap_expr::Expr;

/// Fixed world: R(A,B), S(B,C).
fn world() -> (Catalog, Vec<RelId>) {
    let mut cat = Catalog::new();
    let r = cat.relation("R", &["A", "B"]).unwrap();
    let s = cat.relation("S", &["B", "C"]).unwrap();
    (cat, vec![r, s])
}

/// Byte-program interpreter (same convention as the other crates' suites).
fn interpret(cat: &Catalog, rels: &[RelId], program: &[u8]) -> Expr {
    let mut stack: Vec<Expr> = Vec::new();
    for &op in program {
        match op % 4 {
            0 | 1 => stack.push(Expr::rel(rels[(op as usize / 4) % rels.len()])),
            2 => {
                if stack.len() >= 2 {
                    let b = stack.pop().unwrap();
                    let a = stack.pop().unwrap();
                    stack.push(Expr::join(vec![a, b]).unwrap());
                }
            }
            _ => {
                if let Some(e) = stack.pop() {
                    let trs = e.trs(cat);
                    let mask = op as usize / 4;
                    let keep: Vec<_> = trs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, a)| a)
                        .collect();
                    if keep.is_empty() || keep.len() == trs.len() {
                        stack.push(e);
                    } else {
                        stack.push(Expr::project(e, Scheme::new(keep).unwrap(), cat).unwrap());
                    }
                }
            }
        }
    }
    stack.pop().unwrap_or(Expr::rel(rels[0]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generators always belong to their own closure, and so do joins and
    /// projections of them (Theorem 1.5.2's closure conditions).
    #[test]
    fn closure_is_closed_under_its_operations(
        p1 in proptest::collection::vec(any::<u8>(), 1..8),
        p2 in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let (cat, rels) = world();
        let budget = SearchBudget::default();
        let q1 = Query::from_expr(interpret(&cat, &rels, &p1), &cat);
        let q2 = Query::from_expr(interpret(&cat, &rels, &p2), &cat);
        let base = [q1.clone(), q2.clone()];
        prop_assert!(closure_contains(&base, &q1, &cat, &budget).unwrap().is_some());
        prop_assert!(closure_contains(&base, &q2, &cat, &budget).unwrap().is_some());
        let joined = q1.join(&q2);
        prop_assert!(closure_contains(&base, &joined, &cat, &budget).unwrap().is_some());
        if let Some(x) = joined.trs().proper_nonempty_subsets().into_iter().next() {
            let projected = joined.project(&x, &cat).unwrap();
            prop_assert!(
                closure_contains(&base, &projected, &cat, &budget).unwrap().is_some()
            );
        }
    }

    /// Membership is invariant under replacing the goal by an equivalent
    /// query (it is a property of mappings, not of syntax).
    #[test]
    fn membership_is_semantic(
        p1 in proptest::collection::vec(any::<u8>(), 1..8),
        p2 in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let (cat, rels) = world();
        let budget = SearchBudget::default();
        let base = [Query::from_expr(interpret(&cat, &rels, &p1), &cat)];
        let goal = Query::from_expr(interpret(&cat, &rels, &p2), &cat);
        // A syntactically different but equivalent goal: join with itself.
        let doubled = goal.join(&goal);
        prop_assert!(goal.equiv(&doubled));
        let a = closure_contains(&base, &goal, &cat, &budget).unwrap().is_some();
        let b = closure_contains(&base, &doubled, &cat, &budget).unwrap().is_some();
        prop_assert_eq!(a, b);
    }

    /// Greedy redundancy removal reaches a fixpoint: running it twice keeps
    /// the same indices.
    #[test]
    fn nonredundant_reduction_is_a_fixpoint(
        p1 in proptest::collection::vec(any::<u8>(), 1..6),
        p2 in proptest::collection::vec(any::<u8>(), 1..6),
        p3 in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        let (cat, rels) = world();
        let budget = SearchBudget::default();
        let base = vec![
            Query::from_expr(interpret(&cat, &rels, &p1), &cat),
            Query::from_expr(interpret(&cat, &rels, &p2), &cat),
            Query::from_expr(interpret(&cat, &rels, &p3), &cat),
        ];
        let keep = nonredundant_indices(&base, &cat, &budget).unwrap();
        let kept: Vec<Query> = keep.iter().map(|&i| base[i].clone()).collect();
        let again = nonredundant_indices(&kept, &cat, &budget).unwrap();
        prop_assert_eq!(again.len(), kept.len(), "second pass removed more");
        // And every removed query is generated by the kept ones.
        for (i, q) in base.iter().enumerate() {
            if !keep.contains(&i) {
                prop_assert!(
                    closure_contains(&kept, q, &cat, &budget).unwrap().is_some()
                );
            }
        }
    }
}
