//! View dominance and equivalence (Theorems 1.5.5 and 2.4.12).
//!
//! `𝒱` *dominates* `𝒲` when `Cap(𝒲) ⊆ Cap(𝒱)`; the views are *equivalent*
//! when the capacities coincide. **Lemma 1.5.4** reduces dominance to
//! finitely many capacity-membership tests — each defining query of `𝒲`
//! must lie in `Cap(𝒱)` — and **Theorem 2.4.12** concludes decidability.
//!
//! Positive answers carry witnesses: one [`ClosureProof`] per defining
//! query, i.e. explicit constructions re-deriving one view's definition
//! from the other's.

use crate::capacity::{ClosureContext, ClosureProof, SearchBudget};
use crate::view::View;
use viewcap_base::Catalog;
use viewcap_template::SearchOverflow;

/// Witness that `𝒱` dominates `𝒲`: a construction for each defining query
/// of `𝒲` from `𝒱`'s defining query set.
#[derive(Clone, Debug)]
pub struct DominanceWitness {
    /// `proofs[j]` constructs `𝒲`'s `j`-th defining query from `𝒱`'s set.
    pub proofs: Vec<ClosureProof>,
}

/// Witness of equivalence: dominance both ways (Theorem 1.5.5).
#[derive(Clone, Debug)]
pub struct EquivalenceWitness {
    /// `𝒱` dominates `𝒲`.
    pub v_dominates_w: DominanceWitness,
    /// `𝒲` dominates `𝒱`.
    pub w_dominates_v: DominanceWitness,
}

/// Lemma 1.5.4 against a prebuilt [`ClosureContext`] over the dominator's
/// defining query set: all of `w`'s defining queries probe one shared
/// candidate-space enumeration. This is the entry point the batch engine
/// uses to amortize repeated dominance/equivalence checks against one view.
pub fn dominates_via(
    v_context: &mut ClosureContext,
    w: &View,
) -> Result<Option<DominanceWitness>, SearchOverflow> {
    let mut proofs = Vec::with_capacity(w.len());
    for (q, _) in w.pairs() {
        match v_context.contains(q)? {
            Some(p) => proofs.push(p),
            None => return Ok(None),
        }
    }
    Ok(Some(DominanceWitness { proofs }))
}

/// Lemma 1.5.4: does `v` dominate `w`?
pub fn dominates_with(
    v: &View,
    w: &View,
    catalog: &Catalog,
    budget: &SearchBudget,
) -> Result<Option<DominanceWitness>, SearchOverflow> {
    let mut context = ClosureContext::new(v.query_set().queries(), catalog, budget);
    dominates_via(&mut context, w)
}

/// Lemma 1.5.4 with the default budget.
pub fn dominates(
    v: &View,
    w: &View,
    catalog: &Catalog,
) -> Result<Option<DominanceWitness>, SearchOverflow> {
    dominates_with(v, w, catalog, &SearchBudget::default())
}

/// Theorems 1.5.5/2.4.12 against prebuilt contexts for both sides; each
/// direction reuses (and extends) its view's shared enumeration.
pub fn equivalent_via(
    v_context: &mut ClosureContext,
    w_context: &mut ClosureContext,
    v: &View,
    w: &View,
) -> Result<Option<EquivalenceWitness>, SearchOverflow> {
    let Some(v_dominates_w) = dominates_via(v_context, w)? else {
        return Ok(None);
    };
    let Some(w_dominates_v) = dominates_via(w_context, v)? else {
        return Ok(None);
    };
    Ok(Some(EquivalenceWitness {
        v_dominates_w,
        w_dominates_v,
    }))
}

/// Theorems 1.5.5/2.4.12: are the views equivalent?
pub fn equivalent_with(
    v: &View,
    w: &View,
    catalog: &Catalog,
    budget: &SearchBudget,
) -> Result<Option<EquivalenceWitness>, SearchOverflow> {
    let mut v_context = ClosureContext::new(v.query_set().queries(), catalog, budget);
    let mut w_context = ClosureContext::new(w.query_set().queries(), catalog, budget);
    equivalent_via(&mut v_context, &mut w_context, v, w)
}

/// Theorems 1.5.5/2.4.12 with the default budget.
pub fn equivalent(
    v: &View,
    w: &View,
    catalog: &Catalog,
) -> Result<Option<EquivalenceWitness>, SearchOverflow> {
    equivalent_with(v, w, catalog, &SearchBudget::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewcap_base::RelId;
    use viewcap_expr::parse_expr;

    /// Example 3.1.5 of the paper: 𝒟 = {R(A,B,C)},
    /// S₁ = π_AB(R), S₂ = π_BC(R), S = S₁ ⋈ S₂;
    /// 𝒱 = {(S, λ)}, 𝒲 = {(S₁, λ₁), (S₂, λ₂)}.
    fn example_3_1_5() -> (Catalog, View, View) {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let bc = cat.scheme(&["B", "C"]).unwrap();
        let abc = cat.scheme(&["A", "B", "C"]).unwrap();
        let lam = cat.fresh_relation("lam", abc);
        let l1 = cat.fresh_relation("l1", ab);
        let l2 = cat.fresh_relation("l2", bc);
        let v = View::from_exprs(
            vec![(parse_expr("pi{A,B}(R) * pi{B,C}(R)", &cat).unwrap(), lam)],
            &cat,
        )
        .unwrap();
        let w = View::from_exprs(
            vec![
                (parse_expr("pi{A,B}(R)", &cat).unwrap(), l1),
                (parse_expr("pi{B,C}(R)", &cat).unwrap(), l2),
            ],
            &cat,
        )
        .unwrap();
        (cat, v, w)
    }

    #[test]
    fn example_3_1_5_views_are_equivalent() {
        let (cat, v, w) = example_3_1_5();
        let witness = equivalent(&v, &w, &cat).unwrap().expect("equivalent");
        // 𝒲 dominates 𝒱 because S = S₁ ⋈ S₂ …
        assert_eq!(witness.w_dominates_v.proofs.len(), 1);
        assert_eq!(witness.w_dominates_v.proofs[0].skeleton.atom_count(), 2);
        // … and 𝒱 dominates 𝒲 because Sᵢ are projections of S.
        assert_eq!(witness.v_dominates_w.proofs.len(), 2);
        for p in &witness.v_dominates_w.proofs {
            assert_eq!(p.skeleton.atom_count(), 1);
        }
    }

    #[test]
    fn inequivalent_views_are_rejected() {
        let (cat, _, w) = example_3_1_5();
        // A view exposing the whole of R strictly dominates 𝒲.
        let mut cat2 = cat.clone();
        let abc = cat2.scheme(&["A", "B", "C"]).unwrap();
        let full_name: RelId = cat2.fresh_relation("full", abc);
        let full =
            View::from_exprs(vec![(parse_expr("R", &cat2).unwrap(), full_name)], &cat2).unwrap();
        assert!(dominates(&full, &w, &cat2).unwrap().is_some());
        assert!(dominates(&w, &full, &cat2).unwrap().is_none());
        assert!(equivalent(&full, &w, &cat2).unwrap().is_none());
    }

    #[test]
    fn dominance_is_reflexive_and_equivalence_is_symmetric() {
        let (cat, v, w) = example_3_1_5();
        assert!(dominates(&v, &v, &cat).unwrap().is_some());
        assert!(dominates(&w, &w, &cat).unwrap().is_some());
        let a = equivalent(&v, &w, &cat).unwrap().is_some();
        let b = equivalent(&w, &v, &cat).unwrap().is_some();
        assert_eq!(a, b);
    }
}
