//! Closure exploration: enumerating the query capacity.
//!
//! `Cap(𝒱)` is infinite (it is closed under join), but its members with a
//! bounded construction size are finitely enumerable, and every member has
//! a canonical reduced template. This module materializes the capacity's
//! *frontier*: all pairwise-inequivalent members reachable by constructions
//! with at most `max_atoms` skeleton atoms — useful for auditing what a
//! view exposes, for the uniqueness experiments, and for the benchmark
//! harness.

use crate::capacity::{ClosureContext, SearchBudget};
use crate::query::Query;
use crate::view::View;
use std::ops::ControlFlow;
use viewcap_base::{Catalog, RelId};
use viewcap_expr::Expr;
use viewcap_template::{substitute, Assignment, SearchOverflow};

/// One enumerated member of a closure.
#[derive(Clone, Debug)]
pub struct ClosureMember {
    /// The member, as a query over the underlying schema (reduced
    /// template).
    pub query: Query,
    /// A construction skeleton realizing it, over the scratch `λ` names.
    pub skeleton: Expr,
    /// Number of atoms in the skeleton (construction size).
    pub construction_size: usize,
}

/// Enumerate the pairwise-inequivalent members of `closure(queries)`
/// realizable with at most `max_atoms` construction atoms.
///
/// Members are produced in nondecreasing construction size. The callback
/// may stop the enumeration.
pub fn for_each_closure_member(
    queries: &[Query],
    max_atoms: usize,
    catalog: &Catalog,
    budget: &SearchBudget,
    f: &mut dyn FnMut(&ClosureMember) -> ControlFlow<()>,
) -> Result<(), SearchOverflow> {
    if queries.is_empty() {
        return Ok(());
    }
    let mut scratch = catalog.clone();
    let mut beta = Assignment::new();
    let mut atoms: Vec<RelId> = Vec::with_capacity(queries.len());
    for q in queries {
        let lam = scratch.fresh_relation("lam", q.trs());
        beta.set(lam, q.template().clone(), &scratch)
            .expect("λ type minted to match");
        atoms.push(lam);
    }
    // The search engine already deduplicates semantically over the λ level;
    // two skeletons with equivalent λ-templates substitute to equivalent
    // members, but distinct λ-templates can also collide after
    // substitution, so dedup again at the member level.
    let mut seen: Vec<Query> = Vec::new();
    viewcap_template::for_each_candidate(
        &scratch,
        &atoms,
        max_atoms,
        None,
        &budget.limits,
        &mut |expr, skel| {
            let sub = substitute(skel, &beta, &scratch).expect("every λ assigned");
            let member = Query::from_template(&sub.result);
            if seen.iter().any(|s| s.equiv(&member)) {
                return ControlFlow::Continue(());
            }
            seen.push(member.clone());
            f(&ClosureMember {
                query: member,
                skeleton: expr.clone(),
                construction_size: expr.atom_count(),
            })
        },
    )?;
    Ok(())
}

/// Collect the bounded closure frontier as a vector.
pub fn closure_members(
    queries: &[Query],
    max_atoms: usize,
    catalog: &Catalog,
    budget: &SearchBudget,
) -> Result<Vec<ClosureMember>, SearchOverflow> {
    let mut out = Vec::new();
    for_each_closure_member(queries, max_atoms, catalog, budget, &mut |m| {
        out.push(m.clone());
        ControlFlow::Continue(())
    })?;
    Ok(out)
}

impl ClosureContext {
    /// Enumerate the bounded closure frontier through this shared context —
    /// identical members, in the identical order, to
    /// [`for_each_closure_member`] over the same query set, but reusing the
    /// context's lazily extended candidate space across sweeps (repeated or
    /// growing-`k` frontier requests pay only the incremental levels).
    pub fn for_each_member(
        &mut self,
        max_atoms: usize,
        f: &mut dyn FnMut(&ClosureMember) -> ControlFlow<()>,
    ) -> Result<(), SearchOverflow> {
        let mut seen: Vec<Query> = Vec::new();
        self.for_each_substitution(max_atoms, &mut |expr, _skel, sub| {
            let member = Query::from_template(&sub.result);
            if seen.iter().any(|s| s.equiv(&member)) {
                return ControlFlow::Continue(());
            }
            seen.push(member.clone());
            f(&ClosureMember {
                query: member,
                skeleton: expr.clone(),
                construction_size: expr.atom_count(),
            })
        })?;
        Ok(())
    }

    /// Collect the bounded frontier as a vector (see
    /// [`ClosureContext::for_each_member`]).
    pub fn members(&mut self, max_atoms: usize) -> Result<Vec<ClosureMember>, SearchOverflow> {
        let mut out = Vec::new();
        self.for_each_member(max_atoms, &mut |m| {
            out.push(m.clone());
            ControlFlow::Continue(())
        })?;
        Ok(out)
    }
}

/// The capacity-frontier diff between two view versions: which bounded
/// frontier members one version exposes and the other does not, by query
/// equivalence. Equals the set difference of two independent
/// [`closure_members`] sweeps — the `diff` conformance suite pins this.
#[derive(Clone, Debug, Default)]
pub struct FrontierDiff {
    /// Members derivable from the left version only (capabilities *lost*
    /// by an edit when left is the pre-edit version).
    pub only_left: Vec<ClosureMember>,
    /// Members derivable from the right version only (capabilities
    /// *gained*).
    pub only_right: Vec<ClosureMember>,
    /// Number of members common to both frontiers.
    pub common: usize,
}

impl FrontierDiff {
    /// True when both frontiers expose exactly the same members.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }
}

/// Diff the bounded capacity frontiers of two versions through their shared
/// contexts. Each context amortizes its candidate space across calls, so
/// re-diffing the same version pair (or growing `max_atoms`) pays only the
/// incremental enumeration.
pub fn frontier_diff(
    left: &mut ClosureContext,
    right: &mut ClosureContext,
    max_atoms: usize,
) -> Result<FrontierDiff, SearchOverflow> {
    let lm = left.members(max_atoms)?;
    let rm = right.members(max_atoms)?;
    let only_left: Vec<ClosureMember> = lm
        .iter()
        .filter(|m| !rm.iter().any(|n| n.query.equiv(&m.query)))
        .cloned()
        .collect();
    let only_right: Vec<ClosureMember> = rm
        .iter()
        .filter(|m| !lm.iter().any(|n| n.query.equiv(&m.query)))
        .cloned()
        .collect();
    let common = lm.len() - only_left.len();
    Ok(FrontierDiff {
        only_left,
        only_right,
        common,
    })
}

/// Audit a view: the pairwise-inequivalent queries its users can answer
/// with constructions of at most `max_atoms` atoms (Theorem 1.5.2 frontier).
pub fn capacity_members(
    view: &View,
    max_atoms: usize,
    catalog: &Catalog,
    budget: &SearchBudget,
) -> Result<Vec<ClosureMember>, SearchOverflow> {
    let qs = view.query_set();
    closure_members(qs.queries(), max_atoms, catalog, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::closure_contains;
    use viewcap_expr::parse_expr;

    fn setup() -> Catalog {
        let mut cat = Catalog::new();
        cat.relation("R", &["A", "B", "C"]).unwrap();
        cat
    }

    fn q(cat: &Catalog, src: &str) -> Query {
        Query::from_expr(parse_expr(src, cat).unwrap(), cat)
    }

    #[test]
    fn members_are_pairwise_inequivalent_and_in_the_closure() {
        let cat = setup();
        let base = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)")];
        let members = closure_members(&base, 2, &cat, &SearchBudget::default()).unwrap();
        assert!(!members.is_empty());
        for (i, m) in members.iter().enumerate() {
            for n in members.iter().skip(i + 1) {
                assert!(!m.query.equiv(&n.query), "duplicate member emitted");
            }
            // Membership is verifiable by the decision procedure.
            assert!(
                closure_contains(&base, &m.query, &cat, &SearchBudget::default())
                    .unwrap()
                    .is_some(),
                "emitted member fails the membership test"
            );
        }
    }

    #[test]
    fn frontier_contains_the_expected_core_queries() {
        let cat = setup();
        let base = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)")];
        let members = closure_members(&base, 2, &cat, &SearchBudget::default()).unwrap();
        for expected in [
            "pi{A,B}(R)",
            "pi{B,C}(R)",
            "pi{A}(R)",
            "pi{B}(R)",
            "pi{C}(R)",
            "pi{A,B}(R) * pi{B,C}(R)",
            "pi{A,C}(pi{A,B}(R) * pi{B,C}(R))",
        ] {
            let goal = q(&cat, expected);
            assert!(
                members.iter().any(|m| m.query.equiv(&goal)),
                "frontier is missing {expected}"
            );
        }
        // The full relation is NOT in the capacity at any size.
        let full = q(&cat, "R");
        assert!(!members.iter().any(|m| m.query.equiv(&full)));
    }

    #[test]
    fn sizes_are_nondecreasing() {
        let cat = setup();
        let base = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)")];
        let members = closure_members(&base, 3, &cat, &SearchBudget::default()).unwrap();
        let sizes: Vec<usize> = members.iter().map(|m| m.construction_size).collect();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
        assert!(sizes.iter().all(|&s| s <= 3));
    }

    #[test]
    fn context_frontier_matches_one_shot_enumeration() {
        let cat = setup();
        let base = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)")];
        let budget = SearchBudget::default();
        let mut context = ClosureContext::new(&base, &cat, &budget);
        for k in [1usize, 2, 3] {
            let shared = context.members(k).unwrap();
            let fresh = closure_members(&base, k, &cat, &budget).unwrap();
            assert_eq!(shared.len(), fresh.len(), "k={k}");
            for (s, f) in shared.iter().zip(fresh.iter()) {
                assert!(s.query.equiv(&f.query), "k={k}: member order diverged");
                assert_eq!(format!("{:?}", s.skeleton), format!("{:?}", f.skeleton));
                assert_eq!(s.construction_size, f.construction_size);
            }
        }
    }

    #[test]
    fn frontier_diff_is_the_set_difference() {
        let cat = setup();
        let budget = SearchBudget::default();
        let old = [q(&cat, "pi{A,B}(R)"), q(&cat, "pi{B,C}(R)")];
        let new = [q(&cat, "pi{A,B}(R)")];
        let mut left = ClosureContext::new(&old, &cat, &budget);
        let mut right = ClosureContext::new(&new, &cat, &budget);
        let diff = frontier_diff(&mut left, &mut right, 2).unwrap();
        let lm = closure_members(&old, 2, &cat, &budget).unwrap();
        let rm = closure_members(&new, 2, &cat, &budget).unwrap();
        let expect_left: Vec<&ClosureMember> = lm
            .iter()
            .filter(|m| !rm.iter().any(|n| n.query.equiv(&m.query)))
            .collect();
        let expect_right: Vec<&ClosureMember> = rm
            .iter()
            .filter(|m| !lm.iter().any(|n| n.query.equiv(&m.query)))
            .collect();
        assert_eq!(diff.only_left.len(), expect_left.len());
        assert_eq!(diff.only_right.len(), expect_right.len());
        for (d, e) in diff.only_left.iter().zip(expect_left) {
            assert!(d.query.equiv(&e.query));
        }
        for (d, e) in diff.only_right.iter().zip(expect_right) {
            assert!(d.query.equiv(&e.query));
        }
        assert_eq!(diff.common, lm.len() - diff.only_left.len());
        // Dropping π_BC loses capabilities and gains none.
        assert!(!diff.only_left.is_empty());
        assert!(diff.only_right.is_empty());
        // A version diffed against itself is empty.
        let mut same = ClosureContext::new(&old, &cat, &budget);
        let refl = frontier_diff(&mut left, &mut same, 2).unwrap();
        assert!(refl.is_empty());
        assert_eq!(refl.common, lm.len());
    }

    #[test]
    fn capacity_members_goes_through_the_view() {
        let mut cat = setup();
        let ab = cat.scheme(&["A", "B"]).unwrap();
        let v1 = cat.fresh_relation("v1", ab);
        let view =
            View::from_exprs(vec![(parse_expr("pi{A,B}(R)", &cat).unwrap(), v1)], &cat).unwrap();
        let members = capacity_members(&view, 2, &cat, &SearchBudget::default()).unwrap();
        // π_AB(R), π_A(R), π_B(R), π_A(R)⋈π_B(R): the whole two-atom
        // frontier of a single binary projection.
        assert_eq!(members.len(), 4);
    }
}
